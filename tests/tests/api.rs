//! Tests of the typestate `Ctx`/`Txn` API surface: panic safety of the
//! `Txn` drop guard, equivalence of the `NonTx` and `Txn` execution
//! contexts under concurrency, exact statistics on handle drop, and the
//! `RunConfig` retry policy.
//!
//! (The *compile-time* guarantees — a `Txn` cannot escape its closure, a
//! second `begin` is rejected, standalone calls cannot overlap an open
//! transaction — are `compile_fail` doc-tests on `medley::Txn`.)

use medley::{AbortReason, CasWord, Ctx, RunConfig, TxError, TxManager, TxResult};
use nbds::{MichaelHashMap, MsQueue, SkipList, TxMap, TxQueue};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Regression test for the panic-safety bug: a panic inside a `run` body
/// used to leave `ThreadHandle::in_tx == true` with an installed descriptor,
/// wedging the handle (the next `tx_begin` would assert) and blocking every
/// other thread that touched the poisoned words.  The `Txn` drop guard must
/// abort on unwind: the handle stays reusable and the descriptor is
/// uninstalled from every word it was published to.
#[test]
fn panic_inside_run_aborts_and_leaves_handle_reusable() {
    let mgr = TxManager::new();
    // Force the general path so the descriptor really is installed in the
    // words when the panic hits.
    mgr.set_fast_paths(false);
    let mut h = mgr.register();
    let a = CasWord::new(10);
    let b = CasWord::new(20);

    let result = catch_unwind(AssertUnwindSafe(|| {
        let _: TxResult<()> = h.run(|t| {
            assert!(t.nbtc_cas(&a, 10, 11, true, true));
            assert!(t.nbtc_cas(&b, 20, 21, true, true));
            // Both words now carry the descriptor (general path).
            panic!("boom in transaction body");
        });
    }));
    assert!(result.is_err(), "the panic must propagate");

    // The descriptor must be uninstalled and the speculation rolled back:
    // a plain observer sees the pre-transaction values, not a descriptor.
    assert_eq!(a.try_load_value(), Some(10));
    assert_eq!(b.try_load_value(), Some(20));
    assert!(!h.in_tx(), "unwind must close the transaction");

    // The handle is reusable: a fresh transaction commits.
    let res = h.run(|t| {
        let v = t.nbtc_load(&a);
        assert!(t.nbtc_cas(&a, v, v + 5, true, true));
        Ok(())
    });
    assert!(res.is_ok());
    assert_eq!(a.try_load_value(), Some(15));

    h.flush_stats();
    let snap = mgr.stats_snapshot();
    assert_eq!(snap.unwind_aborts, 1, "the unwind abort must be recorded");
    assert_eq!(snap.commits, 1);
}

/// Same regression through a container: the panic unwinds out of a skiplist
/// insert transaction and the structure stays consistent and usable.
#[test]
fn panic_mid_container_transaction_rolls_back() {
    let mgr = TxManager::new();
    let mut h = mgr.register();
    let sl = SkipList::<u64>::new();
    assert!(sl.insert(&mut h.nontx(), 1, 10));

    let result = catch_unwind(AssertUnwindSafe(|| {
        let _: TxResult<()> = h.run(|t| {
            assert_eq!(sl.remove(t, 1), Some(10));
            assert!(sl.insert(t, 2, 20));
            panic!("boom after two speculative container ops");
        });
    }));
    assert!(result.is_err());
    assert!(!h.in_tx());
    assert_eq!(sl.get(&mut h.nontx(), 1), Some(10), "remove rolled back");
    assert_eq!(sl.get(&mut h.nontx(), 2), None, "insert rolled back");
    assert_eq!(sl.len_quiescent(), 1);
}

/// Statistics are exact after a handle drop, without a manual
/// `flush_stats` call (the batched per-thread tallies flush in `Drop`).
#[test]
fn handle_drop_flushes_batched_stats_exactly() {
    let mgr = TxManager::new();
    let w = CasWord::new(0);
    const COMMITS: u64 = 7; // deliberately below the flush batch size
    {
        let mut h = mgr.register();
        for _ in 0..COMMITS {
            let res: TxResult<()> = h.run(|t| {
                let v = t.nbtc_load(&w);
                assert!(t.nbtc_cas(&w, v, v + 1, true, true));
                Ok(())
            });
            assert!(res.is_ok());
        }
        let _: TxResult<()> = h.run(|t| Err(t.abort(AbortReason::Explicit)));
        // No flush_stats here: dropping the handle must flush.
    }
    let snap = mgr.stats_snapshot();
    assert_eq!(snap.commits, COMMITS);
    assert_eq!(snap.aborts, 1);
    assert_eq!(snap.explicit_aborts, 1);
    assert_eq!(snap.fast_commits, COMMITS);
}

/// The bounded retry policy surfaces `RetriesExhausted` and the abort-reason
/// counters classify what happened.
#[test]
fn run_config_bounds_retries_and_stats_classify_aborts() {
    let mgr = TxManager::new();
    let mut h = mgr.register();
    let cfg = RunConfig::new().max_retries(2).backoff_limit(1);
    let mut attempts = 0u32;
    let res: TxResult<()> = h.run_with(&cfg, |t| {
        attempts += 1;
        Err(t.abort(AbortReason::Conflict))
    });
    assert_eq!(res, Err(TxError::RetriesExhausted));
    assert_eq!(attempts, 3);
    h.flush_stats();
    let snap = mgr.stats_snapshot();
    assert_eq!(snap.conflict_aborts, 3);
    assert_eq!(snap.aborts, 3);
    assert_eq!(snap.commits, 0);
}

/// 8-thread stress driving the *same* workload through both execution
/// contexts: half the operations run standalone (`NonTx`), half
/// transactionally (`Txn`), over a map and a queue.  Token conservation must
/// hold and all three commit paths must fire.
#[test]
fn mixed_nontx_and_txn_contexts_conserve_tokens() {
    const THREADS: usize = 8;
    const OPS: usize = 10_000;
    const TOKENS: u64 = 64;
    let mgr = TxManager::new();
    let table: Arc<MichaelHashMap<u64>> = Arc::new(MichaelHashMap::with_buckets(128));
    let queue: Arc<MsQueue<u64>> = Arc::new(MsQueue::new());
    {
        let mut h = mgr.register();
        for tok in 0..TOKENS {
            assert!(table.insert(&mut h.nontx(), tok, tok));
        }
    }

    let mut joins = Vec::new();
    for tix in 0..THREADS {
        let mgr = Arc::clone(&mgr);
        let table = Arc::clone(&table);
        let queue = Arc::clone(&queue);
        joins.push(std::thread::spawn(move || {
            let mut h = mgr.register();
            let mut rng = medley::util::FastRng::new(tix as u64 + 31);
            for _ in 0..OPS {
                let k = rng.next_below(TOKENS);
                match rng.next_below(5) {
                    // Lone single-op transactions (single-CAS direct-commit
                    // candidates): enqueue a sentinel, then try to dequeue
                    // it back; a real token drawn instead is restored by the
                    // explicit abort.
                    4 => {
                        let _ = h.run(|t| {
                            queue.enqueue(t, u64::MAX);
                            Ok(())
                        });
                        let _ = h.run(|t| {
                            if let Some(tok) = queue.dequeue(t) {
                                if tok != u64::MAX {
                                    queue.enqueue(t, tok);
                                    return Err(t.abort(AbortReason::Explicit));
                                }
                            }
                            Ok(())
                        });
                    }
                    // Transactional move table -> queue (two containers).
                    0 => {
                        let _ = h.run(|t| {
                            if let Some(tok) = table.remove(t, k) {
                                queue.enqueue(t, tok);
                            }
                            Ok(())
                        });
                    }
                    // Transactional move queue -> table.  Sentinels from
                    // case 4 are consumed by the dequeue alone (re-inserting
                    // one would wedge every later sentinel in a retry loop).
                    1 => {
                        let _ = h.run(|t| {
                            if let Some(tok) = queue.dequeue(t) {
                                if tok != u64::MAX && !table.insert(t, tok, tok) {
                                    // Own speculation went inconsistent
                                    // (duplicate observed): retry.
                                    return Err(t.abort(AbortReason::Conflict));
                                }
                            }
                            Ok(())
                        });
                    }
                    // Standalone reads (uninstrumented path).
                    2 => {
                        let mut cx = h.nontx();
                        if let Some(v) = table.get(&mut cx, k) {
                            assert_eq!(v, k, "value must match its key");
                        }
                        let _ = table.contains(&mut cx, k);
                    }
                    // Read-only transaction (descriptor-free commit).
                    _ => {
                        let _ = h.run(|t| {
                            if let Some(v) = table.get(t, k) {
                                assert_eq!(v, k);
                            }
                            Ok(())
                        });
                    }
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // Conservation: every token exists exactly once across both structures.
    let mut h = mgr.register();
    let mut seen = std::collections::HashSet::new();
    while let Some(tok) = queue.dequeue(&mut h.nontx()) {
        if tok != u64::MAX {
            assert!(seen.insert(tok), "token {tok} duplicated");
        }
    }
    for (k, v) in table.snapshot() {
        assert_eq!(k, v);
        assert!(seen.insert(k), "token {k} duplicated across structures");
    }
    assert_eq!(seen.len() as u64, TOKENS, "tokens must be conserved");
    drop(h);

    let snap = mgr.stats_snapshot();
    assert!(snap.commits > 0);
    assert!(
        snap.fast_commits > 0,
        "single-CAS direct commits must fire: {snap:?}"
    );
    assert!(
        snap.ro_commits > 0,
        "descriptor-free read-only commits must fire: {snap:?}"
    );
}

/// A transaction overflowing the descriptor's write capacity through a
/// container must surface `CapacityExceeded` instead of livelocking the
/// container's retry loop (regression: the overflowed CAS used to report
/// failure, which `insert` treats as contention and retries forever).
#[test]
fn container_transaction_over_capacity_fails_cleanly() {
    let mgr = TxManager::new();
    mgr.set_fast_paths(false);
    let mut h = mgr.register();
    let map = MichaelHashMap::<u64>::with_buckets(1 << 13);
    let n = (medley::MAX_ENTRIES + 2) as u64;
    let res: TxResult<()> = h.run(|t| {
        for k in 0..n {
            map.insert(t, k, k);
        }
        Ok(())
    });
    assert_eq!(res, Err(TxError::CapacityExceeded));
    assert!(!h.in_tx());
    assert_eq!(map.len_quiescent(), 0, "speculative inserts rolled back");
    // The handle and map stay usable afterwards.
    assert!(map.insert(&mut h.nontx(), 1, 1));
    assert_eq!(map.get(&mut h.nontx(), 1), Some(1));
}

/// The generic trait surface composes across containers: one function drives
/// any `TxMap` + `TxQueue` pair in either context.
#[test]
fn trait_level_composition_works_in_both_contexts() {
    fn transfer_in<M: TxMap<u64>, Q: TxQueue<u64>>(
        h: &mut medley::ThreadHandle,
        map: &M,
        q: &Q,
        key: u64,
    ) -> TxResult<()> {
        h.run(|t| {
            let v = map
                .remove(t, key)
                .ok_or_else(|| t.abort(AbortReason::Explicit))?;
            q.enqueue(t, v);
            Ok(())
        })
    }

    let mgr = TxManager::new();
    let mut h = mgr.register();
    let map = MichaelHashMap::<u64>::with_buckets(16);
    let queue = MsQueue::<u64>::new();
    assert!(map.insert(&mut h.nontx(), 3, 33));

    assert!(transfer_in(&mut h, &map, &queue, 3).is_ok());
    assert_eq!(
        transfer_in(&mut h, &map, &queue, 3),
        Err(TxError::Explicit),
        "missing key aborts explicitly"
    );
    assert_eq!(queue.dequeue(&mut h.nontx()), Some(33));
    assert!(queue.is_empty(&mut h.nontx()));
}
