//! Recovery stress for the sharded persistence domain: multi-threaded
//! prefix-consistency of recovered cuts, and payload-accounting invariants
//! under abort storms — all with a live background `EpochAdvancer`, so every
//! run crosses many durability horizons while operations are in flight.

use medley::{AbortReason, TxManager, TxResult};
use pmem::{DomainBackend, EpochAdvancer, NvmCostModel, PersistenceDomain};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txmontage::DurableHashMap;

/// 8 threads hammer a durable map with puts and removes across (at least)
/// 8 epochs, each thread periodically `sync`ing and recording the durable
/// floor it is now guaranteed.  Every concurrent recovery — and the final
/// one — must be a prefix-consistent cut:
///
/// * **nothing durable missing** — for every key, the recovered value is at
///   least the last value whose `sync` completed before the recovery
///   started (values are monotone per key, so "at least" is the cut check);
/// * **nothing newer than the horizon** — the recovered value was actually
///   written: it never exceeds the last value the owner wrote.
#[test]
fn recovery_is_a_prefix_consistent_cut_under_fire() {
    const THREADS: usize = 8;
    const KEYS_PER_THREAD: u64 = 8;
    const ROUNDS: u64 = 300;
    let mgr = TxManager::with_max_threads(THREADS + 2);
    let domain = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::ZERO);
    let map = Arc::new(DurableHashMap::hash_map(256, Arc::clone(&domain)));
    let advancer = EpochAdvancer::spawn(Arc::clone(&domain), Duration::from_micros(50));

    // `floors[k]` is a value for key `k` whose durability has been
    // guaranteed by a completed sync; `ceilings[k]` the newest value ever
    // written.  Writers only increase both.
    let floors: Vec<AtomicU64> = (0..THREADS as u64 * KEYS_PER_THREAD)
        .map(|_| AtomicU64::new(0))
        .collect();
    let ceilings: Vec<AtomicU64> = (0..THREADS as u64 * KEYS_PER_THREAD)
        .map(|_| AtomicU64::new(0))
        .collect();

    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let mgr = Arc::clone(&mgr);
            let map = Arc::clone(&map);
            let (floors, ceilings) = (&floors, &ceilings);
            s.spawn(move || {
                let mut h = mgr.register();
                for i in 1..=ROUNDS {
                    let k = t * KEYS_PER_THREAD + (i % KEYS_PER_THREAD);
                    // Ceiling first: the value may be visible the moment the
                    // put linearizes.
                    ceilings[k as usize].fetch_max(i, Ordering::SeqCst);
                    map.put(&mut h.nontx(), k, i);
                    if i % 32 == 0 {
                        // Everything completed before this sync is durable
                        // forever after.
                        map.sync();
                        floors[k as usize].fetch_max(i, Ordering::SeqCst);
                    }
                    if i % 64 == 17 {
                        // Removes churn payload retirement; the key is
                        // re-put with a larger value on the next round that
                        // hits it, so monotonicity is preserved (a removed
                        // key simply has no recovered entry).
                        map.remove(&mut h.nontx(), k);
                    }
                }
                map.sync();
            });
        }
        // Concurrent recoveries while the writers run.
        let check = |rec: &HashMap<u64, u64>, floors_at_start: &[u64]| {
            for (k, v) in rec {
                let ceiling = ceilings[*k as usize].load(Ordering::SeqCst);
                assert!(
                    *v <= ceiling,
                    "key {k}: recovered {v} was never written (ceiling {ceiling})"
                );
            }
            for (k, floor) in floors_at_start.iter().enumerate() {
                if *floor == 0 {
                    continue;
                }
                // The key may have been legitimately removed after the
                // floor was set; but if present, it must not be older.
                if let Some(v) = rec.get(&(k as u64)) {
                    assert!(
                        *v >= *floor,
                        "key {k}: recovered {v} older than durable floor {floor}"
                    );
                }
            }
        };
        for _ in 0..100 {
            let floors_at_start: Vec<u64> =
                floors.iter().map(|f| f.load(Ordering::SeqCst)).collect();
            let (rec, _horizon) = map.recover_with_horizon();
            check(&rec, &floors_at_start);
        }
    });
    drop(advancer);

    // Quiescent check: after a final sync the recovery equals the live map
    // exactly, and the domain accounting is consistent.
    domain.sync();
    let rec = map.recover();
    let mut h = mgr.register();
    let mut cx = h.nontx();
    let mut live = 0usize;
    for k in 0..THREADS as u64 * KEYS_PER_THREAD {
        let in_map = map.get(&mut cx, k);
        assert_eq!(rec.get(&k).copied(), in_map, "final cut differs on key {k}");
        live += usize::from(in_map.is_some());
    }
    assert_eq!(rec.len(), live);
    let stats = domain.stats();
    assert_eq!(stats.live_payloads, live);
    assert_eq!(
        stats.live_payloads + stats.free_slots,
        stats.allocated_slots,
        "every non-live slot must be on a free list exactly once: {stats:?}"
    );
    assert!(
        stats.persisted_epoch >= 8,
        "the stress must actually span many epochs: {stats:?}"
    );
}

/// Abort storms: transactions allocate payloads and then roll back (explicit
/// aborts and epoch-validation conflicts) on both payload-store backends.
/// Abandoned payloads must all be recycled — live counts reflect only
/// committed state and every allocated slot is either live or free after a
/// quiescent sync.
#[test]
fn abort_storms_leak_no_payloads() {
    const THREADS: usize = 8;
    const ROUNDS: u64 = 400;
    for backend in [DomainBackend::Arena, DomainBackend::MutexSlab] {
        let mgr = TxManager::with_max_threads(THREADS + 2);
        let domain = PersistenceDomain::with_backend(Arc::clone(&mgr), NvmCostModel::ZERO, backend);
        let map = Arc::new(DurableHashMap::hash_map(256, Arc::clone(&domain)));
        let advancer = EpochAdvancer::spawn(Arc::clone(&domain), Duration::from_micros(50));
        std::thread::scope(|s| {
            for t in 0..THREADS as u64 {
                let mgr = Arc::clone(&mgr);
                let map = Arc::clone(&map);
                s.spawn(move || {
                    let mut h = mgr.register();
                    for i in 0..ROUNDS {
                        let k = (t << 32) | (i % 16);
                        if i % 2 == 0 {
                            // Committed baseline traffic.
                            let _: TxResult<()> = h.run(|tx| {
                                map.put(tx, k, i);
                                Ok(())
                            });
                        } else {
                            // The storm: multi-payload transactions that
                            // always roll back.
                            let r: TxResult<()> = h.run(|tx| {
                                map.put(tx, k, i);
                                map.put(tx, k ^ 1, i);
                                map.remove(tx, k);
                                Err(tx.abort(AbortReason::Explicit))
                            });
                            assert!(r.is_err());
                        }
                    }
                });
            }
        });
        drop(advancer);
        domain.sync();
        domain.sync();
        let rec = map.recover();
        let stats = domain.stats();
        assert_eq!(
            stats.live_payloads,
            rec.len(),
            "{backend:?}: live payloads must equal recoverable keys: {stats:?}"
        );
        assert_eq!(
            stats.live_payloads + stats.free_slots,
            stats.allocated_slots,
            "{backend:?}: abort storm leaked payload slots: {stats:?}"
        );
        // Aborted values (odd rounds) must never be recovered: every
        // recovered value came from a committed even-round put.
        for (k, v) in &rec {
            assert!(
                v % 2 == 0,
                "{backend:?}: aborted put of {v} for key {k} was recovered"
            );
        }
    }
}
