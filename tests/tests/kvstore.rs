//! Service-layer integration tests: the kvstore server driven over real
//! loopback TCP connections.
//!
//! * `transfer_stress_conserves_over_loopback` — 8 pipelined client
//!   connections hammer `TRANSFER` over a hot zipfian keyset while
//!   read-only `MGET` audits assert the total balance is conserved *in
//!   every atomic snapshot*, not just at the end; afterwards the exact
//!   post-drain statistics must show real contention (`conflict_aborts >
//!   0`) and a consistent commit-path partition (`commits == fast + ro +
//!   general`).
//! * `durable_restart_recovers_sync_acked_state` — a durable server with a
//!   manual epoch clock is stopped after a `SYNC`; the recovered map must
//!   equal exactly the state the `SYNC` acknowledged (later un-synced
//!   writes lost), and a "restarted" server reloaded from that cut serves
//!   it back over the wire.

use bench::workload::KeyDist;
use kvstore::{Client, KvError, Server, ServerConfig, StoreBackend, StoreConfig, TableKind};
use medley::util::FastRng;
use std::collections::HashMap;
use std::time::Duration;

#[test]
fn transfer_stress_conserves_over_loopback() {
    const ACCOUNTS: u64 = 8;
    const INITIAL: u64 = 1 << 20;
    const CONNECTIONS: usize = 8;
    const ROUNDS: u64 = 1500;

    let cfg = ServerConfig {
        workers: 4,
        store: StoreConfig {
            // Mixed tables: the hot accounts spread over hash *and*
            // skiplist shards, so transfers compose different structure
            // types in one transaction.
            tables: TableKind::Mixed,
            shards: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Server::start(&cfg).expect("start server");
    let addr = server.local_addr();

    {
        let mut c = Client::connect(addr).expect("preload");
        let pairs: Vec<(u64, u64)> = (0..ACCOUNTS).map(|k| (k, INITIAL)).collect();
        c.mset(&pairs).expect("preload mset");
    }

    std::thread::scope(|s| {
        for t in 0..CONNECTIONS {
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let sampler = KeyDist::Zipfian(0.99).sampler(ACCOUNTS);
                let mut rng = FastRng::new(0x7AA + t as u64);
                for i in 1..=ROUNDS {
                    if i.is_multiple_of(64) {
                        // Read-only audit: one atomic MGET snapshot across
                        // all shards must conserve the total even while
                        // transfers are mid-flight on other connections.
                        let keys: Vec<u64> = (0..ACCOUNTS).collect();
                        let vals = c.mget(&keys).expect("audit mget");
                        let sum: u64 = vals.iter().map(|v| v.expect("account present")).sum();
                        assert_eq!(sum, ACCOUNTS * INITIAL, "audit saw a torn state");
                        continue;
                    }
                    let from = sampler.sample(&mut rng);
                    let mut to = sampler.sample(&mut rng);
                    if to == from {
                        to = (to + 1) % ACCOUNTS;
                    }
                    match c.transfer(from, to, 1) {
                        Ok(_) => {}
                        // Balance drained or retry budget exhausted: both
                        // leave the store untouched.
                        Err(KvError::Server(_)) => {}
                        Err(e) => panic!("transport failure: {e}"),
                    }
                }
            });
        }
    });

    // Final conservation check over the wire.
    {
        let mut c = Client::connect(addr).expect("final check");
        let keys: Vec<u64> = (0..ACCOUNTS).collect();
        let vals = c.mget(&keys).expect("final mget");
        let sum: u64 = vals.iter().map(|v| v.expect("account present")).sum();
        assert_eq!(sum, ACCOUNTS * INITIAL, "transfers must conserve balance");
    }

    // Drain the pool: every worker handle drops and flushes, so the
    // snapshot below is exact.
    let store = server.shutdown();
    let snap = store.manager().stats_snapshot();
    assert!(snap.commits > 0, "stress must commit: {snap:?}");
    assert_eq!(
        snap.commits,
        snap.fast_commits + snap.ro_commits + snap.general_commits,
        "commit paths must partition commits exactly: {snap:?}"
    );
    assert!(
        snap.general_commits > 0,
        "transfers publish descriptors: {snap:?}"
    );
    assert!(
        snap.conflict_aborts > 0,
        "a hot zipfian keyset under 8 connections must conflict: {snap:?}"
    );
}

#[test]
fn scan_stress_conserves_over_loopback() {
    // 8 pipelined connections hammer TRANSFER over range-partitioned
    // skiplist shards while interleaved SCANs audit the whole key space:
    // a scan page is one atomic read-only transaction, so every page must
    // be ordered, complete, and conserve the total balance even with
    // transfers mid-flight on the other connections.
    const ACCOUNTS: u64 = 64;
    const INITIAL: u64 = 1 << 16;
    const CONNECTIONS: usize = 8;
    const ROUNDS: u64 = 800;

    let cfg = ServerConfig {
        workers: 4,
        store: StoreConfig {
            tables: TableKind::Skip,
            shards: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Server::start(&cfg).expect("start server");
    let addr = server.local_addr();
    // Stride accounts across the u64 space so the range partition spreads
    // them over every shard (and scans cross shard boundaries).
    let stride = u64::MAX / ACCOUNTS;

    {
        let mut c = Client::connect(addr).expect("preload");
        let pairs: Vec<(u64, u64)> = (0..ACCOUNTS).map(|i| (i * stride, INITIAL)).collect();
        c.mset(&pairs).expect("preload mset");
    }

    std::thread::scope(|s| {
        for t in 0..CONNECTIONS {
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let sampler = KeyDist::Zipfian(0.99).sampler(ACCOUNTS);
                let mut rng = FastRng::new(0x5CA2 + t as u64);
                for i in 1..=ROUNDS {
                    if i.is_multiple_of(16) {
                        // Read-only audit: one atomic ordered page of the
                        // whole space.
                        let page = c.scan(0, u64::MAX, ACCOUNTS as u32).expect("audit scan");
                        assert_eq!(page.len() as u64, ACCOUNTS, "scan missed accounts");
                        let mut sum = 0u64;
                        let mut prev: Option<u64> = None;
                        for (k, v) in &page {
                            assert!(prev < Some(*k), "page keys must be strictly ascending");
                            prev = Some(*k);
                            sum += v.as_u64().expect("word-only workload");
                        }
                        assert_eq!(sum, ACCOUNTS * INITIAL, "scan saw a torn state");
                        continue;
                    }
                    let from = sampler.sample(&mut rng);
                    let mut to = sampler.sample(&mut rng);
                    if to == from {
                        to = (to + 1) % ACCOUNTS;
                    }
                    match c.transfer(from * stride, to * stride, 1) {
                        Ok(_) => {}
                        Err(KvError::Server(_)) => {}
                        Err(e) => panic!("transport failure: {e}"),
                    }
                }
            });
        }
    });

    // Final page over the wire, then exact post-drain statistics.
    {
        let mut c = Client::connect(addr).expect("final check");
        let page = c.scan(0, u64::MAX, ACCOUNTS as u32).expect("final scan");
        let sum: u64 = page
            .iter()
            .map(|(_, v)| v.as_u64().expect("word-only workload"))
            .sum();
        assert_eq!(sum, ACCOUNTS * INITIAL, "transfers must conserve balance");
    }
    let store = server.shutdown();
    let snap = store.manager().stats_snapshot();
    assert!(
        snap.ro_commits > 0,
        "scans commit on the read-only path: {snap:?}"
    );
    assert!(
        snap.general_commits > 0,
        "transfers publish descriptors: {snap:?}"
    );
}

#[test]
fn durable_restart_recovers_sync_acked_state() {
    let cfg = ServerConfig {
        workers: 2,
        store: StoreConfig {
            backend: StoreBackend::Durable,
            // Manual epoch clock: only SYNC moves the durability horizon,
            // so the recovery cut is exactly the last acknowledged SYNC.
            advancer_period: None,
            tables: TableKind::Mixed,
            shards: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Server::start(&cfg).expect("start durable server");
    let addr = server.local_addr();

    // Mutate the store while mirroring the expected contents client-side.
    let mut expected: HashMap<u64, u64> = HashMap::new();
    let mut c = Client::connect(addr).expect("connect");
    let mut rng = FastRng::new(42);
    for k in 0..64u64 {
        let v = rng.next_u64() >> 1;
        c.put(k, v).expect("put");
        expected.insert(k, v);
    }
    for k in (0..64u64).step_by(3) {
        c.del(k).expect("del");
        expected.remove(&k);
    }
    c.mset(&[(100, 1), (101, 2), (102, 3)]).expect("mset");
    expected.extend([(100, 1), (101, 2), (102, 3)]);

    // The durability cut: everything above is acknowledged durable.
    let epoch = c.sync().expect("sync");
    assert!(epoch >= 1);

    // Post-sync writes: acknowledged, but *not* covered by the cut (the
    // epoch clock is manual, so nothing advances past them).
    for k in 200..232u64 {
        c.put(k, k).expect("post-sync put");
    }
    c.del(101).expect("post-sync del");
    drop(c);

    // "Crash": stop the server without another sync.
    let store = server.shutdown();
    let recovered = store.recover();
    let recovered: HashMap<u64, u64> = recovered
        .into_iter()
        .map(|(k, v)| (k, v.as_u64().expect("word-only workload")))
        .collect();
    assert_eq!(
        recovered, expected,
        "recovery must equal exactly the SYNC-acknowledged state"
    );

    // "Restart": bring up a fresh server seeded from the recovered cut and
    // verify the state round-trips over the wire.
    let server2 = Server::start(&cfg).expect("restart server");
    let mut c = Client::connect(server2.local_addr()).expect("reconnect");
    let pairs: Vec<(u64, u64)> = recovered.iter().map(|(&k, &v)| (k, v)).collect();
    for chunk in pairs.chunks(256) {
        c.mset(chunk).expect("reload");
    }
    for (&k, &v) in &expected {
        assert_eq!(c.get(k).expect("get"), Some(v), "key {k} after restart");
    }
    assert_eq!(
        c.get(201).expect("get"),
        None,
        "un-synced write must be lost"
    );
    assert_eq!(
        c.get(101).expect("get"),
        Some(2),
        "un-synced delete must be rolled back by recovery"
    );
    drop(c);
    server2.shutdown();
}

#[test]
fn batch_transactions_over_the_wire_are_atomic() {
    // A BATCH is one transaction: a concurrent reader pipelining MGETs must
    // never observe a partially applied batch (the two keys are flipped
    // together every time).
    const FLIPS: u64 = 400;
    let server = Server::start(&ServerConfig::default()).expect("start server");
    let addr = server.local_addr();
    {
        let mut c = Client::connect(addr).expect("preload");
        c.mset(&[(1, 0), (2, 1)]).expect("mset");
    }
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut c = Client::connect(addr).expect("writer");
            for i in 0..FLIPS {
                let (a, b) = ((i + 1) % 2, i % 2);
                c.batch(vec![kvstore::Cmd::Put(1, a), kvstore::Cmd::Put(2, b)])
                    .expect("batch");
            }
        });
        s.spawn(move || {
            let mut c = Client::connect(addr).expect("reader");
            for _ in 0..FLIPS {
                let vals = c.mget(&[1, 2]).expect("mget");
                let (a, b) = (vals[0].unwrap(), vals[1].unwrap());
                assert_eq!(a + b, 1, "snapshot split a batch: {a} + {b}");
            }
        });
    });
    server.shutdown();
}

#[test]
fn durable_server_with_live_advancer_recovers_prefix() {
    // With a real ticking epoch clock, a recovery cut taken mid-run is a
    // consistent prefix: per-key values only move forward (each key is
    // written with increasing values by a single connection).
    let cfg = ServerConfig {
        workers: 2,
        store: StoreConfig {
            backend: StoreBackend::Durable,
            advancer_period: Some(Duration::from_micros(100)),
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Server::start(&cfg).expect("start server");
    let addr = server.local_addr();
    let mut c = Client::connect(addr).expect("connect");
    for round in 1..=200u64 {
        for k in 0..8u64 {
            c.put(k, round).expect("put");
        }
    }
    let synced_epoch = c.sync().expect("sync");
    assert!(synced_epoch >= 1);
    drop(c);
    let store = server.shutdown();
    let rec = store.recover();
    for k in 0..8u64 {
        assert_eq!(
            rec.get(&k),
            Some(&pmem::Value::U64(200)),
            "final sync must cover key {k}"
        );
    }
}
