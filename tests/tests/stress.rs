//! Multi-threaded stress tests for the commit pipeline: conservation
//! invariants under 8 threads × 10 000 transactions exercising the
//! single-CAS direct commit, the descriptor-free read-only commit, and the
//! general descriptor path in one workload — plus a 16-thread zipfian
//! hot-word stress that drives the *contended* regime (install conflicts,
//! helping) and asserts it actually happened via the statistics.

use bench::workload::{run_hot_transfer, KeyDist, ThroughputConfig};
use medley::{AbortReason, CasWord, Ctx, TxManager, TxResult};
use nbds::{MichaelHashMap, MsQueue, SplitOrderedMap, TxMap, TxQueue};
use std::sync::Arc;

const THREADS: usize = 8;
const TXS_PER_THREAD: usize = 10_000;

/// Bank-transfer invariant across raw `CasWord`s: a mix of two-word
/// transfers (general MCNS path), single-word deposits matched by later
/// withdrawals (single-CAS fast path), and read-only audits (descriptor-free
/// path).  The sum over all accounts must be invariant, every audit must
/// observe the invariant, and the statistics must show that all three commit
/// paths actually ran.
#[test]
fn bank_transfer_conservation_across_cas_words() {
    const ACCOUNTS: u64 = 16;
    const INITIAL: u64 = 1_000;
    let mgr = TxManager::new();
    let accounts: Arc<Vec<CasWord>> =
        Arc::new((0..ACCOUNTS).map(|_| CasWord::new(INITIAL)).collect());

    let mut joins = Vec::new();
    for t in 0..THREADS {
        let mgr = Arc::clone(&mgr);
        let accounts = Arc::clone(&accounts);
        joins.push(std::thread::spawn(move || {
            let mut h = mgr.register();
            let mut rng = medley::util::FastRng::new(t as u64 + 1);
            for _ in 0..TXS_PER_THREAD {
                match rng.next_below(5) {
                    // Two-word transfer: general descriptor path.
                    0..=2 => {
                        let from = rng.next_below(ACCOUNTS) as usize;
                        let to = rng.next_below(ACCOUNTS) as usize;
                        if from == to {
                            continue;
                        }
                        let amt = 1 + rng.next_below(5);
                        let _ = h.run(|t| {
                            let a = t.nbtc_load(&accounts[from]);
                            let b = t.nbtc_load(&accounts[to]);
                            if a < amt {
                                return Err(t.abort(AbortReason::Explicit));
                            }
                            if !t.nbtc_cas(&accounts[from], a, a - amt, true, true) {
                                return Err(t.abort(AbortReason::Conflict));
                            }
                            if !t.nbtc_cas(&accounts[to], b, b + amt, true, true) {
                                return Err(t.abort(AbortReason::Conflict));
                            }
                            Ok(())
                        });
                    }
                    // Self-transfer rebalance: a single-CAS transaction that
                    // does not change the total (add then subtract on one
                    // account within the same speculative write).
                    3 => {
                        let acc = rng.next_below(ACCOUNTS) as usize;
                        let _ = h.run(|t| {
                            let v = t.nbtc_load(&accounts[acc]);
                            if !t.nbtc_cas(&accounts[acc], v, v + 7, true, true) {
                                return Err(t.abort(AbortReason::Conflict));
                            }
                            // Rewrite of the same buffered word: still one
                            // write-set entry, still the direct commit.
                            if !t.nbtc_cas(&accounts[acc], v + 7, v, true, true) {
                                return Err(t.abort(AbortReason::Conflict));
                            }
                            Ok(())
                        });
                    }
                    // Read-only audit: must always observe the invariant.
                    _ => {
                        let total: TxResult<u64> = h.run(|t| {
                            let mut sum = 0;
                            for w in accounts.iter() {
                                let (v, c) = t.nbtc_load_counted(w);
                                t.add_read_with_counter(w, v, c);
                                sum += v;
                            }
                            Ok(sum)
                        });
                        if let Ok(sum) = total {
                            assert_eq!(
                                sum,
                                ACCOUNTS * INITIAL,
                                "audit observed a non-serializable state"
                            );
                        }
                    }
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    let total: u64 = accounts.iter().map(|w| w.try_load_value().unwrap()).sum();
    assert_eq!(total, ACCOUNTS * INITIAL, "money must be conserved");

    let snap = mgr.stats_snapshot();
    assert!(snap.commits > 0);
    assert!(
        snap.fast_commits > 0,
        "single-CAS transactions must take the direct path: {snap:?}"
    );
    assert!(
        snap.ro_commits > 0,
        "read-only audits must take the descriptor-free path: {snap:?}"
    );
    assert!(
        snap.commits > snap.fast_commits + snap.ro_commits,
        "two-word transfers must exercise the general path: {snap:?}"
    );
}

/// Conservation under *hot* contention: 16 threads hammer 8 accounts with
/// zipfian-picked transfers (theta 0.99 concentrates most traffic on one or
/// two words), interleaved with read-only audits that must always observe
/// the invariant.  The workload itself is `bench::workload::run_hot_transfer`
/// — the same transaction bodies the throughput harness measures — which
/// asserts conservation internally (mid-run audits and an end-of-run total).
/// On top of that, this test asserts the contended regime actually
/// materialized: nonzero `conflict_aborts` (lost installs / invalidated
/// reads), nonzero `helps` (a thread finalized someone else's published
/// descriptor), and a commit-path mix covering the general and read-only
/// paths.  Because descriptors are only visible during the commit window
/// under lazy publication, a single short round on a small host may not
/// produce a help; the workload repeats (bounded) until the counters are
/// nonzero.
#[test]
fn zipfian_hot_word_contention_stress() {
    const WORDS: u64 = 8;
    const MAX_ROUNDS: usize = 10;
    let cfg = ThroughputConfig {
        threads: 16,
        duration: std::time::Duration::from_millis(100),
        dist: KeyDist::Zipfian(0.99),
    };

    let mut commits = 0u64;
    let mut general_commits = 0u64;
    let mut ro_commits = 0u64;
    let mut conflict_aborts = 0u64;
    let mut helps = 0u64;
    for _ in 0..MAX_ROUNDS {
        let r = run_hot_transfer(&cfg, WORDS);
        commits += r.stats.commits;
        general_commits += r.stats.general_commits;
        ro_commits += r.stats.ro_commits;
        conflict_aborts += r.stats.conflict_aborts;
        helps += r.stats.helps;
        if conflict_aborts > 0 && helps > 0 {
            break;
        }
    }

    assert!(commits > 0);
    assert!(
        general_commits > 0,
        "zipfian transfers must exercise the general path (commits={commits})"
    );
    assert!(
        ro_commits > 0,
        "audits must exercise the read-only path (commits={commits})"
    );
    assert!(
        conflict_aborts > 0,
        "a hot {WORDS}-word set under 16 threads must produce conflicts (commits={commits})"
    );
    assert!(
        helps > 0,
        "contended commits must produce cross-thread helping (commits={commits})"
    );
}

/// Token conservation across a queue and a map: transactions move tokens
/// queue→table and table→queue; lone enqueues/dequeues and lookups exercise
/// the fast paths through the `nbds` containers.  Generic over [`TxMap`] so
/// the same composition stress covers every map implementation; `snapshot`
/// drains the map's final state (not part of the trait).
fn run_queue_map_transfer<M>(table: Arc<M>, snapshot: impl FnOnce(&M) -> Vec<(u64, u64)>)
where
    M: TxMap<u64> + 'static,
{
    const TOKENS: u64 = 64;
    let mgr = TxManager::new();
    let queue: Arc<MsQueue<u64>> = Arc::new(MsQueue::new());
    // Drive the queue exclusively through the `TxQueue` trait object surface
    // (generically), proving queues are harness-swappable like maps.
    fn enq<Q: TxQueue<u64>, C: Ctx>(q: &Q, cx: &mut C, v: u64) {
        q.enqueue(cx, v);
    }
    fn deq<Q: TxQueue<u64>, C: Ctx>(q: &Q, cx: &mut C) -> Option<u64> {
        q.dequeue(cx)
    }
    {
        let mut h = mgr.register();
        for tok in 0..TOKENS {
            enq(&*queue, &mut h.nontx(), tok);
        }
    }

    let mut joins = Vec::new();
    for t in 0..THREADS {
        let mgr = Arc::clone(&mgr);
        let queue = Arc::clone(&queue);
        let table = Arc::clone(&table);
        joins.push(std::thread::spawn(move || {
            let mut h = mgr.register();
            let mut rng = medley::util::FastRng::new(t as u64 + 101);
            for _ in 0..TXS_PER_THREAD {
                match rng.next_below(4) {
                    // Queue → table (two containers, general path).
                    0 => {
                        let _ = h.run(|t| {
                            if let Some(tok) = deq(&*queue, t) {
                                // Helper markers from case 2 are consumed by
                                // the dequeue alone; real tokens move into
                                // the table.
                                if tok != u64::MAX && !table.insert(t, tok, tok) {
                                    // Inconsistent speculation: retry.
                                    return Err(t.abort(AbortReason::Conflict));
                                }
                            }
                            Ok(())
                        });
                    }
                    // Table → queue.
                    1 => {
                        let k = rng.next_below(TOKENS);
                        let _ = h.run(|t| {
                            if let Some(tok) = table.remove(t, k) {
                                enq(&*queue, t, tok);
                            }
                            Ok(())
                        });
                    }
                    // Lone enqueue+dequeue round trip: single-op txs through
                    // the direct-commit path.
                    2 => {
                        let _ = h.run(|t| {
                            enq(&*queue, t, u64::MAX);
                            Ok(())
                        });
                        let _ = h.run(|t| {
                            // The helper token may be interleaved with real
                            // tokens; push non-tokens back where a real token
                            // was drawn.
                            if let Some(tok) = deq(&*queue, t) {
                                if tok != u64::MAX {
                                    enq(&*queue, t, tok);
                                    return Err(t.abort(AbortReason::Explicit));
                                }
                            }
                            Ok(())
                        });
                    }
                    // Read-only lookup transaction.
                    _ => {
                        let k = rng.next_below(TOKENS);
                        let _ = h.run(|t| {
                            if let Some(v) = table.get(t, k) {
                                assert_eq!(v, k, "value must always match its key");
                            }
                            Ok(())
                        });
                    }
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // Drain and count: every original token exists exactly once across the
    // two structures (helper tokens from case 2 were balanced out by the
    // explicit aborts, but count whatever remains defensively).
    let mut h = mgr.register();
    let mut seen = std::collections::HashSet::new();
    while let Some(tok) = queue.dequeue(&mut h.nontx()) {
        if tok != u64::MAX {
            assert!(seen.insert(tok), "token {tok} duplicated");
        }
    }
    for (k, v) in snapshot(table.as_ref()) {
        assert_eq!(k, v);
        assert!(seen.insert(k), "token {k} duplicated across structures");
    }
    assert_eq!(seen.len() as u64, TOKENS, "tokens must be conserved");
    drop(h);

    let snap = mgr.stats_snapshot();
    assert!(
        snap.fast_commits > 0,
        "container fast path never taken: {snap:?}"
    );
    assert!(
        snap.ro_commits > 0,
        "container read-only path never taken: {snap:?}"
    );
}

#[test]
fn queue_hashtable_transfer_conserves_tokens() {
    run_queue_map_transfer(
        Arc::new(MichaelHashMap::<u64>::with_buckets(128)),
        MichaelHashMap::snapshot,
    );
}

/// The same queue↔map composition over the elastic table with **zero
/// pre-sizing**: it boots at the minimum directory and any growth happens
/// while the transactional traffic is live.
#[test]
fn queue_split_ordered_transfer_conserves_tokens() {
    run_queue_map_transfer(
        Arc::new(SplitOrderedMap::<u64>::new()),
        SplitOrderedMap::snapshot,
    );
}
