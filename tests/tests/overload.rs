//! Overload-robustness integration tests: admission control, load
//! shedding, and backpressure on the kvstore server, driven over real
//! loopback TCP.
//!
//! The deterministic tests run the server with `shed_high = 0`, which makes
//! every worker shed every transactional command from its first pass — no
//! timing is involved, so the semantics of `ABORT_OVERLOAD` (no partial
//! effects, preserved pipelining order, bounded client retries) are checked
//! exactly.  The flood test exercises the byte-level backpressure
//! watermarks: a peer that never reads its responses must stop being read
//! long before it can buffer unbounded memory server-side, while a
//! well-behaved connection on the *same worker* keeps being served.

use kvstore::{
    Client, Cmd, ErrCode, KvError, OverloadConfig, Request, Response, Server, ServerConfig,
    StoreConfig,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A server whose every transactional command is shed deterministically.
fn always_shedding_server(workers: usize) -> Server {
    let cfg = ServerConfig {
        workers,
        store: StoreConfig {
            shards: 2,
            ..Default::default()
        },
        overload: OverloadConfig {
            shed_high: 0,
            shed_low: 0,
            ..Default::default()
        },
        ..Default::default()
    };
    Server::start(&cfg).expect("start always-shedding server")
}

#[test]
fn shed_transfer_has_no_partial_effects() {
    const ACCOUNTS: u64 = 6;
    const INITIAL: u64 = 1000;
    let server = always_shedding_server(2);
    let mut c = Client::connect(server.local_addr()).expect("connect");

    // Preload through single-key PUTs: those are never shed (they cost
    // about as much as the shed response would).
    for k in 0..ACCOUNTS {
        c.put(k, INITIAL).expect("preload put");
    }

    // Every transfer is refused at admission — before execution — so no
    // partial debit/credit can exist, even across many attempts.
    for i in 0..20u64 {
        let from = i % ACCOUNTS;
        let to = (i + 1) % ACCOUNTS;
        match c
            .call(&Request::Cmd(Cmd::Transfer {
                from,
                to,
                amount: 7,
            }))
            .expect("transport")
        {
            Response::Err(ErrCode::Overload) => {}
            other => panic!("expected ABORT_OVERLOAD, got {other:?}"),
        }
    }

    // Audit through single-key GETs (an MGET would itself be shed): every
    // balance is exactly the preload value.
    for k in 0..ACCOUNTS {
        assert_eq!(
            c.get(k).expect("audit get"),
            Some(INITIAL),
            "shed transfer must leave key {k} untouched"
        );
    }
    server.shutdown();
}

#[test]
fn typed_client_retries_overload_with_bounded_budget() {
    let server = always_shedding_server(1);
    let mut c = Client::connect(server.local_addr()).expect("connect");
    c.put(1, 10).expect("put");
    c.put(2, 10).expect("put");

    // The typed API absorbs Overload with jittered resends, but the budget
    // is bounded: against a permanently shedding server the error must
    // surface instead of retrying forever.
    let started = Instant::now();
    match c.transfer(1, 2, 1) {
        Err(KvError::Server(ErrCode::Overload)) => {}
        other => panic!("expected bounded retry then Overload, got {other:?}"),
    }
    assert!(
        c.overload_retries() > 0,
        "the bounded retry path must have been exercised"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "retry budget must bound the stall"
    );
    // The connection stays healthy for non-shed traffic afterwards.
    assert_eq!(c.get(1).expect("get"), Some(10));
    server.shutdown();
}

#[test]
fn pipelined_req_ids_stay_ordered_across_shed_responses() {
    let server = always_shedding_server(1);
    let mut c = Client::connect(server.local_addr()).expect("connect");
    for k in 0..4u64 {
        c.put(k, 5).expect("preload put");
    }

    // Pipeline a mix where shed (transactional) and served (single-key)
    // requests interleave, then receive them all.  `Client::recv` checks
    // the echoed req-id against the oldest in-flight id, so a shed
    // response answered out of arrival order would fail the pairing.
    let mut expected = Vec::new();
    for i in 0..40u64 {
        match i % 4 {
            0 => {
                c.send(&Request::Cmd(Cmd::Get(i % 4))).expect("send");
                expected.push("ok");
            }
            1 => {
                c.send(&Request::Cmd(Cmd::Transfer {
                    from: 0,
                    to: 1,
                    amount: 1,
                }))
                .expect("send");
                expected.push("overload");
            }
            2 => {
                c.send(&Request::Cmd(Cmd::MGet(vec![0, 1]))).expect("send");
                expected.push("overload");
            }
            _ => {
                c.send(&Request::Cmd(Cmd::Contains(i % 4))).expect("send");
                expected.push("ok");
            }
        }
    }
    for (i, want) in expected.iter().enumerate() {
        let resp = c.recv().expect("recv in order");
        match (*want, &resp) {
            ("ok", Response::Ok(_)) => {}
            ("overload", Response::Err(ErrCode::Overload)) => {}
            (w, got) => panic!("position {i}: wanted {w}, got {got:?}"),
        }
    }
    assert_eq!(c.in_flight(), 0);
    server.shutdown();
}

#[test]
fn stats_report_shed_and_load_counters() {
    let server = always_shedding_server(1);
    let mut c = Client::connect(server.local_addr()).expect("connect");
    c.put(1, 1).expect("put");
    for _ in 0..5 {
        match c
            .call(&Request::Cmd(Cmd::MGet(vec![1])))
            .expect("transport")
        {
            Response::Err(ErrCode::Overload) => {}
            other => panic!("expected shed, got {other:?}"),
        }
    }
    // STATS is admin traffic: answered even while shedding, and it carries
    // the load section only a live server (not a bare store) can fill.
    let stats = c.stats().expect("stats");
    let load = stats
        .load
        .expect("server stats must carry the load section");
    assert!(load.shed_requests >= 5, "sheds: {}", load.shed_requests);
    assert_eq!(load.accept_retries, 0);
    // The in-process view agrees with the wire view.
    assert!(server.load_stats().shed_requests >= load.shed_requests);
    server.shutdown();
}

/// One hand-encoded `GET(0)` request frame (little-endian length prefix,
/// req id, opcode, key) — the flood payload.
fn raw_get_frame(req_id: u32) -> [u8; 17] {
    let mut f = [0u8; 17];
    f[..4].copy_from_slice(&13u32.to_le_bytes());
    f[4..8].copy_from_slice(&req_id.to_le_bytes());
    f[8] = 0x01;
    // key 0 already zeroed.
    f
}

#[test]
fn flooding_connection_is_bounded_and_does_not_starve_others() {
    // One worker, tight watermarks: the flooder and the well-behaved client
    // share the same worker thread, so fairness cannot come from scheduling
    // luck.
    let cfg = ServerConfig {
        workers: 1,
        store: StoreConfig {
            shards: 2,
            ..Default::default()
        },
        overload: OverloadConfig {
            wbuf_high: 8 << 10,
            wbuf_low: 2 << 10,
            rbuf_high: 16 << 10,
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Server::start(&cfg).expect("start server");
    let addr = server.local_addr();

    // The flooder writes request frames as fast as the socket accepts them
    // and never reads a byte of response.  Once its response buffer passes
    // `wbuf_high` the server stops reading it; from then on the kernel
    // socket buffers fill and writes stall — the accepted byte count must
    // plateau far below "unbounded".
    let flooder = TcpStream::connect(addr).expect("flood connect");
    flooder.set_nonblocking(true).expect("nonblocking");
    let mut flooder = flooder;
    let mut accepted: u64 = 0;
    let mut req_id: u32 = 1;
    let mut stalled_passes = 0u32;
    const ACCEPT_CAP: u64 = 16 << 20;
    let deadline = Instant::now() + Duration::from_secs(10);
    while stalled_passes < 40 && accepted < ACCEPT_CAP && Instant::now() < deadline {
        let frame = raw_get_frame(req_id);
        match flooder.write(&frame) {
            Ok(n) => {
                accepted += n as u64;
                req_id = req_id.wrapping_add(1);
                stalled_passes = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                stalled_passes += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("flood write failed: {e}"),
        }
    }
    assert!(
        accepted < ACCEPT_CAP,
        "backpressure never engaged: server accepted {accepted} bytes from a peer that reads nothing"
    );

    // While the flooder is wedged (its backlog parked server-side), a
    // well-behaved connection on the same worker still gets full service.
    let mut c = Client::connect(addr).expect("connect");
    for k in 0..50u64 {
        c.put(k, k + 1).expect("put during flood");
        assert_eq!(c.get(k).expect("get during flood"), Some(k + 1));
    }
    assert!(
        c.transfer(1, 2, 1).is_ok(),
        "transactional traffic must still be served during the flood"
    );

    // Resolve the flood: read what the server owes, then the server-side
    // buffers drain and stay bounded.
    flooder.set_nonblocking(false).expect("blocking for drain");
    flooder
        .set_read_timeout(Some(Duration::from_millis(200)))
        .expect("read timeout");
    let mut sink = [0u8; 64 << 10];
    let mut drained = 0u64;
    while let Ok(n) = flooder.read(&mut sink) {
        if n == 0 {
            break;
        }
        drained += n as u64;
        if drained > 64 << 20 {
            panic!("server wrote more response bytes than any bounded buffer could hold");
        }
    }
    drop(flooder);
    let load = server.load_stats();
    assert!(
        load.peak_inflight_bytes < ACCEPT_CAP,
        "peak backlog {} must stay bounded",
        load.peak_inflight_bytes
    );
    server.shutdown();
}
