//! Cross-crate integration tests: transactions spanning multiple structure
//! types, persistence layered on transactional maps, and end-to-end TPC-C
//! consistency on every backend.

use medley::{AbortReason, TxManager, TxResult};
use nbds::{MichaelHashMap, MsQueue, SkipList};
use pmem::{NvmCostModel, PersistenceDomain};
use std::sync::Arc;
use txmontage::DurableHashMap;

#[test]
fn transaction_spanning_queue_hash_and_skiplist() {
    let mgr = TxManager::new();
    let mut h = mgr.register();
    let queue: MsQueue<u64> = MsQueue::new();
    let map: MichaelHashMap<u64> = MichaelHashMap::with_buckets(64);
    let index: SkipList<u64> = SkipList::new();

    map.insert(&mut h.nontx(), 10, 100);

    // Move a value from the hash map into both the queue and the skiplist,
    // atomically across three different structure types.
    let res: TxResult<()> = h.run(|h| {
        let v = map.remove(h, 10).expect("key present");
        queue.enqueue(h, v);
        index.insert(h, v, 1);
        Ok(())
    });
    assert!(res.is_ok());
    assert_eq!(map.get(&mut h.nontx(), 10), None);
    assert_eq!(queue.dequeue(&mut h.nontx()), Some(100));
    assert!(index.contains(&mut h.nontx(), 100));

    // The same composition, aborted, leaves every structure untouched.
    map.insert(&mut h.nontx(), 20, 200);
    let res: TxResult<()> = h.run(|h| {
        let v = map.remove(h, 20).unwrap();
        queue.enqueue(h, v);
        index.insert(h, v, 1);
        Err(h.abort(AbortReason::Explicit))
    });
    assert!(res.is_err());
    assert_eq!(map.get(&mut h.nontx(), 20), Some(200));
    assert_eq!(queue.len_quiescent(), 0);
    assert!(!index.contains(&mut h.nontx(), 200));
}

#[test]
fn concurrent_cross_structure_invariant() {
    // Tokens live either in the hash map or in the skiplist; transactions
    // move them back and forth, so the total count is invariant.
    const THREADS: usize = 4;
    const OPS: usize = 300;
    const TOKENS: u64 = 32;
    let mgr = TxManager::new();
    let a = Arc::new(MichaelHashMap::<u64>::with_buckets(64));
    let b = Arc::new(SkipList::<u64>::new());
    {
        let mut h = mgr.register();
        for t in 0..TOKENS {
            assert!(a.insert(&mut h.nontx(), t, 1));
        }
    }
    let mut joins = Vec::new();
    for t in 0..THREADS {
        let mgr = Arc::clone(&mgr);
        let a = Arc::clone(&a);
        let b = Arc::clone(&b);
        joins.push(std::thread::spawn(move || {
            let mut h = mgr.register();
            let mut rng = medley::util::FastRng::new(t as u64 + 99);
            for _ in 0..OPS {
                let k = rng.next_below(TOKENS);
                let _ = h.run(|h| {
                    // A doomed transaction may observe the token transiently
                    // in both structures (reads are not opaque mid-flight);
                    // turning the unexpected outcome into a Conflict retries
                    // the transaction, and commit-time validation guarantees
                    // a committed transfer really moved exactly one token.
                    if let Some(v) = a.remove(h, k) {
                        if !b.insert(h, k, v) {
                            return Err(h.abort(AbortReason::Conflict));
                        }
                    } else if let Some(v) = b.remove(h, k) {
                        if !a.insert(h, k, v) {
                            return Err(h.abort(AbortReason::Conflict));
                        }
                    }
                    Ok(())
                });
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let total = a.len_quiescent() + b.len_quiescent();
    assert_eq!(
        total as u64, TOKENS,
        "tokens must be conserved across structures"
    );
}

#[test]
fn persistent_and_transient_maps_in_one_transaction() {
    let mgr = TxManager::new();
    let domain = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::ZERO);
    let durable = DurableHashMap::hash_map(64, Arc::clone(&domain));
    let transient: SkipList<u64> = SkipList::new();
    let mut h = mgr.register();

    let res: TxResult<()> = h.run(|h| {
        durable.put(h, 1, 10);
        transient.insert(h, 1, 10);
        Ok(())
    });
    assert!(res.is_ok());
    domain.sync();
    assert_eq!(durable.recover().get(&1), Some(&10));
    assert!(transient.contains(&mut h.nontx(), 1));
}

#[test]
fn recovery_after_concurrent_transactional_load() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 100;
    let mgr = TxManager::new();
    let domain = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::ZERO);
    let map = Arc::new(DurableHashMap::hash_map(256, Arc::clone(&domain)));
    let mut joins = Vec::new();
    for t in 0..THREADS {
        let mgr = Arc::clone(&mgr);
        let map = Arc::clone(&map);
        joins.push(std::thread::spawn(move || {
            let mut h = mgr.register();
            for i in 0..PER_THREAD {
                let k = t * PER_THREAD + i;
                let _ = h.run(|h| {
                    map.put(h, k, k + 1);
                    Ok(())
                });
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    domain.sync();
    let rec = map.recover();
    assert_eq!(rec.len() as u64, THREADS * PER_THREAD);
    for k in 0..THREADS * PER_THREAD {
        assert_eq!(rec.get(&k), Some(&(k + 1)));
    }
}

#[test]
fn tpcc_consistency_on_medley_and_txmontage() {
    use tpcc::{
        district_key, execute_input, load_chunked, random_input, warehouse_key, Field,
        MedleyBackend, Scale, TpccBackend, TxInput,
    };

    fn run<B: TpccBackend>(backend: &B) {
        let scale = Scale::default();
        let mut s = backend.session();
        load_chunked(backend, &mut s, &scale);
        let mut rng = medley::util::FastRng::new(5);
        let mut paid = 0u64;
        let mut orders = 0u64;
        for _ in 0..150 {
            let input = random_input(&mut rng, &scale);
            match &input {
                TxInput::Payment { amount, .. } => paid += *amount,
                TxInput::NewOrder { .. } => orders += 1,
            }
            assert!(backend.run_tx(&mut s, &mut |kv| execute_input(kv, &input)));
        }
        let mut ytd = 0u64;
        let mut placed = 0u64;
        assert!(backend.run_tx(&mut s, &mut |kv| {
            for w in 0..scale.warehouses {
                ytd += kv.get(warehouse_key(Field::Ytd, w)).unwrap();
                for d in 0..scale.districts_per_warehouse {
                    placed += kv.get(district_key(Field::NextOrderId, w, d)).unwrap() - 1;
                }
            }
            Ok(())
        }));
        assert_eq!(ytd, paid);
        assert_eq!(placed, orders);
    }

    let mgr = TxManager::new();
    run(&MedleyBackend::new(
        Arc::clone(&mgr),
        Arc::new(SkipList::<u64>::new()),
    ));

    let mgr2 = TxManager::new();
    let domain = PersistenceDomain::new(Arc::clone(&mgr2), NvmCostModel::ZERO);
    run(&MedleyBackend::new(
        mgr2,
        Arc::new(txmontage::DurableSkipList::skip_list(domain)),
    ));
}

#[test]
fn bench_harness_smoke_all_systems() {
    use bench::systems::{LfttMicro, OneFileMicro, TdslMicro};
    use bench::{run_micro, MedleyMicro, MicroConfig};
    use std::time::Duration;

    let cfg = MicroConfig {
        ratio: (2, 1, 1),
        key_space: 512,
        preload: 128,
        max_ops_per_tx: 4,
        duration: Duration::from_millis(30),
    };
    let mgr = TxManager::new();
    let medley_sys = MedleyMicro::new(
        "Medley",
        Arc::clone(&mgr),
        Arc::new(MichaelHashMap::<u64>::with_buckets(256)),
    );
    assert!(run_micro(&medley_sys, &cfg, 1) > 0.0);
    assert!(run_micro(&OneFileMicro::transient(256), &cfg, 2) > 0.0);
    assert!(run_micro(&TdslMicro::new(), &cfg, 2) > 0.0);
    assert!(run_micro(&LfttMicro::new(256), &cfg, 2) > 0.0);
}
