//! Partial-I/O torture for the kvstore framing and event loop.
//!
//! The epoll server must be indifferent to how bytes are sliced by the
//! transport: requests arriving one byte at a time (maximally fragmented
//! frames), and responses drained by a peer whose kernel receive buffer is
//! tiny (forcing the server through many short `writev` passes and
//! `EPOLLOUT` re-arms).  Blob values large enough to span several read and
//! write passes make the fragmentation bite mid-value, not just mid-header.

use kvstore::proto::{self, Request, Response};
use kvstore::{Cmd, CmdOut, Server, ServerConfig};
use pmem::Value;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Drives a raw socket: writes `wire` one byte at a time, then reads every
/// response frame, returning `(req_id, response)` pairs in arrival order.
fn dribble_roundtrip(
    addr: std::net::SocketAddr,
    wire: &[u8],
    expect: usize,
) -> Vec<(u32, Response)> {
    let mut sock = TcpStream::connect(addr).expect("connect");
    sock.set_nodelay(true).expect("nodelay");
    // A tiny receive buffer keeps the server's responses from landing in
    // one kernel-buffered push: its write side hits WouldBlock and must
    // finish over multiple EPOLLOUT wakeups.
    kvstore::sys::set_rcvbuf(&sock, 2048).expect("SO_RCVBUF");

    // Maximal fragmentation on the request path: one byte per write.  No
    // flushes or sleeps needed — each write is its own TCP segment boundary
    // as far as the server's reader is concerned.
    for chunk in wire.chunks(1) {
        sock.write_all(chunk).expect("dribble write");
    }

    let mut got = Vec::new();
    let mut buf = Vec::new();
    let mut pos = 0usize;
    let mut chunk = [0u8; 512];
    while got.len() < expect {
        let n = sock.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed early: got {} of {expect}", got.len());
        buf.extend_from_slice(&chunk[..n]);
        while let Some(frame) = proto::take_frame(&buf, &mut pos).expect("valid frame") {
            got.push(proto::decode_response(frame).expect("decodable response"));
        }
    }
    assert_eq!(pos, buf.len(), "no trailing bytes after the last frame");
    got
}

#[test]
fn one_byte_writes_and_tiny_rcvbuf_preserve_framing_and_order() {
    let server = Server::start(&ServerConfig::default()).expect("start server");
    let addr = server.local_addr();

    // Blob values spanning multiple 2 KiB receive windows (and multiple
    // 512 B client read passes).
    let big_a: Vec<u8> = (0..48_000usize).map(|i| (i % 251) as u8).collect();
    let big_b: Vec<u8> = (0..30_000usize).map(|i| (i % 241) as u8).collect();

    let mut wire = Vec::new();
    proto::encode_request(
        &mut wire,
        1,
        &Request::Cmd(Cmd::PutB(10, Value::from_bytes(&big_a))),
    );
    proto::encode_request(
        &mut wire,
        2,
        &Request::Cmd(Cmd::PutB(11, Value::from_bytes(&big_b))),
    );
    proto::encode_request(&mut wire, 3, &Request::Cmd(Cmd::GetB(10)));
    proto::encode_request(&mut wire, 4, &Request::Cmd(Cmd::MGetB(vec![10, 11, 12])));
    proto::encode_request(&mut wire, 5, &Request::Cmd(Cmd::GetB(11)));
    proto::encode_request(&mut wire, 6, &Request::Cmd(Cmd::DelB(10)));

    let got = dribble_roundtrip(addr, &wire, 6);

    // Responses arrive strictly in request order with the ids echoed.
    let ids: Vec<u32> = got.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, vec![1, 2, 3, 4, 5, 6]);

    assert_eq!(got[0].1, Response::Ok(CmdOut::PrevB(None)));
    assert_eq!(got[1].1, Response::Ok(CmdOut::PrevB(None)));
    assert_eq!(
        got[2].1,
        Response::Ok(CmdOut::ValueB(Some(Value::from_bytes(&big_a)))),
        "a blob spanning many read passes must reassemble byte-exactly"
    );
    assert_eq!(
        got[3].1,
        Response::Ok(CmdOut::ValuesB(vec![
            Some(Value::from_bytes(&big_a)),
            Some(Value::from_bytes(&big_b)),
            None,
        ]))
    );
    assert_eq!(
        got[4].1,
        Response::Ok(CmdOut::ValueB(Some(Value::from_bytes(&big_b))))
    );
    assert_eq!(
        got[5].1,
        Response::Ok(CmdOut::RemovedB(Some(Value::from_bytes(&big_a))))
    );

    // The slow-draining peer must have forced partial writes: the server
    // saw more than one epoll pass, dispatched real events, and — with
    // ~78 KB of blob responses backed up behind a 2 KiB receive window —
    // flushed multi-segment chains with vectored writes.
    let ev = server.event_stats();
    assert!(
        ev.events_dispatched > 1,
        "dribbled frames arrive as many events"
    );
    assert!(
        ev.writev_saved > 0,
        "a backed-up multi-segment chain must batch into one writev"
    );
    let store = server.shutdown();
    drop(store);
}

#[test]
fn dribbled_word_pipeline_interleaves_with_legacy_ops() {
    // Same torture on the fixed-width family, mixing in a CAS and a
    // TRANSFER so transactional paths cross the fragmented transport too.
    let server = Server::start(&ServerConfig::default()).expect("start server");
    let addr = server.local_addr();

    let mut wire = Vec::new();
    proto::encode_request(
        &mut wire,
        7,
        &Request::Cmd(Cmd::MSet(vec![(1, 100), (2, 50)])),
    );
    proto::encode_request(
        &mut wire,
        8,
        &Request::Cmd(Cmd::Cas {
            key: 1,
            expected: 100,
            desired: 90,
        }),
    );
    proto::encode_request(
        &mut wire,
        9,
        &Request::Cmd(Cmd::Transfer {
            from: 1,
            to: 2,
            amount: 40,
        }),
    );
    proto::encode_request(&mut wire, 10, &Request::Cmd(Cmd::MGet(vec![1, 2])));

    let got = dribble_roundtrip(addr, &wire, 4);
    let ids: Vec<u32> = got.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, vec![7, 8, 9, 10]);
    assert_eq!(got[0].1, Response::Ok(CmdOut::Done));
    assert_eq!(
        got[1].1,
        Response::Ok(CmdOut::Cas {
            success: true,
            current: Some(90)
        })
    );
    assert_eq!(
        got[2].1,
        Response::Ok(CmdOut::Transferred {
            from_after: 50,
            to_after: 90
        })
    );
    assert_eq!(
        got[3].1,
        Response::Ok(CmdOut::Values(vec![Some(50), Some(90)]))
    );
    server.shutdown();
}
