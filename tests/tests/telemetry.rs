//! Observability integration tests: the telemetry layer driven over real
//! loopback TCP connections, plus the allocation guard for the hot path.
//!
//! * `metrics_attribute_ops_and_aborts_over_loopback` — mixed traffic
//!   (including forced application errors) against a default server; the
//!   `METRICS` reply must attribute at least three distinct opcodes with
//!   non-zero latency totals and at least one abort-reason counter.
//! * `trace_with_zero_threshold_captures_every_request` — a single-worker
//!   server with `slow_threshold = 0` traces every tracked request, so the
//!   ring's record/eviction counts are exactly determined by the command
//!   count and capacity.
//! * `telemetry_hot_path_does_not_allocate` — a counting global allocator
//!   wraps the whole test binary; recording latencies, errors, phase time,
//!   and steady-state trace pushes must not allocate at all.

use kvstore::{Client, Server, ServerConfig, StoreConfig, TableKind, TelemetryConfig};
use obs::{MetricsRegistry, RegistrySpec, TraceRecord, TraceRing};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// System allocator wrapped with an allocation counter.  Installed for the
/// whole test binary; individual tests read deltas around the region they
/// care about.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn metrics_attribute_ops_and_aborts_over_loopback() {
    let cfg = ServerConfig {
        workers: 2,
        store: StoreConfig {
            tables: TableKind::Mixed,
            shards: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Server::start(&cfg).expect("start server");
    let mut c = Client::connect(server.local_addr()).expect("connect");

    for k in 0..32u64 {
        c.put(k, 1000).expect("put");
    }
    for k in 0..32u64 {
        assert_eq!(c.get(k).expect("get"), Some(1000));
    }
    for k in 0..8u64 {
        c.cas(k, 1000, 2000).expect("cas");
    }
    for k in 0..8u64 {
        c.transfer(k, k + 8, 1).expect("transfer");
    }
    // Forced application errors: transfers from keys that do not exist
    // must surface as abort-reason counters in the exposition.
    for k in 1000..1008u64 {
        assert!(c.transfer(k, 0, 1).is_err(), "missing source must fail");
    }

    let m = c.metrics().expect("metrics");
    assert!(m.uptime_secs < 3600, "sane uptime");
    let active: Vec<_> = m.ops.iter().filter(|o| o.hist.total() > 0).collect();
    assert!(
        active.len() >= 3,
        "expected >=3 active opcodes, got {:?}",
        m.ops.iter().map(|o| o.opcode).collect::<Vec<_>>()
    );
    let total_aborts: u64 = m.ops.iter().flat_map(|o| o.aborts.iter()).sum();
    assert!(total_aborts >= 8, "forced errors must be counted as aborts");
    // Event-loop phase accounting: something was decoded and executed.
    assert_eq!(m.worker_phases.len(), cfg.workers);
    let phase_total: u64 = m.worker_phases.iter().flatten().sum();
    assert!(phase_total > 0, "phase accounting saw no work");

    // The Prometheus rendering of the same snapshot names the ops.
    let page = server
        .telemetry()
        .expect("telemetry on by default")
        .render_prometheus();
    assert!(page.contains("kvstore_uptime_seconds"));
    assert!(page.contains("kvstore_op_latency_ns_bucket{op=\"get\""));
    assert!(page.contains("kvstore_op_aborts_total"));

    server.shutdown();
}

#[test]
fn trace_with_zero_threshold_captures_every_request() {
    const CAPACITY: usize = 16;
    const COMMANDS: u64 = 100;

    let cfg = ServerConfig {
        // One worker, one connection: every tracked request lands in the
        // same ring, so the arithmetic below is exact.
        workers: 1,
        store: StoreConfig {
            shards: 2,
            ..Default::default()
        },
        telemetry: TelemetryConfig {
            slow_threshold: Duration::ZERO,
            trace_capacity: CAPACITY,
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Server::start(&cfg).expect("start server");
    let mut c = Client::connect(server.local_addr()).expect("connect");

    for k in 0..COMMANDS {
        c.put(k, k).expect("put");
    }
    // TRACE itself is an admin command and must not trace itself.
    let t = c.trace().expect("trace");
    assert_eq!(t.records.len(), CAPACITY);
    assert_eq!(t.evicted, COMMANDS - CAPACITY as u64);
    for r in &t.records {
        assert_eq!(r.status, 0, "all puts succeeded");
        assert!(r.exec_ns > 0, "execution took nonzero time");
    }
    // Idempotent: a second dump sees the same ring (the dump itself did
    // not add records).
    let t2 = c.trace().expect("trace again");
    assert_eq!(t2.records.len(), CAPACITY);
    assert_eq!(t2.evicted, t.evicted);

    server.shutdown();
}

#[test]
fn telemetry_hot_path_does_not_allocate() {
    const SPEC: RegistrySpec = RegistrySpec {
        ops: &["get", "put"],
        errors: &["retry", "not_found"],
        phases: &["decode", "execute"],
    };
    let registry = MetricsRegistry::new(SPEC, 2);
    let ring = TraceRing::new(8);
    let rec = TraceRecord {
        opcode: 0x01,
        req_id: 7,
        queue_ns: 10,
        exec_ns: 20,
        retries: 0,
        status: 0,
    };
    // Fill the ring first: steady state is pop-oldest + push-newest inside
    // the preallocated deque.
    for _ in 0..8 {
        ring.push(rec);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let w = registry.worker((i % 2) as usize);
        w.record_op((i % 2) as usize, 100 + i, i % 3);
        w.record_error((i % 2) as usize, (i % 2) as usize);
        w.add_phase_ns((i % 2) as usize, 50);
        ring.push(rec);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "telemetry recording must be allocation-free"
    );
}
