//! Elastic-table integration tests: transactions composing across a
//! [`nbds::SplitOrderedMap`] while its bucket directory is forcibly doubled
//! under them, and the service-layer view of the same machinery.
//!
//! * `transfers_conserve_across_a_force_grown_table` — 8 threads run
//!   transfer and multi-key-audit transactions over one elastic map booted
//!   at the minimum directory size while every thread periodically forces a
//!   directory doubling mid-traffic; the total must be conserved in every
//!   atomic audit and at the end, the table must pass its structural
//!   integrity check, and the statistics must show both real growth
//!   (`grow_events > 0`) and real contention (`conflict_aborts > 0`).
//! * `stats_reports_elastic_growth_over_the_wire` — an elastic server is
//!   loaded over loopback TCP until its shards double; the `STATS` reply's
//!   table section must report elastic shards, summed item counts matching
//!   the load, grown bucket counts, and nonzero grow events.

use medley::{AbortReason, TxManager, TxResult};
use nbds::SplitOrderedMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn transfers_conserve_across_a_force_grown_table() {
    const ACCOUNTS: u64 = 32;
    const INITIAL: u64 = 1_000;
    const THREADS: usize = 8;
    // CI runs this file in release (where the full count exercises real
    // contention); debug `cargo test` keeps a load that finishes quickly.
    const TXS_PER_THREAD: usize = if cfg!(debug_assertions) {
        1_500
    } else {
        12_000
    };
    // Most transfers hit a small hot set so 8 threads actually collide.
    const HOT: u64 = 4;

    let mgr = TxManager::new();
    let map: Arc<SplitOrderedMap<u64>> = Arc::new(SplitOrderedMap::new());
    {
        let mut h = mgr.register();
        for k in 0..ACCOUNTS {
            assert!(map.insert(&mut h.nontx(), k, INITIAL));
        }
    }
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        // A dedicated grower doubles the directory throughout the run: every
        // transfer and audit below races sentinel insertion and directory
        // publication, which must stay invisible to their outcomes.
        let map_ref = &map;
        let stop_ref = &stop;
        s.spawn(move || {
            while !stop_ref.load(Ordering::Relaxed) {
                if map_ref.buckets() < (1 << 16) {
                    map_ref.force_grow();
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        });

        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let mgr = Arc::clone(&mgr);
                let map = Arc::clone(&map);
                s.spawn(move || {
                    let mut h = mgr.register();
                    let mut rng = medley::util::FastRng::new(t as u64 + 0xE1A);
                    for i in 0..TXS_PER_THREAD {
                        if i % 64 == 0 {
                            // Multi-key audit (the MGET shape): one atomic
                            // read-only snapshot of every account must observe
                            // the conserved total, mid-grow included.
                            let total: TxResult<u64> = h.run(|tx| {
                                let mut sum = 0;
                                for k in 0..ACCOUNTS {
                                    sum += map.get(tx, k).expect("account vanished");
                                }
                                Ok(sum)
                            });
                            if let Ok(sum) = total {
                                assert_eq!(
                                    sum,
                                    ACCOUNTS * INITIAL,
                                    "audit observed a non-serializable state"
                                );
                            }
                            continue;
                        }
                        let pick = |r: &mut medley::util::FastRng| {
                            if r.next_below(4) < 3 {
                                r.next_below(HOT)
                            } else {
                                r.next_below(ACCOUNTS)
                            }
                        };
                        let from = pick(&mut rng);
                        let to = pick(&mut rng);
                        if from == to {
                            continue;
                        }
                        let amt = 1 + rng.next_below(5);
                        let _ = h.run(|tx| {
                            let a = map.get(tx, from).expect("account vanished");
                            let b = map.get(tx, to).expect("account vanished");
                            if a < amt {
                                return Err(tx.abort(AbortReason::Explicit));
                            }
                            map.put(tx, from, a - amt);
                            map.put(tx, to, b + amt);
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        // Join the workers explicitly, then release the grower: the scope
        // itself would otherwise wait forever on the grower's loop.
        for w in workers {
            w.join().expect("worker thread panicked");
        }
        stop_ref.store(true, Ordering::Relaxed);
    });

    let mut h = mgr.register();
    let total: u64 = (0..ACCOUNTS)
        .map(|k| map.get(&mut h.nontx(), k).expect("account vanished"))
        .sum();
    assert_eq!(total, ACCOUNTS * INITIAL, "money must be conserved");
    drop(h);

    assert!(
        map.grow_events() > 0,
        "the grower thread never managed a doubling"
    );
    assert!(
        map.buckets() > 2,
        "directory still at boot size after forced growth"
    );
    let (items, _) = map
        .check_integrity_quiescent()
        .expect("table integrity after concurrent growth");
    assert_eq!(items, ACCOUNTS);

    h = mgr.register();
    h.flush_stats();
    drop(h);
    let snap = mgr.stats_snapshot();
    assert!(
        snap.conflict_aborts > 0,
        "8 threads on {HOT} hot accounts must conflict: {snap:?}"
    );
    assert!(
        snap.ro_commits > 0,
        "audits must take the read-only path: {snap:?}"
    );
    assert!(
        snap.general_commits > 0,
        "transfers must take the general path: {snap:?}"
    );
}

#[test]
fn stats_reports_elastic_growth_over_the_wire() {
    use kvstore::{Client, Server, ServerConfig, ShardKind, StoreConfig, TableKind};

    const KEYS: u64 = 20_000;
    let cfg = ServerConfig {
        workers: 2,
        store: StoreConfig {
            tables: TableKind::Elastic,
            shards: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Server::start(&cfg).expect("start elastic server");
    let addr = server.local_addr();

    let mut c = Client::connect(addr).expect("connect");
    let pairs: Vec<(u64, u64)> = (0..KEYS).map(|k| (k, k)).collect();
    for chunk in pairs.chunks(512) {
        c.mset(chunk).expect("load mset");
    }
    // A cross-shard atomic read still works on the grown tables.
    let got = c.mget(&[0, 1, KEYS - 1]).expect("mget");
    assert_eq!(got, vec![Some(0), Some(1), Some(KEYS - 1)]);

    let stats = c.stats().expect("stats");
    let tables = stats.tables.expect("elastic server must report tables");
    assert_eq!(tables.shards.len(), 2);
    assert!(
        tables.grow_events > 0,
        "{KEYS} keys into 2 boot-sized shards must grow: {tables:?}"
    );
    let mut items = 0;
    for sh in &tables.shards {
        assert_eq!(sh.kind, ShardKind::Elastic);
        assert!(
            sh.buckets > kvstore::ELASTIC_BOOT_BUCKETS as u64,
            "shard never left boot size: {tables:?}"
        );
        items += sh.items.expect("elastic shards maintain item counts");
    }
    assert_eq!(items, KEYS, "wire-reported items must match the load");
    server.shutdown();
}
