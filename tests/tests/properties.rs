//! Property-based tests: the transactional structures must agree with a
//! sequential model under arbitrary operation sequences, and transactions
//! must be all-or-nothing.

use medley::{TxManager, TxResult};
use nbds::{MichaelHashMap, SkipList, TxMap};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// An operation in a generated workload.
#[derive(Debug, Clone)]
enum Op {
    Get(u64),
    Insert(u64, u64),
    Put(u64, u64),
    Remove(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small key space maximizes collisions between operations.
    let key = 0u64..32;
    let val = 0u64..1_000;
    prop_oneof![
        key.clone().prop_map(Op::Get),
        (key.clone(), val.clone()).prop_map(|(k, v)| Op::Insert(k, v)),
        (key.clone(), val.clone()).prop_map(|(k, v)| Op::Put(k, v)),
        key.prop_map(Op::Remove),
    ]
}

fn check_against_model<M: TxMap<u64>>(map: &M, ops: &[Op]) {
    let mgr = TxManager::new();
    let mut h = mgr.register();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Get(k) => assert_eq!(map.get(&mut h, k), model.get(&k).copied()),
            Op::Insert(k, v) => {
                let expected = !model.contains_key(&k);
                if expected {
                    model.insert(k, v);
                }
                assert_eq!(map.insert(&mut h, k, v), expected);
            }
            Op::Put(k, v) => {
                assert_eq!(map.put(&mut h, k, v), model.insert(k, v));
            }
            Op::Remove(k) => assert_eq!(map.remove(&mut h, k), model.remove(&k)),
        }
    }
    for (k, v) in &model {
        assert_eq!(map.get(&mut h, *k), Some(*v));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hashmap_matches_sequential_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        check_against_model(&MichaelHashMap::<u64>::with_buckets(16), &ops);
    }

    #[test]
    fn skiplist_matches_sequential_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        check_against_model(&SkipList::<u64>::new(), &ops);
    }

    #[test]
    fn skiplist_snapshot_is_sorted_and_deduplicated(
        ops in proptest::collection::vec(op_strategy(), 1..200)
    ) {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let sl = SkipList::<u64>::new();
        for op in &ops {
            match *op {
                Op::Get(k) => { sl.get(&mut h, k); }
                Op::Insert(k, v) => { sl.insert(&mut h, k, v); }
                Op::Put(k, v) => { sl.put(&mut h, k, v); }
                Op::Remove(k) => { sl.remove(&mut h, k); }
            }
        }
        let keys: Vec<u64> = sl.snapshot().iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(keys, sorted);
    }

    #[test]
    fn aborted_transactions_are_all_or_nothing(
        committed in proptest::collection::vec(op_strategy(), 1..40),
        speculative in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let map = MichaelHashMap::<u64>::with_buckets(16);
        // Apply a committed prefix non-transactionally.
        for op in &committed {
            match *op {
                Op::Get(k) => { map.get(&mut h, k); }
                Op::Insert(k, v) => { map.insert(&mut h, k, v); }
                Op::Put(k, v) => { map.put(&mut h, k, v); }
                Op::Remove(k) => { map.remove(&mut h, k); }
            }
        }
        let before = {
            let mut snap = map.snapshot();
            snap.sort_unstable();
            snap
        };
        // Run an aborted transaction over arbitrary further operations.
        let res: TxResult<()> = h.run(|h| {
            for op in &speculative {
                match *op {
                    Op::Get(k) => { map.get(h, k); }
                    Op::Insert(k, v) => { map.insert(h, k, v); }
                    Op::Put(k, v) => { map.put(h, k, v); }
                    Op::Remove(k) => { map.remove(h, k); }
                }
            }
            Err(h.tx_abort())
        });
        prop_assert!(res.is_err());
        let after = {
            let mut snap = map.snapshot();
            snap.sort_unstable();
            snap
        };
        prop_assert_eq!(before, after, "aborted transaction must leave no trace");
    }

    #[test]
    fn tpcc_key_encoding_is_injective(
        a in (0u64..10, 0u64..10, 0u64..1000),
        b in (0u64..10, 0u64..10, 0u64..1000),
    ) {
        use tpcc::{customer_key, Field};
        if a != b {
            prop_assert_ne!(
                customer_key(Field::Balance, a.0, a.1, a.2),
                customer_key(Field::Balance, b.0, b.1, b.2)
            );
        }
    }
}
