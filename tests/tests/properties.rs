//! Property-based tests: the transactional structures must agree with a
//! sequential model under arbitrary operation sequences, and transactions
//! must be all-or-nothing.
//!
//! The container has no registry access, so instead of `proptest` these use a
//! small deterministic case generator over `medley::util::FastRng`: each test
//! runs `CASES` independently seeded operation sequences and reports the
//! failing seed on panic, which makes any failure reproducible by rerunning
//! with that seed.

use medley::util::FastRng;
use medley::{AbortReason, TxManager, TxResult};
use nbds::{MichaelHashMap, SkipList, SplitOrderedMap, TxMap};
use std::collections::BTreeMap;

const CASES: u64 = 64;

/// An operation in a generated workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    Get(u64),
    Insert(u64, u64),
    Put(u64, u64),
    Remove(u64),
}

/// A small key space maximizes collisions between operations.
fn random_op(rng: &mut FastRng) -> Op {
    let key = rng.next_below(32);
    let val = rng.next_below(1_000);
    match rng.next_below(4) {
        0 => Op::Get(key),
        1 => Op::Insert(key, val),
        2 => Op::Put(key, val),
        _ => Op::Remove(key),
    }
}

fn random_ops(rng: &mut FastRng, min: u64, max: u64) -> Vec<Op> {
    let n = min + rng.next_below(max - min);
    (0..n).map(|_| random_op(rng)).collect()
}

/// Runs `case` once per seed, labelling panics with the seed that failed.
fn for_each_case(mut case: impl FnMut(&mut FastRng)) {
    for seed in 1..=CASES {
        let mut rng = FastRng::new(seed * 0x9E37_79B9 + 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(payload) = result {
            eprintln!("property failed for case seed {seed}");
            std::panic::resume_unwind(payload);
        }
    }
}

fn check_against_model<M: TxMap<u64>>(map: &M, ops: &[Op]) {
    let mgr = TxManager::new();
    let mut h = mgr.register();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Get(k) => assert_eq!(map.get(&mut h.nontx(), k), model.get(&k).copied()),
            Op::Insert(k, v) => {
                let expected = !model.contains_key(&k);
                if expected {
                    model.insert(k, v);
                }
                assert_eq!(map.insert(&mut h.nontx(), k, v), expected);
            }
            Op::Put(k, v) => {
                assert_eq!(map.put(&mut h.nontx(), k, v), model.insert(k, v));
            }
            Op::Remove(k) => assert_eq!(map.remove(&mut h.nontx(), k), model.remove(&k)),
        }
    }
    for (k, v) in &model {
        assert_eq!(map.get(&mut h.nontx(), *k), Some(*v));
    }
}

#[test]
fn hashmap_matches_sequential_model() {
    for_each_case(|rng| {
        let ops = random_ops(rng, 1, 200);
        check_against_model(&MichaelHashMap::<u64>::with_buckets(16), &ops);
    });
}

#[test]
fn skiplist_matches_sequential_model() {
    for_each_case(|rng| {
        let ops = random_ops(rng, 1, 200);
        check_against_model(&SkipList::<u64>::new(), &ops);
    });
}

#[test]
fn split_ordered_matches_sequential_model() {
    for_each_case(|rng| {
        let ops = random_ops(rng, 1, 200);
        // Boot at the minimum size so longer sequences cross the grow
        // threshold mid-run and the model check spans a resize.
        check_against_model(&SplitOrderedMap::<u64>::new(), &ops);
    });
}

#[test]
fn split_order_key_math_properties() {
    use nbds::split_ordered::{key_hash, parent_bucket, so_regular_key, so_sentinel_key};
    for_each_case(|rng| {
        for _ in 0..256 {
            let k = rng.next_u64();
            // Bit reversal is an involution, so the split-order mapping is
            // injective: distinct hashes yield distinct regular keys.
            let reg = so_regular_key(key_hash(k));
            assert_eq!(reg.reverse_bits(), key_hash(k) | 1 << 63);
            // Regular keys are odd, sentinel keys even: the two key
            // populations can never collide in the shared list order.
            assert_eq!(reg & 1, 1, "regular split-order keys must be odd");
            let b = rng.next_u64() >> rng.next_below(64).max(33);
            let sen = so_sentinel_key(b);
            assert_eq!(sen & 1, 0, "sentinel split-order keys must be even");
            // Parent recursion: clearing the top set bit strictly decreases
            // the bucket index and terminates at bucket 0, in at most 64
            // steps (one per possible set bit).
            let mut cur = b;
            let mut steps = 0;
            while cur != 0 {
                let parent = parent_bucket(cur);
                assert!(parent < cur, "parent {parent} not below bucket {cur}");
                // The parent's sentinel sorts before the child's: the child
                // splits the parent's chain.
                assert!(
                    so_sentinel_key(parent) < so_sentinel_key(cur),
                    "parent sentinel must precede child sentinel in list order"
                );
                cur = parent;
                steps += 1;
                assert!(steps <= 64, "parent chain failed to terminate");
            }
        }
    });
}

#[test]
fn split_ordered_integrity_over_random_grow_schedules() {
    for_each_case(|rng| {
        let ops = random_ops(rng, 50, 400);
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let map = SplitOrderedMap::<u64>::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Get(k) => {
                    assert_eq!(map.get(&mut h.nontx(), k), model.get(&k).copied());
                }
                Op::Insert(k, v) => {
                    if map.insert(&mut h.nontx(), k, v) {
                        model.insert(k, v);
                    }
                }
                Op::Put(k, v) => {
                    assert_eq!(map.put(&mut h.nontx(), k, v), model.insert(k, v));
                }
                Op::Remove(k) => assert_eq!(map.remove(&mut h.nontx(), k), model.remove(&k)),
            }
            // Random grow schedule: doubling at arbitrary points must be
            // invisible to the operation stream. Capped so a long schedule
            // doesn't allocate a multi-million-entry directory for ~200 keys.
            if rng.next_below(16) == 0 && map.buckets() < (1 << 10) {
                map.force_grow();
            }
        }
        drop(h);
        // Integrity: split-order sorted list, every initialized bucket's
        // sentinel reachable and its parent chain initialized (monotone
        // bucket initialization), counter consistent with reachable items.
        let (items, _buckets) = map
            .check_integrity_quiescent()
            .expect("integrity after random grow schedule");
        assert_eq!(items, model.len() as u64);
        let mut h = mgr.register();
        for (k, v) in &model {
            assert_eq!(map.get(&mut h.nontx(), *k), Some(*v));
        }
    });
}

#[test]
fn skiplist_snapshot_is_sorted_and_deduplicated() {
    for_each_case(|rng| {
        let ops = random_ops(rng, 1, 200);
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let sl = SkipList::<u64>::new();
        for op in &ops {
            match *op {
                Op::Get(k) => {
                    sl.get(&mut h.nontx(), k);
                }
                Op::Insert(k, v) => {
                    sl.insert(&mut h.nontx(), k, v);
                }
                Op::Put(k, v) => {
                    sl.put(&mut h.nontx(), k, v);
                }
                Op::Remove(k) => {
                    sl.remove(&mut h.nontx(), k);
                }
            }
        }
        let keys: Vec<u64> = sl.snapshot().iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
    });
}

#[test]
fn aborted_transactions_are_all_or_nothing() {
    for_each_case(|rng| {
        let committed = random_ops(rng, 1, 40);
        let speculative = random_ops(rng, 1, 40);
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let map = MichaelHashMap::<u64>::with_buckets(16);
        // Apply a committed prefix non-transactionally.
        for op in &committed {
            match *op {
                Op::Get(k) => {
                    map.get(&mut h.nontx(), k);
                }
                Op::Insert(k, v) => {
                    map.insert(&mut h.nontx(), k, v);
                }
                Op::Put(k, v) => {
                    map.put(&mut h.nontx(), k, v);
                }
                Op::Remove(k) => {
                    map.remove(&mut h.nontx(), k);
                }
            }
        }
        let before = {
            let mut snap = map.snapshot();
            snap.sort_unstable();
            snap
        };
        // Run an aborted transaction over arbitrary further operations.
        let res: TxResult<()> = h.run(|h| {
            for op in &speculative {
                match *op {
                    Op::Get(k) => {
                        map.get(h, k);
                    }
                    Op::Insert(k, v) => {
                        map.insert(h, k, v);
                    }
                    Op::Put(k, v) => {
                        map.put(h, k, v);
                    }
                    Op::Remove(k) => {
                        map.remove(h, k);
                    }
                }
            }
            Err(h.abort(AbortReason::Explicit))
        });
        assert!(res.is_err());
        let after = {
            let mut snap = map.snapshot();
            snap.sort_unstable();
            snap
        };
        assert_eq!(before, after, "aborted transaction must leave no trace");
    });
}

#[test]
fn zipfian_theoretical_ranks_form_a_distribution() {
    use bench::workload::Zipf;
    // Deterministic sanity of the generator's analytic side: rank
    // probabilities are positive, non-increasing, and sum to 1.
    for &(n, theta) in &[(2u64, 0.5), (16, 0.99), (1024, 0.7), (4096, 0.99)] {
        let z = Zipf::new(n, theta);
        let mut sum = 0.0;
        let mut prev = f64::INFINITY;
        for k in 0..n {
            let p = z.rank_probability(k);
            assert!(p > 0.0);
            assert!(p <= prev, "rank probabilities must be non-increasing");
            prev = p;
            sum += p;
        }
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "rank probabilities must sum to 1, got {sum} for n={n} theta={theta}"
        );
    }
}

#[test]
fn zipfian_samples_respect_distribution_bounds() {
    use bench::workload::Zipf;
    const SAMPLES: usize = 20_000;
    for_each_case(|rng| {
        // Random key-space size and skew per case.
        let n = 16 + rng.next_below(1 << 12);
        let theta = 0.5 + rng.next_below(49) as f64 / 100.0; // 0.50..=0.98
        let z = Zipf::new(n, theta);
        let mut head_hits = 0usize;
        let mut top_decile_hits = 0usize;
        let top_decile = (n / 10).max(1);
        for _ in 0..SAMPLES {
            let k = z.sample(rng);
            assert!(k < n, "sample {k} out of bounds for n={n}");
            if k == 0 {
                head_hits += 1;
            }
            if k < top_decile {
                top_decile_hits += 1;
            }
        }
        // The hottest rank's empirical frequency must track its analytic
        // probability (generous tolerance: 20k samples, random parameters).
        let expected = z.rank_probability(0);
        let observed = head_hits as f64 / SAMPLES as f64;
        assert!(
            (observed - expected).abs() < 0.4 * expected + 0.01,
            "rank-0 frequency {observed:.4} vs expected {expected:.4} (n={n}, theta={theta})"
        );
        // Skew sanity: the top decile must capture visibly more mass than a
        // uniform distribution would give it.
        let uniform_share = top_decile as f64 / n as f64;
        let observed_share = top_decile_hits as f64 / SAMPLES as f64;
        assert!(
            observed_share > 1.2 * uniform_share,
            "top-{top_decile} share {observed_share:.4} not skewed above uniform {uniform_share:.4} \
             (n={n}, theta={theta})"
        );
    });
}

#[test]
fn tpcc_key_encoding_is_injective() {
    use std::collections::HashMap;
    use tpcc::{customer_key, Field};
    // Exhaustive over a small id box rather than sampled: every distinct
    // (warehouse, district, customer) triple must map to a distinct key.
    let mut seen: HashMap<u64, (u64, u64, u64)> = HashMap::new();
    for w in 0..10 {
        for d in 0..10 {
            for c in (0..1000).step_by(37) {
                let key = customer_key(Field::Balance, w, d, c);
                if let Some(prev) = seen.insert(key, (w, d, c)) {
                    panic!("collision: {:?} and {:?} share key {key}", prev, (w, d, c));
                }
            }
        }
    }
}

#[test]
fn store_scan_matches_btreemap_model() {
    use kvstore::{Cmd, CmdOut, Store, StoreConfig, TableKind};
    use std::sync::Arc;
    // Arbitrary key sets over the full u64 space (so the range partition
    // splits them over every shard), arbitrary windows and limits: a SCAN
    // page must equal exactly what a sorted sequential model returns.
    for_each_case(|rng| {
        let cfg = StoreConfig {
            tables: TableKind::Skip,
            shards: 1 + rng.next_below(7) as usize,
            ..Default::default()
        };
        let mgr = TxManager::with_max_threads(2);
        let (store, _adv) = Store::new(Arc::clone(&mgr), &cfg).expect("valid config");
        let mut h = mgr.register();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for _ in 0..(1 + rng.next_below(200)) {
            let (k, v) = (rng.next_u64(), rng.next_below(1_000));
            store.exec(&mut h, &Cmd::Put(k, v)).expect("put");
            model.insert(k, v);
        }
        // A few removes keep the model honest about absent keys.
        let keys: Vec<u64> = model.keys().copied().collect();
        for k in keys.iter().step_by(5) {
            store.exec(&mut h, &Cmd::Del(*k)).expect("del");
            model.remove(k);
        }
        for _ in 0..8 {
            let (lo, hi) = (rng.next_u64(), rng.next_u64());
            let limit = rng.next_below(50) as u32;
            let got = match store.exec(&mut h, &Cmd::Scan { lo, hi, limit }) {
                Ok(CmdOut::Page(page)) => page,
                other => panic!("scan returned {other:?}"),
            };
            let want: Vec<(u64, pmem::Value)> = if lo < hi {
                model
                    .range(lo..hi)
                    .take(limit as usize)
                    .map(|(&k, &v)| (k, pmem::Value::U64(v)))
                    .collect()
            } else {
                Vec::new()
            };
            assert_eq!(got, want, "window [{lo}, {hi}) limit {limit}");
        }
        // The full window is the sorted model verbatim.
        let got = match store.exec(
            &mut h,
            &Cmd::Scan {
                lo: 0,
                hi: u64::MAX,
                limit: 1_000,
            },
        ) {
            Ok(CmdOut::Page(page)) => page,
            other => panic!("scan returned {other:?}"),
        };
        let want: Vec<(u64, pmem::Value)> = model
            .range(..u64::MAX)
            .map(|(&k, &v)| (k, pmem::Value::U64(v)))
            .collect();
        assert_eq!(got, want);
    });
}
