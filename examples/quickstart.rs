//! Quickstart: create a transaction manager, transform-ready data structures,
//! and compose operations into atomic transactions through the typestate
//! `Ctx` API.
//!
//! Run with: `cargo run --release -p integration-tests --example quickstart`

use medley::{AbortReason, TxManager, TxResult};
use nbds::{MichaelHashMap, MsQueue, SkipList};

fn main() {
    // One TxManager is shared by every structure that may participate in the
    // same transactions (it owns the per-thread descriptors and the SMR
    // domain).
    let mgr = TxManager::new();
    let mut h = mgr.register();

    // Three different NBTC-transformed nonblocking structures.
    let inventory: MichaelHashMap<u64> = MichaelHashMap::with_buckets(1 << 12);
    let prices: SkipList<u64> = SkipList::new();
    let audit_log: MsQueue<u64> = MsQueue::new();

    // Standalone calls go through the `NonTx` execution context: the
    // operations monomorphize into the original uninstrumented nonblocking
    // algorithms — there is no transaction machinery left in this code path.
    inventory.insert(&mut h.nontx(), 42, 10); // item 42, 10 in stock
    prices.insert(&mut h.nontx(), 42, 199); // item 42 costs 1.99

    // Transactional calls go through the `Txn` guard handed to the `run`
    // closure: operations on *different* structures take effect atomically —
    // sell one unit of item 42 and log the sale.  `t.abort(..)` rolls back
    // and returns the proof token for `?`-style early return; a panic in the
    // body would abort on unwind instead of wedging the handle.
    let sale: TxResult<u64> = h.run(|t| {
        let stock = inventory.get(t, 42).unwrap_or(0);
        let price = prices.get(t, 42).unwrap_or(0);
        if stock == 0 {
            return Err(t.abort(AbortReason::Explicit)); // all-or-nothing
        }
        inventory.put(t, 42, stock - 1);
        audit_log.enqueue(t, price);
        Ok(price)
    });

    println!("sold item 42 for {:?} cents", sale);
    println!("stock now: {:?}", inventory.get(&mut h.nontx(), 42));
    println!("audit log entry: {:?}", audit_log.dequeue(&mut h.nontx()));

    // Statistics from the manager: commits (split by commit path), aborts
    // (split by reason), helping events.  Dropping the handle flushes its
    // batched tallies, so the global counters are exact afterwards; use
    // `h.flush_stats()` instead to sample mid-run.
    drop(h);
    let snap = mgr.stats_snapshot();
    println!(
        "commits={} (fast={} read-only={}) aborts={} (explicit={}) helps={}",
        snap.commits,
        snap.fast_commits,
        snap.ro_commits,
        snap.aborts,
        snap.explicit_aborts,
        snap.helps
    );
}
