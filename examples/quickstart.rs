//! Quickstart: create a transaction manager, transform-ready data structures,
//! and compose operations into atomic transactions.
//!
//! Run with: `cargo run --release -p examples --bin quickstart`

use medley::{TxManager, TxResult};
use nbds::{MichaelHashMap, MsQueue, SkipList};

fn main() {
    // One TxManager is shared by every structure that may participate in the
    // same transactions (it owns the per-thread descriptors and the SMR
    // domain).
    let mgr = TxManager::new();
    let mut h = mgr.register();

    // Three different NBTC-transformed nonblocking structures.
    let inventory: MichaelHashMap<u64> = MichaelHashMap::with_buckets(1 << 12);
    let prices: SkipList<u64> = SkipList::new();
    let audit_log: MsQueue<u64> = MsQueue::new();

    // Outside a transaction, operations behave exactly like the original
    // nonblocking algorithms (instrumentation is elided).
    inventory.insert(&mut h, 42, 10); // item 42, 10 in stock
    prices.insert(&mut h, 42, 199); // item 42 costs 1.99

    // Inside a transaction, operations on *different* structures take effect
    // atomically: sell one unit of item 42 and log the sale.
    let sale: TxResult<u64> = h.run(|h| {
        let stock = inventory.get(h, 42).unwrap_or(0);
        let price = prices.get(h, 42).unwrap_or(0);
        if stock == 0 {
            return Err(h.tx_abort()); // all-or-nothing: nothing happens
        }
        inventory.put(h, 42, stock - 1);
        audit_log.enqueue(h, price);
        Ok(price)
    });

    println!("sold item 42 for {:?} cents", sale);
    println!("stock now: {:?}", inventory.get(&mut h, 42));
    println!("audit log entry: {:?}", audit_log.dequeue(&mut h));

    // Statistics from the manager: commits (split by commit path), aborts,
    // helping events.  Flush this handle's batched tallies first so the
    // global counters are exact.
    h.flush_stats();
    let snap = mgr.stats().snapshot();
    println!(
        "commits={} (fast={} read-only={}) aborts={} helps={}",
        snap.commits, snap.fast_commits, snap.ro_commits, snap.aborts, snap.helps
    );
}
