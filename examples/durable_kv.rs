//! txMontage in action: a persistent key/value store with ACID transactions
//! and buffered durability (recover to the end of epoch e−2).
//!
//! Run with: `cargo run --release -p examples --bin durable_kv`

use medley::TxManager;
use pmem::{EpochAdvancer, NvmCostModel, PersistenceDomain};
use std::sync::Arc;
use std::time::Duration;
use txmontage::DurableHashMap;

fn main() {
    let mgr = TxManager::new();
    // The persistence domain simulates NVM (this container has none); the
    // epoch clock is advanced by a background thread like nbMontage's.
    let domain = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::OPTANE_LIKE);
    let store = DurableHashMap::hash_map(1 << 12, Arc::clone(&domain));
    let advancer = EpochAdvancer::spawn(Arc::clone(&domain), Duration::from_millis(5));

    let mut h = mgr.register();

    // A transactional, failure-atomic update of two keys through the `Txn`
    // execution context.
    let _ = h.run(|t| {
        store.put(t, 1, 111);
        store.put(t, 2, 222);
        Ok(())
    });

    // Make everything completed so far durable (nbMontage sync).
    store.sync();
    let recovered = store.recover();
    println!("after sync, recovery sees: {:?}", {
        let mut v: Vec<_> = recovered.iter().collect();
        v.sort();
        v
    });

    // Updates in the current epoch may be lost by a crash...  (A lone
    // update needs no composition: the standalone `NonTx` context runs it
    // uninstrumented, and nbMontage still makes it failure-atomic.)
    store.put(&mut h.nontx(), 3, 333);
    let early = store.recover();
    println!(
        "immediately after the update, key 3 recovered: {}",
        early.contains_key(&3)
    );

    // ...but are durable once the epoch clock has moved two epochs past them.
    store.sync();
    let late = store.recover();
    println!("after sync, key 3 recovered: {}", late.contains_key(&3));

    // Stop the epoch clock explicitly before reading the final statistics:
    // after `shutdown` returns no advancer-driven write-back is in flight,
    // so the flush/fence counts below are settled.
    advancer.shutdown();

    let (flushes, fences) = domain.nvm().stats().snapshot();
    println!(
        "persistence work: {flushes} cache-line write-backs, {fences} fences (batched per epoch)"
    );
    println!("domain stats: {:?}", domain.stats());
}
