//! TPC-C subset demo: run newOrder/payment transactions over Medley skiplists
//! and verify the money-conservation invariants afterwards.
//!
//! Run with: `cargo run --release -p examples --bin tpcc_demo`

use medley::TxManager;
use nbds::SkipList;
use std::sync::Arc;
use tpcc::{
    district_key, execute_input, load_chunked, random_input, warehouse_key, Field, MedleyBackend,
    Scale, TpccBackend, TxInput,
};

fn main() {
    let mgr = TxManager::new();
    let map = Arc::new(SkipList::<u64>::new());
    let backend = MedleyBackend::new(Arc::clone(&mgr), map);
    let scale = Scale {
        warehouses: 2,
        districts_per_warehouse: 4,
        customers_per_district: 64,
        items: 256,
    };

    let mut session = backend.session();
    load_chunked(&backend, &mut session, &scale);
    println!("loaded {} warehouses", scale.warehouses);

    let mut rng = medley::util::FastRng::new(7);
    let mut payments_total = 0u64;
    let mut orders = 0u64;
    for _ in 0..2_000 {
        let input = random_input(&mut rng, &scale);
        match &input {
            TxInput::Payment { amount, .. } => payments_total += amount,
            TxInput::NewOrder { .. } => orders += 1,
        }
        assert!(backend.run_tx(&mut session, &mut |kv| execute_input(kv, &input)));
    }

    // Consistency checks (the same ones the tpcc test suite applies).
    let mut w_ytd = 0u64;
    let mut placed = 0u64;
    assert!(backend.run_tx(&mut session, &mut |kv| {
        for w in 0..scale.warehouses {
            w_ytd += kv.get(warehouse_key(Field::Ytd, w)).unwrap();
            for d in 0..scale.districts_per_warehouse {
                placed += kv.get(district_key(Field::NextOrderId, w, d)).unwrap() - 1;
            }
        }
        Ok(())
    }));

    println!("payments processed: {payments_total} cents; warehouse YTD total: {w_ytd}");
    println!("newOrder transactions committed: {orders}; orders recorded: {placed}");
    assert_eq!(w_ytd, payments_total, "payment money must be conserved");
    assert_eq!(
        placed, orders,
        "every committed newOrder must allocate exactly one order id"
    );
    drop(session); // flush the session's batched statistics
    let snap = mgr.stats_snapshot();
    println!(
        "medley commits={} (fast={} read-only={}) aborts={}",
        snap.commits, snap.fast_commits, snap.ro_commits, snap.aborts
    );
    println!("TPC-C invariants hold");
}
