//! The paper's running example (Fig. 3): concurrent transfers between
//! accounts held in two different hash tables, with an invariant check that
//! demonstrates strict serializability.
//!
//! Run with: `cargo run --release -p examples --bin bank_transfer`

use medley::{AbortReason, TxManager};
use nbds::MichaelHashMap;
use std::sync::Arc;

const ACCOUNTS: u64 = 64;
const INITIAL: u64 = 1_000;
const THREADS: usize = 4;
const TRANSFERS_PER_THREAD: usize = 5_000;

fn main() {
    let mgr = TxManager::new();
    let checking: Arc<MichaelHashMap<u64>> = Arc::new(MichaelHashMap::with_buckets(256));
    let savings: Arc<MichaelHashMap<u64>> = Arc::new(MichaelHashMap::with_buckets(256));

    {
        let mut h = mgr.register();
        let mut cx = h.nontx(); // standalone context: uninstrumented preload
        for a in 0..ACCOUNTS {
            checking.insert(&mut cx, a, INITIAL);
            savings.insert(&mut cx, a, INITIAL);
        }
    }

    let mut joins = Vec::new();
    for t in 0..THREADS {
        let mgr = Arc::clone(&mgr);
        let checking = Arc::clone(&checking);
        let savings = Arc::clone(&savings);
        joins.push(std::thread::spawn(move || {
            let mut h = mgr.register();
            let mut rng = medley::util::FastRng::new(t as u64 + 1);
            let mut denied = 0u64;
            for _ in 0..TRANSFERS_PER_THREAD {
                let from = rng.next_below(ACCOUNTS);
                let to = rng.next_below(ACCOUNTS);
                let amount = 1 + rng.next_below(50);
                // Move `amount` from `from`'s checking account to `to`'s
                // savings account, atomically across the two tables.  The
                // `Txn` guard `t` is the only way to touch the structures
                // transactionally, and `abort` returns the proof token the
                // body must produce to bail out early.
                let res = h.run(|t| {
                    let c = checking.get(t, from).unwrap_or(0);
                    let s = savings.get(t, to).unwrap_or(0);
                    if c < amount {
                        return Err(t.abort(AbortReason::Explicit));
                    }
                    checking.put(t, from, c - amount);
                    savings.put(t, to, s + amount);
                    Ok(())
                });
                if res.is_err() {
                    denied += 1;
                }
            }
            denied
        }));
    }

    let denied: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();

    // Invariant: money is conserved across both tables.
    let total: u64 = checking
        .snapshot()
        .iter()
        .chain(savings.snapshot().iter())
        .map(|(_, v)| *v)
        .sum();
    let expected = 2 * ACCOUNTS * INITIAL;
    println!(
        "total balance {total} (expected {expected}), {denied} transfers denied for insufficient funds"
    );
    let snap = mgr.stats_snapshot();
    println!(
        "commits={} (fast={} read-only={}) aborts={} (conflict={} explicit={}) helps={}",
        snap.commits,
        snap.fast_commits,
        snap.ro_commits,
        snap.aborts,
        snap.conflict_aborts,
        snap.explicit_aborts,
        snap.helps
    );
    assert_eq!(total, expected, "strict serializability violated!");
    println!("invariant holds: transfers were strictly serializable");
}
