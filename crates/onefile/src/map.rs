//! A sequential chained hash table parallelized with the OneFile-style STM —
//! exactly the configuration the paper benchmarks ("In OneFile, we use a
//! sequential chained hash table parallelized using STM").
//!
//! Node `next` pointers and values are `TmVar`s; every operation runs inside
//! a read or write transaction of [`OneFileStm`], and multiple operations can
//! be composed by the caller into a single larger transaction (that is what
//! the Fig. 7/8 workloads do).

use crate::stm::{OfAbort, OneFileStm, ReadTx, TmVar, WriteTx};
use medley::util::sync::Mutex;
use std::sync::Arc;

struct Node {
    key: u64,
    val: TmVar,
    next: TmVar, // *mut Node as u64; 0 = null
}

/// A chained hash map whose every mutable word is STM-managed.
pub struct OneFileMap {
    stm: Arc<OneFileStm>,
    buckets: Box<[TmVar]>,
    mask: u64,
    /// Nodes unlinked by `remove`/`put`; freed when the map is dropped
    /// (readers carry no hazard information in this baseline).
    graveyard: Mutex<Vec<*mut Node>>,
}

// SAFETY: nodes are shared across threads; all mutation is mediated by the
// STM, and reclamation is deferred to drop.
unsafe impl Send for OneFileMap {}
unsafe impl Sync for OneFileMap {}

impl OneFileMap {
    /// Creates a map with `buckets` buckets (rounded up to a power of two).
    pub fn new(stm: Arc<OneFileStm>, buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(1);
        Self {
            stm,
            buckets: (0..n)
                .map(|_| TmVar::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            mask: (n - 1) as u64,
            graveyard: Mutex::new(Vec::new()),
        }
    }

    /// The STM instance transactions on this map must use.
    pub fn stm(&self) -> &Arc<OneFileStm> {
        &self.stm
    }

    #[inline]
    fn bucket(&self, key: u64) -> &TmVar {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.buckets[(h & self.mask) as usize]
    }

    // ------------------------------------------------------------------
    // Composable (inside-transaction) operations
    // ------------------------------------------------------------------

    /// Lookup inside a write transaction.
    pub fn get_w(&self, tx: &WriteTx, key: u64) -> Option<u64> {
        let mut cur = tx.read(self.bucket(key));
        while cur != 0 {
            // SAFETY: node pointers stored in TmVars are live until drop.
            let node = unsafe { &*(cur as usize as *const Node) };
            if node.key == key {
                return Some(tx.read(&node.val));
            }
            if node.key > key {
                return None;
            }
            cur = tx.read(&node.next);
        }
        None
    }

    /// Lookup inside a read-only transaction.
    pub fn get_r(&self, tx: &ReadTx<'_>, key: u64) -> Option<u64> {
        let mut cur = tx.read(self.bucket(key));
        while cur != 0 {
            // SAFETY: as above.
            let node = unsafe { &*(cur as usize as *const Node) };
            if node.key == key {
                return Some(tx.read(&node.val));
            }
            if node.key > key {
                return None;
            }
            cur = tx.read(&node.next);
        }
        None
    }

    /// Insert-or-replace inside a write transaction; returns the old value.
    pub fn put_w(&self, tx: &mut WriteTx, key: u64, val: u64) -> Option<u64> {
        let mut prev: Option<&TmVar> = None;
        let head = self.bucket(key);
        let mut cur = tx.read(head);
        while cur != 0 {
            // SAFETY: as above.
            let node = unsafe { &*(cur as usize as *const Node) };
            if node.key == key {
                let old = tx.read(&node.val);
                tx.write(&node.val, val);
                return Some(old);
            }
            if node.key > key {
                break;
            }
            prev = Some(&node.next);
            cur = tx.read(&node.next);
        }
        let new_node = Box::into_raw(Box::new(Node {
            key,
            val: TmVar::new(val),
            next: TmVar::new(cur),
        }));
        let bits = new_node as usize as u64;
        match prev {
            Some(p) => tx.write(p, bits),
            None => tx.write(head, bits),
        }
        None
    }

    /// Insert-if-absent inside a write transaction.
    pub fn insert_w(&self, tx: &mut WriteTx, key: u64, val: u64) -> bool {
        if self.get_w(tx, key).is_some() {
            return false;
        }
        self.put_w(tx, key, val);
        true
    }

    /// Remove inside a write transaction; returns the old value.
    pub fn remove_w(&self, tx: &mut WriteTx, key: u64) -> Option<u64> {
        let head = self.bucket(key);
        let mut prev: Option<&TmVar> = None;
        let mut cur = tx.read(head);
        while cur != 0 {
            // SAFETY: as above.
            let node = unsafe { &*(cur as usize as *const Node) };
            if node.key == key {
                let old = tx.read(&node.val);
                let next = tx.read(&node.next);
                match prev {
                    Some(p) => tx.write(p, next),
                    None => tx.write(head, next),
                }
                self.graveyard.lock().push(cur as usize as *mut Node);
                return Some(old);
            }
            if node.key > key {
                return None;
            }
            prev = Some(&node.next);
            cur = tx.read(&node.next);
        }
        None
    }

    // ------------------------------------------------------------------
    // Standalone single-operation wrappers
    // ------------------------------------------------------------------

    /// Standalone lookup (runs its own read transaction).
    pub fn get(&self, key: u64) -> Option<u64> {
        self.stm.read_tx(|tx| self.get_r(tx, key))
    }

    /// Standalone insert-or-replace.
    pub fn put(&self, key: u64, val: u64) -> Option<u64> {
        self.stm
            .write_tx(|tx| Ok::<_, OfAbort>(self.put_w(tx, key, val)))
            .unwrap()
    }

    /// Standalone insert-if-absent.
    pub fn insert(&self, key: u64, val: u64) -> bool {
        self.stm
            .write_tx(|tx| Ok::<_, OfAbort>(self.insert_w(tx, key, val)))
            .unwrap()
    }

    /// Standalone remove.
    pub fn remove(&self, key: u64) -> Option<u64> {
        self.stm
            .write_tx(|tx| Ok::<_, OfAbort>(self.remove_w(tx, key)))
            .unwrap()
    }

    /// Quiescent number of live keys.
    pub fn len_quiescent(&self) -> usize {
        let mut n = 0;
        for b in self.buckets.iter() {
            let mut cur = b.load_raw();
            while cur != 0 {
                n += 1;
                // SAFETY: quiescent access.
                cur = unsafe { (*(cur as usize as *const Node)).next.load_raw() };
            }
        }
        n
    }
}

impl Drop for OneFileMap {
    fn drop(&mut self) {
        for b in self.buckets.iter() {
            let mut cur = b.load_raw();
            while cur != 0 {
                let node = cur as usize as *mut Node;
                // SAFETY: exclusive access in Drop.
                cur = unsafe { (*node).next.load_raw() };
                unsafe { drop(Box::from_raw(node)) };
            }
        }
        for node in self.graveyard.lock().drain(..) {
            // SAFETY: graveyard nodes were unlinked and never freed.
            unsafe { drop(Box::from_raw(node)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_crud() {
        let stm = OneFileStm::new();
        let map = OneFileMap::new(stm, 64);
        assert_eq!(map.get(1), None);
        assert!(map.insert(1, 10));
        assert!(!map.insert(1, 11));
        assert_eq!(map.get(1), Some(10));
        assert_eq!(map.put(1, 12), Some(10));
        assert_eq!(map.remove(1), Some(12));
        assert_eq!(map.remove(1), None);
        assert_eq!(map.len_quiescent(), 0);
    }

    #[test]
    fn composed_transaction_is_atomic() {
        let stm = OneFileStm::new();
        let map = OneFileMap::new(Arc::clone(&stm), 64);
        assert!(map.insert(1, 100));
        // Transfer 30 units from key 1 to key 2 in one transaction.
        let r = stm.write_tx(|tx| {
            let a = map.get_w(tx, 1).unwrap();
            if a < 30 {
                return Err(OfAbort);
            }
            map.put_w(tx, 1, a - 30);
            let b = map.get_w(tx, 2).unwrap_or(0);
            map.put_w(tx, 2, b + 30);
            Ok(())
        });
        assert!(r.is_ok());
        assert_eq!(map.get(1), Some(70));
        assert_eq!(map.get(2), Some(30));
        // Aborted transfer changes nothing.
        let r = stm.write_tx(|tx| {
            let a = map.get_w(tx, 1).unwrap();
            map.put_w(tx, 1, a + 999);
            Err::<(), _>(OfAbort)
        });
        assert!(r.is_err());
        assert_eq!(map.get(1), Some(70));
    }

    #[test]
    fn concurrent_transfers_preserve_sum() {
        const THREADS: usize = 4;
        const OPS: usize = 300;
        const KEYS: u64 = 8;
        let stm = OneFileStm::new();
        let map = Arc::new(OneFileMap::new(Arc::clone(&stm), 32));
        for k in 0..KEYS {
            map.insert(k, 100);
        }
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let stm = Arc::clone(&stm);
            let map = Arc::clone(&map);
            joins.push(std::thread::spawn(move || {
                let mut rng = medley::util::FastRng::new(t as u64 + 1);
                for _ in 0..OPS {
                    let from = rng.next_below(KEYS);
                    let to = rng.next_below(KEYS);
                    if from == to {
                        continue;
                    }
                    let _ = stm.write_tx(|tx| {
                        let a = map.get_w(tx, from).unwrap();
                        let b = map.get_w(tx, to).unwrap();
                        if a == 0 {
                            return Err(OfAbort);
                        }
                        map.put_w(tx, from, a - 1);
                        map.put_w(tx, to, b + 1);
                        Ok(())
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let total: u64 = (0..KEYS).map(|k| map.get(k).unwrap()).sum();
        assert_eq!(total, KEYS * 100);
    }
}
