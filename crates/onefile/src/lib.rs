//! # onefile — a OneFile-style STM baseline (transient and persistent)
//!
//! OneFile (Ramalhete et al., DSN'19) is the nonblocking (persistent) STM the
//! paper compares against in Figs. 7–9.  Its performance-defining properties
//! are:
//!
//! * transactions are serialized by a **global sequence number**: at most one
//!   writer's redo log is being applied at any time, so write throughput does
//!   not scale with threads;
//! * readers need **no read set** — they validate against the global sequence
//!   number — so read-mostly workloads are cheap at low thread counts;
//! * the persistent variant flushes the redo log and every modified word
//!   **eagerly on every commit**, paying the full NVM write-back cost on the
//!   critical path.
//!
//! This clean-room re-implementation preserves exactly those properties.  It
//! simplifies the original in one respect, documented in DESIGN.md: writers
//! acquire a writer mutex instead of helping each other apply published redo
//! logs, which keeps writers serialized (the property the evaluation depends
//! on) but makes the emulation layer blocking rather than wait-free.
//! Removed nodes are kept in a graveyard until the structure is dropped, as
//! readers hold no hazard information (another documented simplification).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod map;
pub mod stm;

pub use map::OneFileMap;
pub use stm::{OfAbort, OneFileStm, ReadTx, TmVar, WriteTx};
