//! The word-based STM core: global sequence number, redo-log write
//! transactions, sequence-validated read transactions, and optional eager
//! persistence per commit.

use medley::util::sync::Mutex;
use pmem::SimNvm;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A transactional 64-bit word managed by [`OneFileStm`].
#[derive(Debug, Default)]
pub struct TmVar {
    value: AtomicU64,
}

impl TmVar {
    /// Creates a word holding `v`.
    pub const fn new(v: u64) -> Self {
        Self {
            value: AtomicU64::new(v),
        }
    }

    /// Raw (non-transactional) read; used for initialization and teardown.
    pub fn load_raw(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }
}

/// The STM instance: one global sequence number plus one writer at a time.
pub struct OneFileStm {
    /// Even = stable; odd = a writer is applying its redo log.
    seq: AtomicU64,
    writer: Mutex<()>,
    /// Simulated NVM for the persistent variant (`None` = transient).
    nvm: Option<Arc<SimNvm>>,
    commits: AtomicU64,
    aborts: AtomicU64,
}

impl std::fmt::Debug for OneFileStm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OneFileStm")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .field("persistent", &self.nvm.is_some())
            .finish()
    }
}

/// Error type signalling a user-requested abort of a write transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfAbort;

impl OneFileStm {
    /// Creates a transient STM instance.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            seq: AtomicU64::new(0),
            writer: Mutex::new(()),
            nvm: None,
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        })
    }

    /// Creates a persistent STM instance that eagerly flushes every commit
    /// through `nvm` (the "POneFile" configuration of the paper).
    pub fn new_persistent(nvm: Arc<SimNvm>) -> Arc<Self> {
        Arc::new(Self {
            seq: AtomicU64::new(0),
            writer: Mutex::new(()),
            nvm: Some(nvm),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        })
    }

    /// `(commits, aborts)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.commits.load(Ordering::Relaxed),
            self.aborts.load(Ordering::Relaxed),
        )
    }

    /// Runs a write transaction.  The body executes against a redo log and
    /// may return `Err(OfAbort)` to roll back; the log is applied atomically
    /// (with respect to readers) under the global writer serialization.
    pub fn write_tx<R>(
        &self,
        mut body: impl FnMut(&mut WriteTx) -> Result<R, OfAbort>,
    ) -> Result<R, OfAbort> {
        let _guard = self.writer.lock();
        let mut tx = WriteTx {
            log: HashMap::new(),
        };
        match body(&mut tx) {
            Ok(r) => {
                // Publish: bump to odd, apply the redo log, bump to even.
                self.seq.fetch_add(1, Ordering::AcqRel);
                if let Some(nvm) = &self.nvm {
                    // Persist the redo log itself before applying (undo/redo
                    // logging rule), then each modified word, then the commit
                    // marker — all on the critical path, as OneFile-PTM does.
                    nvm.flush_lines(tx.log.len() as u64);
                    nvm.fence();
                }
                for (&addr, &val) in &tx.log {
                    // SAFETY: addresses in the log are live `TmVar`s belonging
                    // to structures that outlive their STM transactions.
                    let var = unsafe { &*(addr as *const TmVar) };
                    var.value.store(val, Ordering::Release);
                }
                if let Some(nvm) = &self.nvm {
                    nvm.flush_lines(tx.log.len() as u64);
                    nvm.fence();
                    nvm.flush_line(); // commit marker
                    nvm.fence();
                }
                self.seq.fetch_add(1, Ordering::AcqRel);
                self.commits.fetch_add(1, Ordering::Relaxed);
                Ok(r)
            }
            Err(e) => {
                self.aborts.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Runs a read-only transaction.  The body may observe an inconsistent
    /// snapshot while a writer is active, in which case it is re-executed;
    /// there is no per-location read set (OneFile's key optimization).
    pub fn read_tx<R>(&self, mut body: impl FnMut(&ReadTx<'_>) -> R) -> R {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let tx = ReadTx { _stm: self };
            let r = body(&tx);
            let s2 = self.seq.load(Ordering::Acquire);
            if s1 == s2 {
                return r;
            }
            self.aborts.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Handle used inside a write transaction.
pub struct WriteTx {
    log: HashMap<usize, u64>,
}

impl WriteTx {
    /// Transactional read: redo log first, then memory.
    pub fn read(&self, var: &TmVar) -> u64 {
        let addr = var as *const TmVar as usize;
        if let Some(v) = self.log.get(&addr) {
            *v
        } else {
            var.value.load(Ordering::Acquire)
        }
    }

    /// Transactional write: recorded in the redo log.
    pub fn write(&mut self, var: &TmVar, val: u64) {
        self.log.insert(var as *const TmVar as usize, val);
    }

    /// Number of words this transaction will modify.
    pub fn write_set_size(&self) -> usize {
        self.log.len()
    }
}

/// Handle used inside a read-only transaction.
pub struct ReadTx<'a> {
    _stm: &'a OneFileStm,
}

impl<'a> ReadTx<'a> {
    /// Transactional read.
    pub fn read(&self, var: &TmVar) -> u64 {
        var.value.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_tx_applies_log_atomically() {
        let stm = OneFileStm::new();
        let a = TmVar::new(1);
        let b = TmVar::new(2);
        let r = stm.write_tx(|tx| {
            let x = tx.read(&a);
            let y = tx.read(&b);
            tx.write(&a, x + 10);
            tx.write(&b, y + 10);
            assert_eq!(tx.read(&a), x + 10, "read-your-own-write");
            Ok(x + y)
        });
        assert_eq!(r, Ok(3));
        assert_eq!(a.load_raw(), 11);
        assert_eq!(b.load_raw(), 12);
    }

    #[test]
    fn aborted_write_tx_changes_nothing() {
        let stm = OneFileStm::new();
        let a = TmVar::new(1);
        let r: Result<(), OfAbort> = stm.write_tx(|tx| {
            tx.write(&a, 99);
            Err(OfAbort)
        });
        assert_eq!(r, Err(OfAbort));
        assert_eq!(a.load_raw(), 1);
        assert_eq!(stm.stats().1, 1);
    }

    #[test]
    fn read_tx_sees_consistent_snapshots() {
        use std::sync::atomic::AtomicBool;
        let stm = OneFileStm::new();
        let a = Arc::new(TmVar::new(0));
        let b = Arc::new(TmVar::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let stm = Arc::clone(&stm);
            let (a, b, stop) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    let _ = stm.write_tx(|tx| {
                        tx.write(&a, i);
                        tx.write(&b, i);
                        Ok(())
                    });
                }
            })
        };
        for _ in 0..10_000 {
            let (x, y) = stm.read_tx(|tx| (tx.read(&a), tx.read(&b)));
            assert_eq!(x, y, "reader observed a torn write transaction");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn persistent_variant_flushes_eagerly() {
        let nvm = Arc::new(SimNvm::new(pmem::NvmCostModel::ZERO));
        let stm = OneFileStm::new_persistent(Arc::clone(&nvm));
        let a = TmVar::new(0);
        for i in 0..10 {
            let _ = stm.write_tx(|tx| {
                tx.write(&a, i);
                Ok(())
            });
        }
        let (flushes, fences) = nvm.stats().snapshot();
        assert!(flushes >= 30, "log + data + marker per commit");
        assert!(fences >= 30);
    }
}
