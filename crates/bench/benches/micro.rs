//! Criterion micro-benchmarks of the building blocks: the 128-bit CAS, a
//! single-word MCNS transaction, and single operations on the NBTC hash table
//! and skiplist (with and without an enclosing transaction).
//!
//! These complement the figure binaries (`fig7`–`fig10`): the figures report
//! end-to-end throughput/latency series, while these benchmarks isolate the
//! per-primitive costs discussed in Sec. 6.3 of the paper (the ~2.2×
//! marginal overhead of transactional composition).

use criterion::{criterion_group, criterion_main, Criterion};
use medley::{CasWord, TxManager};
use nbds::{MichaelHashMap, SkipList};
use std::sync::Arc;

fn bench_atomic128(c: &mut Criterion) {
    let w = CasWord::new(0);
    let mut i = 0u64;
    c.bench_function("casword/plain_cas", |b| {
        b.iter(|| {
            let cur = w.try_load_value().unwrap();
            assert!(w.cas_value(cur, cur + 1));
            i = i.wrapping_add(1);
        })
    });
}

fn bench_mcns_single_word(c: &mut Criterion) {
    let mgr = TxManager::new();
    let mut h = mgr.register();
    let w = CasWord::new(0);
    c.bench_function("mcns/single_word_tx", |b| {
        b.iter(|| {
            h.run(|h| {
                let v = h.nbtc_load(&w);
                h.nbtc_cas(&w, v, v + 1, true, true);
                Ok(())
            })
            .unwrap();
        })
    });
}

fn bench_hashmap_ops(c: &mut Criterion) {
    let mgr = TxManager::new();
    let mut h = mgr.register();
    let map = Arc::new(MichaelHashMap::<u64>::with_buckets(1 << 12));
    for k in 0..4096u64 {
        map.insert(&mut h, k, k);
    }
    let mut k = 0u64;
    c.bench_function("hashmap/standalone_put_remove", |b| {
        b.iter(|| {
            k = (k + 1) & 0xFFF;
            map.put(&mut h, k, k);
            map.remove(&mut h, k + 4096);
        })
    });
    c.bench_function("hashmap/transactional_put_remove", |b| {
        b.iter(|| {
            k = (k + 1) & 0xFFF;
            let _ = h.run(|h| {
                map.put(h, k, k);
                map.remove(h, k + 4096);
                Ok(())
            });
        })
    });
}

fn bench_skiplist_ops(c: &mut Criterion) {
    let mgr = TxManager::new();
    let mut h = mgr.register();
    let sl = Arc::new(SkipList::<u64>::new());
    for k in 0..4096u64 {
        sl.insert(&mut h, k, k);
    }
    let mut k = 0u64;
    c.bench_function("skiplist/standalone_get", |b| {
        b.iter(|| {
            k = (k + 1) & 0xFFF;
            sl.get(&mut h, k);
        })
    });
    c.bench_function("skiplist/transactional_get_pair", |b| {
        b.iter(|| {
            k = (k + 1) & 0xFFF;
            let _ = h.run(|h| {
                sl.get(h, k);
                sl.get(h, (k + 7) & 0xFFF);
                Ok(())
            });
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(500))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_atomic128, bench_mcns_single_word, bench_hashmap_ops, bench_skiplist_ops
}
criterion_main!(benches);
