//! Criterion micro-benchmarks of the building blocks: the 128-bit CAS, a
//! single-word MCNS transaction, single operations on the NBTC hash table
//! and skiplist (with and without an enclosing transaction), and — the perf
//! focus of the commit-fast-path work — the three canonical transaction
//! shapes (1-op, read-only lookup, 2-op transfer) measured with the fast
//! paths enabled (`fast`) and disabled (`general`) at 1/4/16 threads.
//!
//! These complement the figure binaries (`fig7`–`fig10`): the figures report
//! end-to-end throughput/latency series, while these benchmarks isolate the
//! per-primitive costs discussed in Sec. 6.3 of the paper (the ~2.2×
//! marginal overhead of transactional composition).
//!
//! Results are also written to `BENCH_micro.json` (path overridable via the
//! `BENCH_JSON` environment variable) so the perf trajectory of successive
//! PRs can be diffed mechanically.

use criterion::{criterion_group, criterion_main, Criterion};
use medley::{AbortReason, CasWord, Ctx, TxManager};
use nbds::{MichaelHashMap, SkipList};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Transaction shape exercised by the fast-path sweep.
#[derive(Debug, Clone, Copy)]
enum TxShape {
    /// One `nbtc_load` + one critical `nbtc_cas` on a private word (the
    /// single-CAS direct-commit candidate).
    OneOp,
    /// Two registered loads, no writes (the read-only commit candidate).
    ReadOnly,
    /// A two-word transfer (always the general descriptor path; measures the
    /// cost of buffering + materialization when fast paths are on).
    Transfer2,
}

/// Minimum transactions per thread in one `run_tx_shape` sample.  Multi-
/// thread sweeps at small driver-requested batch sizes used to execute as
/// few as 2–3 recorded iterations per sample (40 across a whole 16-thread
/// series), so the recorded means were dominated by scaling noise; the floor
/// guarantees every sample measures a statistically meaningful amount of
/// work, and `iter_custom_counted` records the executed count honestly.
const MIN_TX_PER_THREAD: u64 = 4_000;

/// Runs at least `iters` transactions of `shape` spread over `threads`
/// threads on disjoint per-thread words (with a per-thread floor of
/// [`MIN_TX_PER_THREAD`]), returning the wall time of the measured region
/// and the number of transactions actually executed (threads synchronized
/// by a barrier; spawn cost excluded).
fn run_tx_shape(threads: usize, iters: u64, fast: bool, shape: TxShape) -> (Duration, u64) {
    let mgr = TxManager::with_max_threads(threads + 1);
    mgr.set_fast_paths(fast);
    let per_thread = (iters / threads as u64).max(MIN_TX_PER_THREAD);
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut joins = Vec::new();
    for _ in 0..threads {
        let mgr = Arc::clone(&mgr);
        let barrier = Arc::clone(&barrier);
        joins.push(std::thread::spawn(move || {
            let mut h = mgr.register();
            // Disjoint per-thread words: this sweep isolates commit-path
            // cost, not data contention.
            let a = CasWord::new(1_000);
            let b = CasWord::new(1_000);
            barrier.wait();
            for _ in 0..per_thread {
                match shape {
                    TxShape::OneOp => {
                        let _ = h.run(|t| {
                            let v = t.nbtc_load(&a);
                            t.nbtc_cas(&a, v, v.wrapping_add(1), true, true);
                            Ok(())
                        });
                    }
                    TxShape::ReadOnly => {
                        let _ = h.run(|t| {
                            let (x, xc) = t.nbtc_load_counted(&a);
                            t.add_read_with_counter(&a, x, xc);
                            let (y, yc) = t.nbtc_load_counted(&b);
                            t.add_read_with_counter(&b, y, yc);
                            Ok(())
                        });
                    }
                    TxShape::Transfer2 => {
                        let _ = h.run(|t| {
                            let x = t.nbtc_load(&a);
                            let y = t.nbtc_load(&b);
                            if !t.nbtc_cas(&a, x, x.wrapping_sub(1), true, true) {
                                return Err(t.abort(AbortReason::Conflict));
                            }
                            if !t.nbtc_cas(&b, y, y.wrapping_add(1), true, true) {
                                return Err(t.abort(AbortReason::Conflict));
                            }
                            Ok(())
                        });
                    }
                }
            }
        }));
    }
    // Start the clock before releasing the barrier: on a box with fewer
    // cores than threads the workers may otherwise run to completion before
    // the main thread is scheduled again.
    let start = Instant::now();
    barrier.wait();
    for j in joins {
        let _ = j.join();
    }
    let elapsed = start.elapsed();
    let executed = per_thread * threads as u64;
    (elapsed, executed)
}

fn bench_commit_fast_paths(c: &mut Criterion) {
    for &threads in &[1usize, 4, 16] {
        for &(shape, name) in &[
            (TxShape::OneOp, "1op"),
            (TxShape::ReadOnly, "readonly"),
            (TxShape::Transfer2, "transfer2"),
        ] {
            for &(fast, mode) in &[(true, "fast"), (false, "general")] {
                c.bench_function(&format!("tx/{name}/{threads}t/{mode}"), |b| {
                    b.iter_custom_counted(|iters| run_tx_shape(threads, iters, fast, shape))
                });
            }
        }
    }
}

fn bench_container_single_op_tx(c: &mut Criterion) {
    // A lone container operation inside a transaction: the container marks
    // its single critical CAS, so the direct-commit path should make this
    // nearly as cheap as the standalone operation.
    for &(fast, mode) in &[(true, "fast"), (false, "general")] {
        let mgr = TxManager::new();
        mgr.set_fast_paths(fast);
        let mut h = mgr.register();
        let map = Arc::new(MichaelHashMap::<u64>::with_buckets(1 << 12));
        for k in 0..4096u64 {
            map.insert(&mut h.nontx(), k, k);
        }
        let mut k = 0u64;
        c.bench_function(&format!("hashmap/tx_single_put/{mode}"), |b| {
            b.iter(|| {
                k = (k + 1) & 0xFFF;
                let _ = h.run(|t| {
                    map.put(t, k, k);
                    Ok(())
                });
            })
        });
        c.bench_function(&format!("hashmap/tx_single_get/{mode}"), |b| {
            b.iter(|| {
                k = (k + 1) & 0xFFF;
                let _ = h.run(|t| {
                    map.get(t, k);
                    Ok(())
                });
            })
        });
    }
}

fn bench_atomic128(c: &mut Criterion) {
    let w = CasWord::new(0);
    let mut i = 0u64;
    c.bench_function("casword/plain_cas", |b| {
        b.iter(|| {
            let cur = w.try_load_value().unwrap();
            assert!(w.cas_value(cur, cur + 1));
            i = i.wrapping_add(1);
        })
    });
}

fn bench_mcns_single_word(c: &mut Criterion) {
    let mgr = TxManager::new();
    let mut h = mgr.register();
    let w = CasWord::new(0);
    c.bench_function("mcns/single_word_tx", |b| {
        b.iter(|| {
            h.run(|t| {
                let v = t.nbtc_load(&w);
                t.nbtc_cas(&w, v, v + 1, true, true);
                Ok(())
            })
            .unwrap();
        })
    });
}

fn bench_hashmap_ops(c: &mut Criterion) {
    let mgr = TxManager::new();
    let mut h = mgr.register();
    let map = Arc::new(MichaelHashMap::<u64>::with_buckets(1 << 12));
    for k in 0..4096u64 {
        map.insert(&mut h.nontx(), k, k);
    }
    let mut k = 0u64;
    c.bench_function("hashmap/standalone_put_remove", |b| {
        let mut cx = h.nontx();
        b.iter(|| {
            k = (k + 1) & 0xFFF;
            map.put(&mut cx, k, k);
            map.remove(&mut cx, k + 4096);
        })
    });
    c.bench_function("hashmap/transactional_put_remove", |b| {
        b.iter(|| {
            k = (k + 1) & 0xFFF;
            let _ = h.run(|t| {
                map.put(t, k, k);
                map.remove(t, k + 4096);
                Ok(())
            });
        })
    });
}

fn bench_skiplist_ops(c: &mut Criterion) {
    let mgr = TxManager::new();
    let mut h = mgr.register();
    let sl = Arc::new(SkipList::<u64>::new());
    for k in 0..4096u64 {
        sl.insert(&mut h.nontx(), k, k);
    }
    let mut k = 0u64;
    c.bench_function("skiplist/standalone_get", |b| {
        let mut cx = h.nontx();
        b.iter(|| {
            k = (k + 1) & 0xFFF;
            sl.get(&mut cx, k);
        })
    });
    c.bench_function("skiplist/transactional_get_pair", |b| {
        b.iter(|| {
            k = (k + 1) & 0xFFF;
            let _ = h.run(|t| {
                sl.get(t, k);
                sl.get(t, (k + 7) & 0xFFF);
                Ok(())
            });
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(500))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_atomic128, bench_mcns_single_word, bench_hashmap_ops, bench_skiplist_ops,
        bench_commit_fast_paths, bench_container_single_op_tx
}
criterion_main!(benches);
