//! Shared machine-readable benchmark reporting.
//!
//! Every harness in this crate emits the same artifact shape — a
//! `BENCH_<target>.json` file holding `{"target": ..., "results": [...]}` —
//! so CI can grep/upload them uniformly.  The emission used to live inside
//! the throughput workload module (and each new harness was about to grow
//! its own copy); this module is the single implementation.
//!
//! The log-bucketed latency histogram the service-level harnesses use for
//! percentiles lives in the shared [`obs`] crate now (the server's metrics
//! registry records into the very same implementation, which is what makes
//! client-observed vs. server-observed quantiles comparable); it is
//! re-exported here so harness code keeps its familiar import path.

pub use obs::LatencyHistogram;

/// Writes `BENCH_<target>.json` (or the path named by the `BENCH_JSON`
/// environment variable) with the given pre-rendered JSON result objects.
///
/// Returns the path written.  Failures are reported on stderr and swallowed:
/// a benchmark run must never die on report I/O after the measurements
/// succeeded.
pub fn write_json(target: &str, entries: &[String]) -> String {
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| format!("BENCH_{target}.json"));
    let body = format!(
        "{{\n  \"target\": \"{}\",\n  \"results\": [\n    {}\n  ]\n}}\n",
        target,
        entries.join(",\n    ")
    );
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {} results to {path}", entries.len()),
        Err(e) => eprintln!("failed to write benchmark report {path}: {e}"),
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn reexported_histogram_is_the_shared_implementation() {
        // The histogram moved to `obs`; the re-export must stay usable
        // exactly as before for every harness in this crate.
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(500));
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn report_path_honors_env_override() {
        let dir = std::env::temp_dir().join(format!("bench-report-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("custom.json");
        std::env::set_var("BENCH_JSON", &path);
        let written = write_json("unit", &["{\"x\":1}".to_string()]);
        std::env::remove_var("BENCH_JSON");
        assert_eq!(written, path.to_string_lossy());
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"target\": \"unit\""));
        assert!(body.contains("{\"x\":1}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
