//! Contended-throughput workloads: key-distribution generators (uniform and
//! zipfian), duration-based multi-thread runners, and the machine-readable
//! `BENCH_throughput.json` report.
//!
//! The microbenchmarks in `benches/micro.rs` isolate *per-transaction
//! latency* on disjoint data; this module measures the opposite regime —
//! sustained ops/sec while many threads fight over a skewed key space — so
//! that contended general-path changes (helping storms, validation cost,
//! install conflicts) are measured rather than asserted.  Every result
//! carries the `TxStats` delta of its run, so a series shows not only the
//! throughput but *why* it moved (conflict aborts, helps, commit-path mix).
//!
//! The `durable-*` series run the same shapes against `txmontage::Durable`
//! maps with a live [`pmem::EpochAdvancer`], so the persistence domain's
//! payload alloc/retire path sits on the critical path of every committed
//! update.  Each durable result additionally records the simulated-NVM
//! flush/fence delta and the domain state ([`DurableSeriesStats`]), and the
//! [`pmem::DomainBackend::MutexSlab`] baseline can be run side by side for
//! the arena-vs-global-lock A/B.

use medley::util::FastRng;
use medley::{AbortReason, CasWord, Ctx, TxManager, TxResult, TxStatsSnapshot};
use nbds::MichaelHashMap;
use pmem::{
    DomainBackend, DomainStats, EpochAdvancer, NvmCostModel, NvmSnapshot, PersistenceDomain,
};
use txmontage::DurableHashMap;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Key distributions
// ---------------------------------------------------------------------------

/// The generalized harmonic number `H_{n,theta}` (the zipfian normalizer).
pub fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

/// A zipfian key generator over `[0, n)` (rank 0 hottest), using the
/// Gray et al. "Quickly generating billion-record synthetic databases"
/// construction also used by YCSB.
///
/// `theta` in `(0, 1)` controls the skew; the YCSB default `0.99` makes the
/// hottest of 2^16 keys absorb roughly 9% of all draws.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Creates a generator for `n` keys with skew `theta`.
    ///
    /// # Panics
    /// Panics unless `n > 0` and `0 < theta < 1` (use
    /// [`KeySampler::Uniform`] for the unskewed case).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs a nonempty key space");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// The size of the key space.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The probability of drawing rank `k` (0-based; rank 0 is hottest).
    pub fn rank_probability(&self, k: u64) -> f64 {
        1.0 / ((k + 1) as f64).powf(self.theta) / self.zetan
    }

    /// Draws one key in `[0, n)`.
    pub fn sample(&self, rng: &mut FastRng) -> u64 {
        // 53 uniform mantissa bits -> u in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1.min(self.n - 1);
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }
}

/// A key-distribution choice, materializable into a [`KeySampler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over the key space.
    Uniform,
    /// Zipfian with the given `theta` (rank 0 hottest).
    Zipfian(f64),
}

impl KeyDist {
    /// Builds the sampler for a key space of `n` keys.
    pub fn sampler(self, n: u64) -> KeySampler {
        match self {
            KeyDist::Uniform => KeySampler::Uniform(n),
            KeyDist::Zipfian(theta) => KeySampler::Zipf(Zipf::new(n, theta)),
        }
    }

    /// Short label used in series names (`uniform`, `zipf99`, ...).
    pub fn label(self) -> String {
        match self {
            KeyDist::Uniform => "uniform".to_string(),
            KeyDist::Zipfian(theta) => format!("zipf{:02}", (theta * 100.0).round() as u32),
        }
    }
}

/// A materialized key generator (cheap to sample per draw).
#[derive(Debug, Clone)]
pub enum KeySampler {
    /// Uniform over `[0, n)`.
    Uniform(u64),
    /// Zipfian (see [`Zipf`]).
    Zipf(Zipf),
}

impl KeySampler {
    /// Draws one key.
    #[inline]
    pub fn sample(&self, rng: &mut FastRng) -> u64 {
        match self {
            KeySampler::Uniform(n) => rng.next_below(*n),
            KeySampler::Zipf(z) => z.sample(rng),
        }
    }
}

// ---------------------------------------------------------------------------
// Duration-based throughput runners
// ---------------------------------------------------------------------------

/// Parameters shared by the throughput workloads.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Wall-clock measurement duration.
    pub duration: Duration,
    /// Key distribution of the workload's picks.
    pub dist: KeyDist,
}

/// The persistence-layer statistics of one `durable-*` series: the simulated
/// NVM work performed during the measured window plus the domain's state at
/// the end of the run.
#[derive(Debug, Clone, Copy)]
pub struct DurableSeriesStats {
    /// Payload-store backend the series ran on.
    pub backend: DomainBackend,
    /// Cache-line write-backs / fences issued during the window.
    pub nvm_delta: NvmSnapshot,
    /// Domain state after the run (advancer stopped, handles dropped).
    pub domain: DomainStats,
}

/// One measured series point, with the statistics delta that explains it.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Series name, e.g. `transfer/zipf99`.
    pub name: String,
    /// Worker thread count.
    pub threads: usize,
    /// Committed transactions during the measured window.
    pub committed: u64,
    /// Wall-clock duration of the measured window.
    pub elapsed: Duration,
    /// Committed transactions per second (all threads combined).
    pub ops_per_sec: f64,
    /// `TxStats` accumulated by the run (fresh manager per run, handles
    /// dropped before sampling, so the counts are exact).
    pub stats: TxStatsSnapshot,
    /// Persistence-layer statistics (`durable-*` series only).
    pub durable: Option<DurableSeriesStats>,
}

impl ThroughputResult {
    fn new(
        name: String,
        threads: usize,
        committed: u64,
        elapsed: Duration,
        stats: TxStatsSnapshot,
    ) -> Self {
        let ops_per_sec = committed as f64 / elapsed.as_secs_f64().max(1e-9);
        Self {
            name,
            threads,
            committed,
            elapsed,
            ops_per_sec,
            stats,
            durable: None,
        }
    }

    fn with_durable(mut self, durable: DurableSeriesStats) -> Self {
        self.durable = Some(durable);
        self
    }

    /// One JSON object (used by [`write_report`]).
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let durable = match &self.durable {
            None => String::new(),
            Some(d) => format!(
                concat!(
                    ",\"backend\":\"{}\",\"nvm_flushes\":{},\"nvm_fences\":{},",
                    "\"live_payloads\":{},\"free_slots\":{},\"allocated_slots\":{},",
                    "\"persisted_epoch\":{},\"current_epoch\":{}"
                ),
                match d.backend {
                    DomainBackend::Arena => "arena",
                    DomainBackend::MutexSlab => "mutex-slab",
                },
                d.nvm_delta.flushes,
                d.nvm_delta.fences,
                d.domain.live_payloads,
                d.domain.free_slots,
                d.domain.allocated_slots,
                d.domain.persisted_epoch,
                d.domain.current_epoch,
            ),
        };
        format!(
            concat!(
                "{{\"name\":\"{}\",\"threads\":{},\"committed\":{},",
                "\"elapsed_s\":{:.4},\"ops_per_sec\":{:.0},",
                "\"commits\":{},\"aborts\":{},\"helps\":{},",
                "\"fast_commits\":{},\"ro_commits\":{},\"general_commits\":{},",
                "\"conflict_aborts\":{}{}}}"
            ),
            self.name,
            self.threads,
            self.committed,
            self.elapsed.as_secs_f64(),
            self.ops_per_sec,
            s.commits,
            s.aborts,
            s.helps,
            s.fast_commits,
            s.ro_commits,
            s.general_commits,
            s.conflict_aborts,
            durable,
        )
    }

    /// One CSV row (`name,threads,ops_per_sec,commits,aborts,helps`, where
    /// `name` is `workload/dist`).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{:.0},{},{},{}",
            self.name,
            self.threads,
            self.ops_per_sec,
            self.stats.commits,
            self.stats.aborts,
            self.stats.helps
        )
    }
}

/// Runs `body` on `cfg.threads` threads for `cfg.duration`, barrier-released,
/// and returns `(committed, wall elapsed)`.  `body(thread_idx, stop)` must
/// return its thread-local committed count.
fn run_threads<F>(threads: usize, duration: Duration, body: F) -> (u64, Duration)
where
    F: Fn(usize, &AtomicBool) -> u64 + Sync,
{
    let stop = AtomicBool::new(false);
    let committed = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let mut started = None;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let body = &body;
            let stop = &stop;
            let committed = &committed;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let local = body(t, stop);
                committed.fetch_add(local, Ordering::Relaxed);
            });
        }
        barrier.wait();
        started = Some(Instant::now());
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    // Measured after the scope joins, so the elapsed window matches the
    // committed counter exactly (workers drain within one transaction of
    // observing `stop`).
    let elapsed = started.expect("barrier released").elapsed();
    (committed.load(Ordering::Relaxed), elapsed)
}

/// Hot-word transfer contention: `accounts` words (default 8 — small enough
/// that the zipfian head lands most transfers on one or two words), each
/// transaction moving one unit between two sampled accounts on the general
/// descriptor path, with one read-only full audit every eighth transaction.
///
/// This is the adversarial workload for the commit pipeline: install
/// conflicts, helping storms, and validation failures all concentrate on the
/// hottest word.  The total balance is asserted invariant at the end.
pub fn run_hot_transfer(cfg: &ThroughputConfig, accounts: u64) -> ThroughputResult {
    const INITIAL: u64 = 1 << 20;
    assert!(accounts >= 2);
    let mgr = TxManager::with_max_threads(cfg.threads + 1);
    let words: Arc<Vec<CasWord>> = Arc::new((0..accounts).map(|_| CasWord::new(INITIAL)).collect());
    let sampler = cfg.dist.sampler(accounts);

    let (committed, elapsed) = run_threads(cfg.threads, cfg.duration, |t, stop| {
        let mut h = mgr.register();
        let mut rng = FastRng::new(0xACC0 + t as u64);
        let sampler = sampler.clone();
        let mut local = 0u64;
        let mut i = 0u64;
        while !stop.load(Ordering::Relaxed) {
            i += 1;
            if i.is_multiple_of(8) {
                // Read-only audit across every account: validates the whole
                // read set under fire.
                let total: TxResult<u64> = h.run(|tx| {
                    let mut sum = 0;
                    for w in words.iter() {
                        let (v, c) = tx.nbtc_load_counted(w);
                        tx.add_read_with_counter(w, v, c);
                        sum += v;
                    }
                    Ok(sum)
                });
                if let Ok(sum) = total {
                    assert_eq!(sum, accounts * INITIAL, "audit saw a torn state");
                    local += 1;
                }
                continue;
            }
            let from = sampler.sample(&mut rng) as usize;
            let mut to = sampler.sample(&mut rng) as usize;
            if to == from {
                to = (to + 1) % accounts as usize;
            }
            let res: TxResult<()> = h.run(|tx| {
                let a = tx.nbtc_load(&words[from]);
                let b = tx.nbtc_load(&words[to]);
                if a == 0 {
                    return Err(tx.abort(AbortReason::Explicit));
                }
                if !tx.nbtc_cas(&words[from], a, a - 1, true, true) {
                    return Err(tx.abort(AbortReason::Conflict));
                }
                if !tx.nbtc_cas(&words[to], b, b + 1, true, true) {
                    return Err(tx.abort(AbortReason::Conflict));
                }
                Ok(())
            });
            if res.is_ok() {
                local += 1;
            }
        }
        local
    });

    let total: u64 = words.iter().map(|w| w.try_load_value().unwrap()).sum();
    assert_eq!(total, accounts * INITIAL, "transfers must conserve balance");
    ThroughputResult::new(
        format!("transfer/{}", cfg.dist.label()),
        cfg.threads,
        committed,
        elapsed,
        mgr.stats_snapshot(),
    )
}

/// Map mix over a hash table: single-operation transactions with a
/// `get:insert:remove` ratio, keys drawn from the configured distribution.
/// Zipfian picks concentrate updates on a handful of hot buckets, exercising
/// the single-CAS path under contention; gets stress the read-only path.
pub fn run_map_mix(
    cfg: &ThroughputConfig,
    key_space: u64,
    ratio: (u32, u32, u32),
) -> ThroughputResult {
    let mgr = TxManager::with_max_threads(cfg.threads + 1);
    let buckets = (key_space as usize / 4).next_power_of_two().max(64);
    let map: Arc<MichaelHashMap<u64>> = Arc::new(MichaelHashMap::with_buckets(buckets));
    // Preload half the key space.
    {
        let mut h = mgr.register();
        let mut cx = h.nontx();
        for k in (0..key_space).step_by(2) {
            map.insert(&mut cx, k, k);
        }
    }
    let sampler = cfg.dist.sampler(key_space);
    let (g, i, r) = ratio;
    let total_ratio = (g + i + r) as u64;

    let (committed, elapsed) = run_threads(cfg.threads, cfg.duration, |t, stop| {
        let mut h = mgr.register();
        let mut rng = FastRng::new(0x4A9 + t as u64);
        let sampler = sampler.clone();
        let mut local = 0u64;
        while !stop.load(Ordering::Relaxed) {
            let k = sampler.sample(&mut rng);
            let dice = rng.next_below(total_ratio);
            let res: TxResult<()> = h.run(|tx| {
                if dice < g as u64 {
                    map.get(tx, k);
                } else if dice < (g + i) as u64 {
                    map.insert(tx, k, k);
                } else {
                    map.remove(tx, k);
                }
                Ok(())
            });
            if res.is_ok() {
                local += 1;
            }
        }
        local
    });

    ThroughputResult::new(
        format!("map{}:{}:{}/{}", g, i, r, cfg.dist.label()),
        cfg.threads,
        committed,
        elapsed,
        mgr.stats_snapshot(),
    )
}

// ---------------------------------------------------------------------------
// Durable (txMontage) workloads
// ---------------------------------------------------------------------------

/// Epoch-advancer period for the durable throughput series: short enough
/// that every run crosses many durability horizons (so the write-back path
/// is continuously exercised), long enough that the advancer thread is not
/// the workload.
const DURABLE_ADVANCER_PERIOD: Duration = Duration::from_micros(200);

fn backend_suffix(backend: DomainBackend) -> &'static str {
    match backend {
        DomainBackend::Arena => "",
        DomainBackend::MutexSlab => "-mutex",
    }
}

/// Runs `body` against a fresh durable hash map with a live [`EpochAdvancer`]
/// and packages the result with the persistence-layer statistics delta.
fn run_durable<F, V>(
    name: String,
    cfg: &ThroughputConfig,
    backend: DomainBackend,
    buckets: usize,
    preload: F,
    body: impl Fn(&mut medley::ThreadHandle, &DurableHashMap, usize, &AtomicBool) -> u64 + Sync,
    verify: V,
) -> ThroughputResult
where
    F: FnOnce(&mut medley::ThreadHandle, &DurableHashMap),
    V: FnOnce(&mut medley::ThreadHandle, &DurableHashMap),
{
    let mgr = TxManager::with_max_threads(cfg.threads + 1);
    // Count-only NVM model: the throughput series isolates the *runtime's*
    // persistence bookkeeping (payload alloc/retire, dirty tracking, the
    // per-epoch write-back pass) under contention.  Charging the simulated
    // Optane latency here would burn worker CPU on `spin_wait_ns` in both
    // backends alike and bury the bookkeeping signal; the flush/fence
    // *volume* is still recorded in the result, and the latency-charged
    // comparison lives in the fig10 latency benchmark.
    let domain = PersistenceDomain::with_backend(Arc::clone(&mgr), NvmCostModel::ZERO, backend);
    let map = Arc::new(DurableHashMap::hash_map(buckets, Arc::clone(&domain)));
    {
        let mut h = mgr.register();
        preload(&mut h, &map);
    }
    let nvm_before = domain.nvm().stats().snapshot_counts();
    let advancer = EpochAdvancer::spawn(Arc::clone(&domain), DURABLE_ADVANCER_PERIOD);
    let (committed, elapsed) = run_threads(cfg.threads, cfg.duration, |t, stop| {
        let mut h = mgr.register();
        body(&mut h, &map, t, stop)
    });
    drop(advancer);
    let nvm_delta = domain
        .nvm()
        .stats()
        .snapshot_counts()
        .delta_since(nvm_before);
    {
        let mut h = mgr.register();
        verify(&mut h, &map);
    }
    let durable = DurableSeriesStats {
        backend,
        nvm_delta,
        domain: domain.stats(),
    };
    ThroughputResult::new(name, cfg.threads, committed, elapsed, mgr.stats_snapshot())
        .with_durable(durable)
}

/// Durable map mix: the [`run_map_mix`] workload on a `txmontage::Durable`
/// hash map with a live epoch advancer — every update allocates or retires
/// payload records, so the alloc/retire fast path of the persistence domain
/// is on the critical path of every committed transaction.  The `backend`
/// selects the store under test ([`DomainBackend::MutexSlab`] is the A/B
/// baseline whose global lock serializes all payload traffic).
pub fn run_durable_map_mix(
    cfg: &ThroughputConfig,
    key_space: u64,
    ratio: (u32, u32, u32),
    backend: DomainBackend,
) -> ThroughputResult {
    let buckets = (key_space as usize / 4).next_power_of_two().max(64);
    let sampler = cfg.dist.sampler(key_space);
    let (g, i, r) = ratio;
    let total_ratio = (g + i + r) as u64;
    run_durable(
        format!(
            "durable-map{}:{}:{}{}/{}",
            g,
            i,
            r,
            backend_suffix(backend),
            cfg.dist.label()
        ),
        cfg,
        backend,
        buckets,
        |h, map| {
            let mut cx = h.nontx();
            for k in (0..key_space).step_by(2) {
                map.insert(&mut cx, k, k);
            }
        },
        move |h, map, t, stop| {
            let mut rng = FastRng::new(0xD04A9 + t as u64);
            let sampler = sampler.clone();
            let mut local = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let k = sampler.sample(&mut rng);
                let dice = rng.next_below(total_ratio);
                let res: TxResult<()> = h.run(|tx| {
                    if dice < g as u64 {
                        map.get(tx, k);
                    } else if dice < (g + i) as u64 {
                        map.insert(tx, k, k);
                    } else {
                        map.remove(tx, k);
                    }
                    Ok(())
                });
                if res.is_ok() {
                    local += 1;
                }
            }
            local
        },
        |_, _| {},
    )
}

/// Durable transfer: two-key balance transfers over a durable map (each
/// transaction reads both accounts and `put`s both back, retiring the two
/// replaced payloads), with a read-only audit of every account each eighth
/// transaction.  The zipfian head concentrates the payload churn — and the
/// install conflicts — on a couple of hot keys.  Conservation of the total
/// balance is asserted at the end.
pub fn run_durable_transfer(
    cfg: &ThroughputConfig,
    accounts: u64,
    backend: DomainBackend,
) -> ThroughputResult {
    const INITIAL: u64 = 1 << 20;
    assert!(accounts >= 2);
    let sampler = cfg.dist.sampler(accounts);
    run_durable(
        format!(
            "durable-transfer{}/{}",
            backend_suffix(backend),
            cfg.dist.label()
        ),
        cfg,
        backend,
        (accounts as usize).next_power_of_two().max(64),
        |h, map| {
            let mut cx = h.nontx();
            for k in 0..accounts {
                map.insert(&mut cx, k, INITIAL);
            }
        },
        move |h, map, t, stop| {
            let mut rng = FastRng::new(0xD0_ACC0 + t as u64);
            let sampler = sampler.clone();
            let mut local = 0u64;
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                if i.is_multiple_of(8) {
                    let total: TxResult<u64> = h.run(|tx| {
                        let mut sum = 0;
                        for k in 0..accounts {
                            sum += map.get(tx, k).expect("account present");
                        }
                        Ok(sum)
                    });
                    if let Ok(sum) = total {
                        assert_eq!(sum, accounts * INITIAL, "audit saw a torn state");
                        local += 1;
                    }
                    continue;
                }
                let from = sampler.sample(&mut rng);
                let mut to = sampler.sample(&mut rng);
                if to == from {
                    to = (to + 1) % accounts;
                }
                let res: TxResult<()> = h.run(|tx| {
                    let a = map.get(tx, from).expect("account present");
                    let b = map.get(tx, to).expect("account present");
                    if a == 0 {
                        return Err(tx.abort(AbortReason::Explicit));
                    }
                    map.put(tx, from, a - 1);
                    map.put(tx, to, b + 1);
                    Ok(())
                });
                if res.is_ok() {
                    local += 1;
                }
            }
            local
        },
        move |h, map| {
            // Conservation in the live map...
            let mut cx = h.nontx();
            let live: u64 = (0..accounts)
                .map(|k| map.get(&mut cx, k).expect("account present"))
                .sum();
            assert_eq!(live, accounts * INITIAL, "transfers must conserve balance");
            // ...and in the recovered cut: every durability horizon falls
            // between whole (epoch-validated) transactions, so the recovered
            // state is a prefix of the transfer history and conserves the
            // total too.
            map.sync();
            let rec = map.recover();
            let recovered: u64 = rec.values().sum();
            assert_eq!(rec.len(), accounts as usize, "recovery lost an account");
            assert_eq!(
                recovered,
                accounts * INITIAL,
                "recovered cut must conserve balance"
            );
        },
    )
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Writes the JSON report for a throughput run via the shared
/// [`crate::report`] emitter (`BENCH_<target>.json`, or the path named by
/// the `BENCH_JSON` environment variable).
pub fn write_report(target: &str, results: &[ThroughputResult]) {
    let entries: Vec<String> = results.iter().map(ThroughputResult::to_json).collect();
    crate::report::write_json(target, &entries);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_samples_stay_in_bounds() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = FastRng::new(7);
        for _ in 0..20_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn zipf_head_matches_theory() {
        // The empirical frequency of rank 0 must track 1/zeta(n, theta).
        let n = 1 << 10;
        let z = Zipf::new(n, 0.99);
        let expected = z.rank_probability(0);
        let mut rng = FastRng::new(42);
        let samples = 200_000;
        let hits = (0..samples).filter(|_| z.sample(&mut rng) == 0).count();
        let observed = hits as f64 / samples as f64;
        assert!(
            (observed - expected).abs() < 0.25 * expected,
            "rank-0 frequency {observed:.4} vs expected {expected:.4}"
        );
    }

    #[test]
    fn uniform_sampler_is_flat() {
        let s = KeyDist::Uniform.sampler(8);
        let mut rng = FastRng::new(3);
        let mut counts = [0u64; 8];
        for _ in 0..80_000 {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "uniform bucket count {c}");
        }
    }

    #[test]
    fn hot_transfer_smoke() {
        let cfg = ThroughputConfig {
            threads: 2,
            duration: Duration::from_millis(40),
            dist: KeyDist::Zipfian(0.99),
        };
        let r = run_hot_transfer(&cfg, 8);
        assert!(r.committed > 0, "contended transfers must commit: {r:?}");
        assert!(r.stats.commits >= r.committed);
    }

    #[test]
    fn map_mix_smoke() {
        let cfg = ThroughputConfig {
            threads: 2,
            duration: Duration::from_millis(40),
            dist: KeyDist::Uniform,
        };
        let r = run_map_mix(&cfg, 1 << 10, (2, 1, 1));
        assert!(r.committed > 0);
        assert!(r.stats.fast_commits + r.stats.ro_commits > 0);
    }

    #[test]
    fn durable_map_mix_smoke_on_both_backends() {
        let cfg = ThroughputConfig {
            threads: 2,
            duration: Duration::from_millis(40),
            dist: KeyDist::Zipfian(0.99),
        };
        for backend in [DomainBackend::Arena, DomainBackend::MutexSlab] {
            let r = run_durable_map_mix(&cfg, 1 << 10, (2, 1, 1), backend);
            assert!(r.committed > 0, "durable mix must commit: {r:?}");
            let d = r.durable.expect("durable series carries domain stats");
            assert_eq!(d.backend, backend);
            assert!(
                d.nvm_delta.flushes > 0,
                "a live advancer must write payloads back: {d:?}"
            );
            assert!(r.to_json().contains("\"nvm_flushes\""));
        }
    }

    #[test]
    fn durable_transfer_smoke_conserves_balance() {
        let cfg = ThroughputConfig {
            threads: 2,
            duration: Duration::from_millis(40),
            dist: KeyDist::Zipfian(0.99),
        };
        // The conservation asserts (live + recovered cut) run inside.
        let r = run_durable_transfer(&cfg, 8, DomainBackend::Arena);
        assert!(r.committed > 0, "contended durable transfers must commit");
        assert!(r.durable.is_some());
    }
}
