//! Fig. 7: throughput of transactional hash tables (Medley, txMontage,
//! OneFile, POneFile) for get:insert:remove ratios 0:1:1, 2:1:1, 18:1:1.

use bench::systems::{OneFileMicro, TxMontageMicro};
use bench::{emit, CommonArgs, MedleyMicro};
use medley::TxManager;
use nbds::MichaelHashMap;
use pmem::{DomainBackend, NvmCostModel, SimNvm};
use std::sync::Arc;

fn main() {
    let args = CommonArgs::parse();
    let buckets = (args.keys as usize).next_power_of_two();
    println!("figure,system,ratio,threads,throughput_txn_per_s");
    for ratio in [(0, 1, 1), (2, 1, 1), (18, 1, 1)] {
        let cfg = args.micro_config(ratio);
        for &threads in &args.threads {
            // Medley (transient hash table).
            {
                let mgr = TxManager::new();
                let map = Arc::new(MichaelHashMap::<u64>::with_buckets(buckets));
                let sys = MedleyMicro::new("Medley", mgr, map);
                emit(
                    "fig7",
                    "Medley",
                    ratio,
                    threads,
                    bench::run_micro(&sys, &cfg, threads),
                );
            }
            // txMontage (persistent hash table, periodic persistence).
            {
                let sys = TxMontageMicro::hash_map(
                    buckets,
                    DomainBackend::Arena,
                    std::time::Duration::from_millis(10),
                );
                emit(
                    "fig7",
                    "txMontage",
                    ratio,
                    threads,
                    bench::run_micro(&sys, &cfg, threads),
                );
            }
            // OneFile (transient STM).
            {
                let sys = OneFileMicro::transient(buckets);
                emit(
                    "fig7",
                    "OneFile",
                    ratio,
                    threads,
                    bench::run_micro(&sys, &cfg, threads),
                );
            }
            // POneFile (eager persistence).
            {
                let nvm = Arc::new(SimNvm::new(NvmCostModel::OPTANE_LIKE));
                let sys = OneFileMicro::persistent(buckets, nvm);
                emit(
                    "fig7",
                    "POneFile",
                    ratio,
                    threads,
                    bench::run_micro(&sys, &cfg, threads),
                );
            }
        }
    }
}
