//! Service-level load generator for the `kvstore` layer: N closed-loop
//! client connections over loopback TCP, zipfian key picks, mixed
//! single-key / multi-key traffic, per-request latency histograms.
//!
//! By default it is self-hosting: it starts an in-process server, runs one
//! series against the **transient** backend and one against the **durable**
//! (txMontage, live epoch advancer) backend, and writes both to
//! `BENCH_server.json` via the shared `bench::report` emitter — throughput,
//! client-observed abort counts, log-bucketed p50/p90/p99 latencies, and
//! the server's own `STATS` snapshot (commit-path mix, conflict aborts,
//! domain state).  `--connect ADDR` instead drives an externally started
//! `kvserver`.
//!
//! `--grow` switches to the elasticity comparison: load `--keys` keys into a
//! hash server pre-sized for the final count and into an elastic server
//! booted at a few hundred buckets per shard, recording windowed throughput
//! during the load (the elastic server grows its directories on-line under
//! that churn), then run the standard mixed phase on both and report the
//! elastic/presized steady-state ratio plus grow events and final bucket
//! counts from `STATS`.
//!
//! ```text
//! cargo run --release -p bench --bin kvbench -- \
//!     --connections 4 --seconds 2 --keys 4096 --theta 0.99 --workers 4
//! ```
//!
//! Traffic mix per draw (keys zipfian unless `--uniform`): 50% `GET`,
//! 20% `PUT`, 10% `CAS`, 10% `TRANSFER` (two picks, amount 1), 10% `MGET`
//! of 4 keys.  There are no `DEL`s so `TRANSFER` accounts stay populated;
//! failed transfers (`Insufficient`) are successful round trips and are
//! counted separately from aborts.

use bench::report::{write_json, LatencyHistogram};
use bench::workload::KeyDist;
use bench::CommonArgs;
use kvstore::{
    Client, Cmd, ErrCode, KvError, MetricsReply, OverloadConfig, Request, Response, Server,
    ServerConfig, StatsReply, StoreBackend, StoreConfig, TableKind, TelemetryConfig,
};
use medley::util::FastRng;
use medley::ContentionPolicy;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// Initial balance preloaded into every key.
const INITIAL: u64 = 1_000_000;

/// Open-loop mode: most requests one connection may have outstanding before
/// the generator counts a scheduled send as dropped instead of queuing it —
/// an open-loop generator must never let a slow server push back on its
/// clock, but its own memory must stay bounded too.
const OPEN_LOOP_PIPELINE: usize = 4096;

/// Per-connection tallies of one series.
#[derive(Default)]
struct ConnTally {
    ok: u64,
    retry_aborts: u64,
    app_errors: u64,
}

/// Client-observed latency split by operation type, parallel to the mixed
/// workload's shapes.  Paired against the server's `METRICS` histograms in
/// each BENCH row: the client side includes the wire and the pipeline, the
/// server side is pure service time, and their gap is the queueing the
/// event loop adds.
#[derive(Default)]
struct OpHists {
    get: LatencyHistogram,
    put: LatencyHistogram,
    cas: LatencyHistogram,
    transfer: LatencyHistogram,
    mget: LatencyHistogram,
}

impl OpHists {
    fn slots(&self) -> [(&'static str, &LatencyHistogram); 5] {
        [
            ("get", &self.get),
            ("put", &self.put),
            ("cas", &self.cas),
            ("transfer", &self.transfer),
            ("mget", &self.mget),
        ]
    }

    fn merge(&mut self, other: &OpHists) {
        self.get.merge(&other.get);
        self.put.merge(&other.put);
        self.cas.merge(&other.cas);
        self.transfer.merge(&other.transfer);
        self.mget.merge(&other.mget);
    }

    fn is_empty(&self) -> bool {
        self.slots().iter().all(|(_, h)| h.total() == 0)
    }

    /// `"name":{"ops":..,"p50_ns":..,"p90_ns":..,"p99_ns":..}` members for
    /// every op type that saw traffic.
    fn json_members(&self) -> String {
        self.slots()
            .iter()
            .filter(|(_, h)| h.total() > 0)
            .map(|(name, h)| hist_json_member(name, h))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// One `"name":{...}` histogram summary member.
fn hist_json_member(name: &str, h: &LatencyHistogram) -> String {
    let (p50, p90, p99) = h.percentiles_ns();
    format!(
        "\"{}\":{{\"ops\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
        name,
        h.total(),
        p50,
        p90,
        p99
    )
}

/// Exposition name of a wire opcode in the `server_ops` JSON object (the
/// same labels the Prometheus endpoint uses).
fn opcode_json_name(opcode: u8) -> String {
    match opcode {
        0x01 => "get".to_string(),
        0x02 => "put".to_string(),
        0x03 => "del".to_string(),
        0x04 => "cas".to_string(),
        0x05 => "contains".to_string(),
        0x06 => "get_b".to_string(),
        0x07 => "put_b".to_string(),
        0x08 => "del_b".to_string(),
        0x09 => "cas_b".to_string(),
        0x10 => "mget".to_string(),
        0x11 => "mset".to_string(),
        0x12 => "transfer".to_string(),
        0x13 => "batch".to_string(),
        0x16 => "mget_b".to_string(),
        0x17 => "mset_b".to_string(),
        0x18 => "scan".to_string(),
        other => format!("op_0x{other:02x}"),
    }
}

/// `,"server_ops":{...}` fragment from a `METRICS` reply (empty string when
/// the server reported no active ops, e.g. telemetry disabled).
fn server_ops_json(m: &MetricsReply) -> String {
    if m.ops.is_empty() {
        return String::new();
    }
    let members: Vec<String> = m
        .ops
        .iter()
        .map(|o| {
            let mut member = hist_json_member(&opcode_json_name(o.opcode), &o.hist);
            let aborts: u64 = o.aborts.iter().sum();
            member.truncate(member.len() - 1); // reopen the object
            member.push_str(&format!(
                ",\"retries\":{},\"aborts\":{}}}",
                o.retries, aborts
            ));
            member
        })
        .collect();
    format!(",\"server_ops\":{{{}}}", members.join(","))
}

struct SeriesResult {
    name: String,
    connections: usize,
    elapsed: Duration,
    ok: u64,
    retry_aborts: u64,
    app_errors: u64,
    hist: LatencyHistogram,
    /// Client-observed latency split by op type (empty for series whose op
    /// loop does not classify, e.g. the blob family).
    op_hists: OpHists,
    server: StatsReply,
    /// The server's `METRICS` reply sampled after the run (`None` when the
    /// server has telemetry disabled or reported nothing).
    server_metrics: Option<MetricsReply>,
    /// Extra JSON fields (`,"k":v` form) a specialized series tacks on.
    extra: String,
}

impl SeriesResult {
    fn to_json(&self) -> String {
        let (p50, p90, p99) = self.hist.percentiles_ns();
        let t = &self.server.tx;
        let ops_per_sec = self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9);
        let domain = match &self.server.domain {
            None => String::new(),
            Some(d) => format!(
                ",\"live_payloads\":{},\"persisted_epoch\":{},\"current_epoch\":{}",
                d.live_payloads, d.persisted_epoch, d.current_epoch
            ),
        };
        let tables = match &self.server.tables {
            None => String::new(),
            Some(t) => format!(
                ",\"grow_events\":{},\"total_buckets\":{}",
                t.grow_events,
                t.shards.iter().map(|sh| sh.buckets).sum::<u64>()
            ),
        };
        let events = match &self.server.events {
            None => String::new(),
            Some(e) => format!(
                ",\"epoll_waits\":{},\"events_dispatched\":{},\
                 \"spurious_wakeups\":{},\"writev_saved\":{}",
                e.epoll_waits, e.events_dispatched, e.spurious_wakeups, e.writev_saved
            ),
        };
        let client_ops = if self.op_hists.is_empty() {
            String::new()
        } else {
            format!(",\"client_ops\":{{{}}}", self.op_hists.json_members())
        };
        let server_ops = self
            .server_metrics
            .as_ref()
            .map_or_else(String::new, server_ops_json);
        format!(
            concat!(
                "{{\"name\":\"{}\",\"connections\":{},\"elapsed_s\":{:.4},",
                "\"ops\":{},\"ops_per_sec\":{:.0},",
                "\"retry_aborts\":{},\"app_errors\":{},",
                "\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{},",
                "\"server_commits\":{},\"server_aborts\":{},",
                "\"server_conflict_aborts\":{},\"server_fast_commits\":{},",
                "\"server_ro_commits\":{},\"server_general_commits\":{}{}{}{}{}{}{}}}"
            ),
            self.name,
            self.connections,
            self.elapsed.as_secs_f64(),
            self.ok,
            ops_per_sec,
            self.retry_aborts,
            self.app_errors,
            p50,
            p90,
            p99,
            self.hist.max_ns(),
            t.commits,
            t.aborts,
            t.conflict_aborts,
            t.fast_commits,
            t.ro_commits,
            t.general_commits,
            domain,
            tables,
            events,
            client_ops,
            server_ops,
            self.extra,
        )
    }

    fn csv_row(&self) -> String {
        let (p50, _, p99) = self.hist.percentiles_ns();
        format!(
            "{},{},{:.0},{},{},{},{}",
            self.name,
            self.connections,
            self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9),
            self.retry_aborts,
            self.server.tx.conflict_aborts,
            p50,
            p99
        )
    }
}

/// Preloads every key over the wire (chunked MSETs stay well inside the
/// descriptor write-set capacity).
fn preload(addr: std::net::SocketAddr, keys: u64) {
    let mut c = Client::connect(addr).expect("preload connect");
    let pairs: Vec<(u64, u64)> = (0..keys).map(|k| (k, INITIAL)).collect();
    for chunk in pairs.chunks(512) {
        c.mset(chunk).expect("preload mset");
    }
}

/// One client operation: sampled shape, executed, latency recorded (both
/// overall and into the op type's own histogram).
fn run_one_op(
    c: &mut Client,
    rng: &mut FastRng,
    sampler: &bench::workload::KeySampler,
    keys: u64,
    tally: &mut ConnTally,
    hist: &mut LatencyHistogram,
    op_hists: &mut OpHists,
) -> Result<(), KvError> {
    let k = sampler.sample(rng);
    let dice = rng.next_below(100);
    let start = Instant::now();
    let (outcome, op): (Result<(), KvError>, _) = if dice < 50 {
        (c.get(k).map(|_| ()), 0)
    } else if dice < 70 {
        (c.put(k, rng.next_u64() % INITIAL).map(|_| ()), 1)
    } else if dice < 80 {
        // CAS against the freshly read value: mostly succeeds, loses under
        // contention (server-side transactional retry).
        let r = match c.get(k) {
            Ok(Some(cur)) => c.cas(k, cur, cur ^ 1).map(|_| ()),
            Ok(None) => Ok(()),
            Err(e) => Err(e),
        };
        (r, 2)
    } else if dice < 90 {
        let mut to = sampler.sample(rng);
        if to == k {
            to = (to + 1) % keys;
        }
        (c.transfer(k, to, 1).map(|_| ()), 3)
    } else {
        let ks: Vec<u64> = (0..4).map(|_| sampler.sample(rng)).collect();
        (c.mget(&ks).map(|_| ()), 4)
    };
    let mut record = |latency: Duration| {
        hist.record(latency);
        match op {
            0 => op_hists.get.record(latency),
            1 => op_hists.put.record(latency),
            2 => op_hists.cas.record(latency),
            3 => op_hists.transfer.record(latency),
            _ => op_hists.mget.record(latency),
        }
    };
    match outcome {
        Ok(()) => {
            tally.ok += 1;
            record(start.elapsed());
            Ok(())
        }
        Err(KvError::Server(code)) => {
            // The server answered: the round trip completed, classify it.
            match code {
                kvstore::ErrCode::Retry | kvstore::ErrCode::Capacity => tally.retry_aborts += 1,
                _ => {
                    tally.app_errors += 1;
                    record(start.elapsed());
                }
            }
            Ok(())
        }
        Err(e) => Err(e),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_series(
    name: String,
    addr: std::net::SocketAddr,
    connections: usize,
    duration: Duration,
    keys: u64,
    dist: KeyDist,
    do_preload: bool,
) -> SeriesResult {
    if do_preload {
        preload(addr, keys);
    }

    let barrier = Barrier::new(connections + 1);
    let ok = AtomicU64::new(0);
    let retry_aborts = AtomicU64::new(0);
    let app_errors = AtomicU64::new(0);
    let hist = Mutex::new(LatencyHistogram::new());
    let op_hists = Mutex::new(OpHists::default());
    let started = Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        for t in 0..connections {
            let barrier = &barrier;
            let ok = &ok;
            let retry_aborts = &retry_aborts;
            let app_errors = &app_errors;
            let hist = &hist;
            let op_hists = &op_hists;
            let sampler = dist.sampler(keys);
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("bench connect");
                let mut rng = FastRng::new(0xBE9C4 + t as u64);
                let mut tally = ConnTally::default();
                let mut local_hist = LatencyHistogram::new();
                let mut local_ops = OpHists::default();
                barrier.wait();
                let deadline = Instant::now() + duration;
                while Instant::now() < deadline {
                    if run_one_op(
                        &mut c,
                        &mut rng,
                        &sampler,
                        keys,
                        &mut tally,
                        &mut local_hist,
                        &mut local_ops,
                    )
                    .is_err()
                    {
                        break;
                    }
                }
                ok.fetch_add(tally.ok, Ordering::Relaxed);
                retry_aborts.fetch_add(tally.retry_aborts, Ordering::Relaxed);
                app_errors.fetch_add(tally.app_errors, Ordering::Relaxed);
                hist.lock().unwrap().merge(&local_hist);
                op_hists.lock().unwrap().merge(&local_ops);
            });
        }
        barrier.wait();
        *started.lock().unwrap() = Some(Instant::now());
    });
    let elapsed = started.lock().unwrap().expect("run started").elapsed();

    // Durable servers: take a durability cut, then sample the statistics
    // and (when the server has telemetry enabled) the metrics exposition.
    let (server, server_metrics) = {
        let mut c = Client::connect(addr).expect("stats connect");
        let _ = c.sync();
        let stats = c.stats().expect("stats");
        let metrics = c.metrics().ok().filter(|m| !m.ops.is_empty());
        (stats, metrics)
    };

    SeriesResult {
        name,
        connections,
        elapsed,
        ok: ok.load(Ordering::Relaxed),
        retry_aborts: retry_aborts.load(Ordering::Relaxed),
        app_errors: app_errors.load(Ordering::Relaxed),
        hist: hist.into_inner().unwrap(),
        op_hists: op_hists.into_inner().unwrap(),
        server,
        server_metrics,
        extra: String::new(),
    }
}

/// Preloads every key with a `vsize`-byte blob value.  Chunks stay well
/// under `MAX_FRAME` (64 pairs of ≤4 KiB values ≈ 260 KiB per `MSETB`).
fn preload_blob(addr: std::net::SocketAddr, keys: u64, payload: &[u8]) {
    let mut c = Client::connect(addr).expect("preload connect");
    let ks: Vec<u64> = (0..keys).collect();
    for chunk in ks.chunks(64) {
        let pairs: Vec<(u64, &[u8])> = chunk.iter().map(|&k| (k, payload)).collect();
        c.mset_b(&pairs).expect("preload mset_b");
    }
}

/// One blob-family client operation: 50% `GETB`, 40% `PUTB` of a
/// fixed-size payload, 10% `MGETB` of 4 keys.
fn run_blob_op(
    c: &mut Client,
    rng: &mut FastRng,
    sampler: &bench::workload::KeySampler,
    payload: &[u8],
    tally: &mut ConnTally,
    hist: &mut LatencyHistogram,
) -> Result<(), KvError> {
    let k = sampler.sample(rng);
    let dice = rng.next_below(100);
    let start = Instant::now();
    let outcome: Result<(), KvError> = if dice < 50 {
        c.get_b(k).map(|_| ())
    } else if dice < 90 {
        c.put_b(k, payload).map(|_| ())
    } else {
        let ks: Vec<u64> = (0..4).map(|_| sampler.sample(rng)).collect();
        c.mget_b(&ks).map(|_| ())
    };
    match outcome {
        Ok(()) => {
            tally.ok += 1;
            hist.record(start.elapsed());
            Ok(())
        }
        Err(KvError::Server(code)) => {
            match code {
                kvstore::ErrCode::Retry | kvstore::ErrCode::Capacity => tally.retry_aborts += 1,
                _ => {
                    tally.app_errors += 1;
                    hist.record(start.elapsed());
                }
            }
            Ok(())
        }
        Err(e) => Err(e),
    }
}

/// Closed-loop series over the blob op family with `vsize`-byte values —
/// the variable-length path end to end: length-prefixed wire values,
/// `Value::Bytes` through the transactional maps, and (durable backend)
/// size-classed arena slots with overflow chains for 4 KiB payloads.
fn run_blob_series(
    name: String,
    addr: std::net::SocketAddr,
    connections: usize,
    duration: Duration,
    keys: u64,
    dist: KeyDist,
    vsize: usize,
) -> SeriesResult {
    let payload: Vec<u8> = (0..vsize).map(|i| (i * 131) as u8).collect();
    preload_blob(addr, keys, &payload);

    let barrier = Barrier::new(connections + 1);
    let ok = AtomicU64::new(0);
    let retry_aborts = AtomicU64::new(0);
    let app_errors = AtomicU64::new(0);
    let hist = Mutex::new(LatencyHistogram::new());
    let started = Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        for t in 0..connections {
            let barrier = &barrier;
            let ok = &ok;
            let retry_aborts = &retry_aborts;
            let app_errors = &app_errors;
            let hist = &hist;
            let payload = &payload;
            let sampler = dist.sampler(keys);
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("bench connect");
                let mut rng = FastRng::new(0xB10B + t as u64);
                let mut tally = ConnTally::default();
                let mut local_hist = LatencyHistogram::new();
                barrier.wait();
                let deadline = Instant::now() + duration;
                while Instant::now() < deadline {
                    if run_blob_op(
                        &mut c,
                        &mut rng,
                        &sampler,
                        payload,
                        &mut tally,
                        &mut local_hist,
                    )
                    .is_err()
                    {
                        break;
                    }
                }
                ok.fetch_add(tally.ok, Ordering::Relaxed);
                retry_aborts.fetch_add(tally.retry_aborts, Ordering::Relaxed);
                app_errors.fetch_add(tally.app_errors, Ordering::Relaxed);
                hist.lock().unwrap().merge(&local_hist);
            });
        }
        barrier.wait();
        *started.lock().unwrap() = Some(Instant::now());
    });
    let elapsed = started.lock().unwrap().expect("run started").elapsed();

    let (server, server_metrics) = {
        let mut c = Client::connect(addr).expect("stats connect");
        let _ = c.sync();
        let stats = c.stats().expect("stats");
        let metrics = c.metrics().ok().filter(|m| !m.ops.is_empty());
        (stats, metrics)
    };

    SeriesResult {
        name,
        connections,
        elapsed,
        ok: ok.load(Ordering::Relaxed),
        retry_aborts: retry_aborts.load(Ordering::Relaxed),
        app_errors: app_errors.load(Ordering::Relaxed),
        hist: hist.into_inner().unwrap(),
        op_hists: OpHists::default(),
        server,
        server_metrics,
        extra: format!(",\"value_bytes\":{vsize}"),
    }
}

/// Pipelining depth per connection in the `--fanout` mode.
const FANOUT_DEPTH: usize = 4;

/// Connection-fanout series: `connections` pipelined clients multiplexed
/// over at most 8 driver threads, each connection kept `depth` requests
/// deep.  This is the shape the epoll server is built for — far more
/// sockets than workers, every socket busy — and the closed-loop latency
/// histogram includes the pipeline queueing the readiness loop must not
/// amplify.
fn run_fanout_series(
    name: String,
    addr: std::net::SocketAddr,
    connections: usize,
    depth: usize,
    duration: Duration,
    keys: u64,
    dist: KeyDist,
) -> SeriesResult {
    preload(addr, keys);
    let drivers = connections.min(8);

    let barrier = Barrier::new(drivers + 1);
    let ok = AtomicU64::new(0);
    let retry_aborts = AtomicU64::new(0);
    let app_errors = AtomicU64::new(0);
    let hist = Mutex::new(LatencyHistogram::new());
    let started = Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        for d in 0..drivers {
            let barrier = &barrier;
            let ok = &ok;
            let retry_aborts = &retry_aborts;
            let app_errors = &app_errors;
            let hist = &hist;
            let sampler = dist.sampler(keys);
            s.spawn(move || {
                let lo = connections * d / drivers;
                let hi = connections * (d + 1) / drivers;
                let mut conns: Vec<(Client, VecDeque<Instant>)> = (lo..hi)
                    .map(|_| {
                        (
                            Client::connect(addr).expect("fanout connect"),
                            VecDeque::new(),
                        )
                    })
                    .collect();
                let mut rng = FastRng::new(0xFA9 + d as u64);
                let mut tally = OpenLoopTally::default();
                let mut local_hist = LatencyHistogram::new();
                barrier.wait();
                let deadline = Instant::now() + duration;
                'run: while Instant::now() < deadline {
                    for (c, pending) in conns.iter_mut() {
                        // Top the pipeline up, then take exactly one
                        // response: the pipeline oscillates between
                        // DEPTH-1 and DEPTH deep, and the blocking recv
                        // paces the driver without ever letting any
                        // connection drain dry.
                        while c.in_flight() < depth {
                            let cmd = sample_cmd(&mut rng, &sampler, keys);
                            if c.send(&Request::Cmd(cmd)).is_err() {
                                break 'run;
                            }
                            pending.push_back(Instant::now());
                        }
                        match c.recv() {
                            Ok(resp) => {
                                let at = pending.pop_front().expect("pending send time");
                                tally.classify(&resp, at, &mut local_hist);
                            }
                            Err(_) => break 'run,
                        }
                    }
                }
                // Drain what is still in flight so the tallies see it.
                for (c, pending) in conns.iter_mut() {
                    while c.in_flight() > 0 {
                        match c.recv() {
                            Ok(resp) => {
                                let at = pending.pop_front().expect("pending send time");
                                tally.classify(&resp, at, &mut local_hist);
                            }
                            Err(_) => break,
                        }
                    }
                }
                ok.fetch_add(tally.ok, Ordering::Relaxed);
                retry_aborts.fetch_add(tally.shed + tally.retry_aborts, Ordering::Relaxed);
                app_errors.fetch_add(tally.app_errors, Ordering::Relaxed);
                hist.lock().unwrap().merge(&local_hist);
            });
        }
        barrier.wait();
        *started.lock().unwrap() = Some(Instant::now());
    });
    let elapsed = started.lock().unwrap().expect("run started").elapsed();

    let (server, server_metrics) = {
        let mut c = Client::connect(addr).expect("stats connect");
        let stats = c.stats().expect("stats");
        let metrics = c.metrics().ok().filter(|m| !m.ops.is_empty());
        (stats, metrics)
    };

    SeriesResult {
        name,
        connections,
        elapsed,
        ok: ok.load(Ordering::Relaxed),
        retry_aborts: retry_aborts.load(Ordering::Relaxed),
        app_errors: app_errors.load(Ordering::Relaxed),
        hist: hist.into_inner().unwrap(),
        op_hists: OpHists::default(),
        server,
        server_metrics,
        extra: format!(",\"pipeline_depth\":{depth}"),
    }
}

/// The `--fanout` mode: the same pipelined mixed workload at the same
/// **total concurrency** — `FANOUT_DEPTH × fan` requests in flight —
/// offered over 8 connections (deep pipelines) and over `fan` connections
/// (depth [`FANOUT_DEPTH`] each) against fresh servers, plus a summary row
/// with the p99 ratio CI asserts on.  Holding the total constant is what
/// makes the ratio meaningful: queueing delay is fixed by Little's law at
/// either socket count, so any p99 gap is pure per-socket multiplexing
/// cost — the thing the readiness loop exists to flatten.
fn run_fanout_mode(
    workers: usize,
    duration: Duration,
    keys: u64,
    dist: KeyDist,
    tables: TableKind,
    fan: usize,
) -> Vec<String> {
    let total = FANOUT_DEPTH * fan;
    let mut entries = Vec::new();
    let mut p99s = Vec::new();
    let mut rates = Vec::new();
    for (conns, depth) in [(8usize, total / 8), (fan, FANOUT_DEPTH)] {
        let cfg = ServerConfig {
            workers,
            store: StoreConfig {
                tables: tables.clone(),
                ..Default::default()
            },
            ..Default::default()
        };
        let server = Server::start(&cfg).expect("start fanout server");
        let r = run_fanout_series(
            format!("server-fanout/c{conns}/{}", dist.label()),
            server.local_addr(),
            conns,
            depth,
            duration,
            keys,
            dist,
        );
        println!("{}", r.csv_row());
        p99s.push(r.hist.percentiles_ns().2);
        rates.push(r.ok as f64 / r.elapsed.as_secs_f64().max(1e-9));
        entries.push(r.to_json());
        server.shutdown();
    }
    let ratio = p99s[1] as f64 / (p99s[0] as f64).max(1.0);
    println!(
        "fanout-summary: c{fan} p99 at {:.2}x of c8 at equal load ({} vs {} ns), {:.0} vs {:.0} ops/s",
        ratio, p99s[1], p99s[0], rates[1], rates[0]
    );
    entries.push(format!(
        concat!(
            "{{\"name\":\"fanout-summary/{}\",\"mode\":\"fanout\",",
            "\"total_in_flight\":{},\"base_connections\":8,\"fan_connections\":{},",
            "\"base_p99_ns\":{},\"fan_p99_ns\":{},\"p99_ratio\":{:.4},",
            "\"base_ops_per_sec\":{:.0},\"fan_ops_per_sec\":{:.0}}}"
        ),
        dist.label(),
        total,
        fan,
        p99s[0],
        p99s[1],
        ratio,
        rates[0],
        rates[1],
    ));
    entries
}

/// Aggregated result of one open-loop (offered-load) series.
struct OverloadResult {
    name: String,
    connections: usize,
    elapsed: Duration,
    offered_per_sec: f64,
    capacity_per_sec: f64,
    sent: u64,
    ok: u64,
    shed: u64,
    retry_aborts: u64,
    app_errors: u64,
    dropped_sends: u64,
    max_queue_depth: usize,
    hist: LatencyHistogram,
    server: StatsReply,
}

impl OverloadResult {
    fn to_json(&self) -> String {
        let (p50, _, p99) = self.hist.percentiles_ns();
        let p999 = self.hist.p999_ns();
        let secs = self.elapsed.as_secs_f64().max(1e-9);
        let goodput = self.ok as f64 / secs;
        let answered = self.ok + self.shed + self.retry_aborts + self.app_errors;
        let shed_rate = self.shed as f64 / (answered.max(1)) as f64;
        let t = &self.server.tx;
        let load = self.server.load.unwrap_or_default();
        format!(
            concat!(
                "{{\"name\":\"{}\",\"mode\":\"overload\",\"connections\":{},",
                "\"elapsed_s\":{:.4},\"offered_per_sec\":{:.0},",
                "\"closed_loop_capacity_per_sec\":{:.0},",
                "\"sent\":{},\"ok\":{},\"goodput_per_sec\":{:.0},",
                "\"shed\":{},\"shed_rate\":{:.4},\"retry_aborts\":{},",
                "\"app_errors\":{},\"dropped_sends\":{},\"max_queue_depth\":{},",
                "\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{},",
                "\"server_shed\":{},\"server_peak_inflight_bytes\":{},",
                "\"server_accept_retries\":{},\"server_cm_waits\":{},",
                "\"server_cm_priority_skips\":{},\"server_cm_escalations\":{},",
                "\"server_commits\":{},\"server_conflict_aborts\":{}}}"
            ),
            self.name,
            self.connections,
            secs,
            self.offered_per_sec,
            self.capacity_per_sec,
            self.sent,
            self.ok,
            goodput,
            self.shed,
            shed_rate,
            self.retry_aborts,
            self.app_errors,
            self.dropped_sends,
            self.max_queue_depth,
            p50,
            p99,
            p999,
            self.hist.max_ns(),
            load.shed_requests,
            load.peak_inflight_bytes,
            load.accept_retries,
            t.cm_waits,
            t.cm_priority_skips,
            t.cm_escalations,
            t.commits,
            t.conflict_aborts,
        )
    }

    fn csv_row(&self) -> String {
        let p999 = self.hist.p999_ns();
        let secs = self.elapsed.as_secs_f64().max(1e-9);
        format!(
            "{},{},{:.0},{},{},{},{}",
            self.name,
            self.connections,
            self.ok as f64 / secs,
            self.shed,
            self.server.tx.conflict_aborts,
            self.hist.percentiles_ns().0,
            p999
        )
    }
}

/// Samples one request with the same mix as the closed-loop generator —
/// except CAS is blind (an open-loop tick cannot afford a read round trip
/// first); it still exercises the transactional path either way.
fn sample_cmd(rng: &mut FastRng, sampler: &bench::workload::KeySampler, keys: u64) -> Cmd {
    let k = sampler.sample(rng);
    let dice = rng.next_below(100);
    if dice < 50 {
        Cmd::Get(k)
    } else if dice < 70 {
        Cmd::Put(k, rng.next_u64() % INITIAL)
    } else if dice < 80 {
        Cmd::Cas {
            key: k,
            expected: INITIAL,
            desired: INITIAL,
        }
    } else if dice < 90 {
        let mut to = sampler.sample(rng);
        if to == k {
            to = (to + 1) % keys;
        }
        Cmd::Transfer {
            from: k,
            to,
            amount: 1,
        }
    } else {
        Cmd::MGet((0..4).map(|_| sampler.sample(rng)).collect())
    }
}

/// Per-connection tallies of one open-loop series.
#[derive(Default)]
struct OpenLoopTally {
    sent: u64,
    ok: u64,
    shed: u64,
    retry_aborts: u64,
    app_errors: u64,
    dropped: u64,
    max_depth: usize,
}

impl OpenLoopTally {
    fn classify(&mut self, resp: &Response, sent_at: Instant, hist: &mut LatencyHistogram) {
        match resp {
            Response::Ok(_) => {
                self.ok += 1;
                hist.record(sent_at.elapsed());
            }
            Response::Err(ErrCode::Overload) => self.shed += 1,
            Response::Err(ErrCode::Retry) | Response::Err(ErrCode::Capacity) => {
                self.retry_aborts += 1
            }
            Response::Err(_) => self.app_errors += 1,
            _ => self.app_errors += 1,
        }
    }
}

/// Open-loop (offered-load) series: each connection sends on a fixed clock
/// regardless of how fast responses come back, so load past capacity shows
/// up as shedding and queueing instead of silently slowing the generator —
/// the collapse closed-loop benchmarks cannot see.
#[allow(clippy::too_many_arguments)]
fn run_overload_series(
    name: String,
    addr: std::net::SocketAddr,
    connections: usize,
    duration: Duration,
    keys: u64,
    dist: KeyDist,
    offered_per_sec: f64,
    capacity_per_sec: f64,
) -> OverloadResult {
    preload(addr, keys);
    let interval = Duration::from_secs_f64(connections as f64 / offered_per_sec.max(1.0));

    let barrier = Barrier::new(connections + 1);
    let sent = AtomicU64::new(0);
    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let retry_aborts = AtomicU64::new(0);
    let app_errors = AtomicU64::new(0);
    let dropped = AtomicU64::new(0);
    let max_depth = AtomicUsize::new(0);
    let hist = Mutex::new(LatencyHistogram::new());
    let started = Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        for t in 0..connections {
            let barrier = &barrier;
            let sent = &sent;
            let ok = &ok;
            let shed = &shed;
            let retry_aborts = &retry_aborts;
            let app_errors = &app_errors;
            let dropped = &dropped;
            let max_depth = &max_depth;
            let hist = &hist;
            let sampler = dist.sampler(keys);
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("bench connect");
                let mut rng = FastRng::new(0x0FE2ED + t as u64);
                let mut tally = OpenLoopTally::default();
                let mut local_hist = LatencyHistogram::new();
                // Send timestamps of in-flight requests, oldest first
                // (responses come back in request order per connection).
                let mut pending_at: VecDeque<Instant> = VecDeque::new();
                barrier.wait();
                let begin = Instant::now();
                let deadline = begin + duration;
                let mut next_send = begin;
                'run: while Instant::now() < deadline {
                    // Fire every tick that has come due on the offered-load
                    // clock; a full pipeline drops the send (counted) rather
                    // than stalling the clock.
                    let now = Instant::now();
                    while next_send <= now {
                        next_send += interval;
                        if c.in_flight() >= OPEN_LOOP_PIPELINE {
                            tally.dropped += 1;
                            continue;
                        }
                        let cmd = sample_cmd(&mut rng, &sampler, keys);
                        if c.send(&Request::Cmd(cmd)).is_err() {
                            break 'run;
                        }
                        pending_at.push_back(Instant::now());
                        tally.sent += 1;
                    }
                    tally.max_depth = tally.max_depth.max(c.in_flight());
                    // Drain whatever responses have arrived; never block
                    // past a sliver of the tick.
                    loop {
                        match c.recv_timeout(Duration::from_micros(50)) {
                            Ok(Some(resp)) => {
                                let at = pending_at.pop_front().expect("pending send time");
                                tally.classify(&resp, at, &mut local_hist);
                            }
                            Ok(None) => break,
                            Err(_) => break 'run,
                        }
                    }
                    let now = Instant::now();
                    if next_send > now {
                        std::thread::sleep((next_send - now).min(Duration::from_micros(200)));
                    }
                }
                // Final drain: bounded, so a wedged server cannot hang the
                // harness.
                let drain_deadline = Instant::now() + Duration::from_millis(500);
                while c.in_flight() > 0 && Instant::now() < drain_deadline {
                    match c.recv_timeout(Duration::from_millis(10)) {
                        Ok(Some(resp)) => {
                            let at = pending_at.pop_front().expect("pending send time");
                            tally.classify(&resp, at, &mut local_hist);
                        }
                        Ok(None) => {}
                        Err(_) => break,
                    }
                }
                sent.fetch_add(tally.sent, Ordering::Relaxed);
                ok.fetch_add(tally.ok, Ordering::Relaxed);
                shed.fetch_add(tally.shed, Ordering::Relaxed);
                retry_aborts.fetch_add(tally.retry_aborts, Ordering::Relaxed);
                app_errors.fetch_add(tally.app_errors, Ordering::Relaxed);
                dropped.fetch_add(tally.dropped, Ordering::Relaxed);
                max_depth.fetch_max(tally.max_depth, Ordering::Relaxed);
                hist.lock().unwrap().merge(&local_hist);
            });
        }
        barrier.wait();
        *started.lock().unwrap() = Some(Instant::now());
    });
    let elapsed = started.lock().unwrap().expect("run started").elapsed();

    let server = {
        let mut c = Client::connect(addr).expect("stats connect");
        c.stats().expect("stats")
    };

    OverloadResult {
        name,
        connections,
        elapsed,
        offered_per_sec,
        capacity_per_sec,
        sent: sent.load(Ordering::Relaxed),
        ok: ok.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        retry_aborts: retry_aborts.load(Ordering::Relaxed),
        app_errors: app_errors.load(Ordering::Relaxed),
        dropped_sends: dropped.load(Ordering::Relaxed),
        max_queue_depth: max_depth.load(Ordering::Relaxed),
        hist: hist.into_inner().unwrap(),
        server,
    }
}

/// The `--overload` mode: measure closed-loop capacity with the default
/// contention policy, then drive open-loop at a multiple of it against a
/// default-policy server and an adaptive-policy server (the A/B the
/// ROADMAP's saturation item asks for), recording goodput, shed rate,
/// queue depth, and p99.9 per policy.
fn run_overload_mode(
    connections: usize,
    workers: usize,
    duration: Duration,
    keys: u64,
    dist: KeyDist,
    tables: TableKind,
    offered_mult: f64,
) -> Vec<String> {
    // Tighter shed watermarks than the server default: the benchmark's
    // pipeline bound caps how much backlog a few connections can build, and
    // the point here is to exercise the shed path, not to find the largest
    // queue that fits in RAM.
    let overload_cfg = OverloadConfig {
        shed_high: 64 << 10,
        shed_low: 16 << 10,
        ..Default::default()
    };

    // Phase 1: closed-loop capacity with the default policy.
    let cap_cfg = ServerConfig {
        workers,
        store: StoreConfig {
            tables: tables.clone(),
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Server::start(&cap_cfg).expect("start capacity server");
    let cap = run_series(
        format!("overload-capacity/{}", dist.label()),
        server.local_addr(),
        connections,
        duration,
        keys,
        dist,
        true,
    );
    println!("{}", cap.csv_row());
    server.shutdown();
    let capacity = cap.ok as f64 / cap.elapsed.as_secs_f64().max(1e-9);

    // Phase 1b: flood calibration.  Closed-loop with a few connections is
    // latency-bound and understates the service rate — "2× that" may not
    // saturate anything.  An open-loop flood (clock far past any plausible
    // capacity, pipeline-capped) measures what the server actually serves
    // per second; the offered overload rate is a multiple of *this*.
    let server = Server::start(&cap_cfg).expect("start calibration server");
    let flood = run_overload_series(
        format!("overload-flood/{}", dist.label()),
        server.local_addr(),
        connections,
        duration,
        keys,
        dist,
        50_000_000.0,
        capacity,
    );
    println!("{}", flood.csv_row());
    server.shutdown();
    let service_rate = flood.ok as f64 / flood.elapsed.as_secs_f64().max(1e-9);
    let offered = service_rate.max(capacity) * offered_mult;

    // Phase 2: open-loop at `offered` against each contention policy.
    let mut entries = vec![cap.to_json(), flood.to_json()];
    for (label, policy) in [
        ("backoff", ContentionPolicy::Backoff),
        ("adaptive", ContentionPolicy::Adaptive),
    ] {
        let cfg = ServerConfig {
            workers,
            store: StoreConfig {
                tables: tables.clone(),
                contention: policy,
                ..Default::default()
            },
            overload: overload_cfg.clone(),
            ..Default::default()
        };
        let server = Server::start(&cfg).expect("start overload server");
        let r = run_overload_series(
            format!("overload-{offered_mult}x/{label}/{}", dist.label()),
            server.local_addr(),
            connections,
            duration,
            keys,
            dist,
            offered,
            capacity,
        );
        println!("{}", r.csv_row());
        entries.push(r.to_json());
        server.shutdown();
    }
    entries
}

/// Width of one throughput window in the `--grow` load phase.
const GROW_WINDOW_MS: u64 = 100;

/// Keys per `MSET` during the `--grow` load phase (same chunking as
/// `preload`, well inside descriptor capacity).
const GROW_CHUNK: usize = 512;

/// The timed load phase of the `--grow` mode: `connections` clients split
/// the key space and pump chunked `MSET`s as fast as the server takes them,
/// tallying acknowledged keys into [`GROW_WINDOW_MS`] windows.  On an
/// elastic server the early windows land while every shard's directory is
/// still doubling, so the window series *is* the during-growth dip curve.
fn run_grow_load(
    addr: std::net::SocketAddr,
    connections: usize,
    keys: u64,
) -> (Duration, Vec<u64>, LatencyHistogram) {
    let barrier = Barrier::new(connections + 1);
    let windows = Mutex::new(Vec::<u64>::new());
    let hist = Mutex::new(LatencyHistogram::new());
    let started = Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        for t in 0..connections {
            let barrier = &barrier;
            let windows = &windows;
            let hist = &hist;
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("grow connect");
                let lo = keys * t as u64 / connections as u64;
                let hi = keys * (t as u64 + 1) / connections as u64;
                let mut local_windows: Vec<u64> = Vec::new();
                let mut local_hist = LatencyHistogram::new();
                barrier.wait();
                let begin = Instant::now();
                let mut chunk: Vec<(u64, u64)> = Vec::with_capacity(GROW_CHUNK);
                let mut k = lo;
                while k < hi {
                    chunk.clear();
                    let end = (k + GROW_CHUNK as u64).min(hi);
                    chunk.extend((k..end).map(|key| (key, INITIAL)));
                    let at = Instant::now();
                    c.mset(&chunk).expect("grow mset");
                    local_hist.record(at.elapsed());
                    let w = (begin.elapsed().as_millis() as u64 / GROW_WINDOW_MS) as usize;
                    if local_windows.len() <= w {
                        local_windows.resize(w + 1, 0);
                    }
                    local_windows[w] += end - k;
                    k = end;
                }
                let mut g = windows.lock().unwrap();
                if g.len() < local_windows.len() {
                    g.resize(local_windows.len(), 0);
                }
                for (i, v) in local_windows.iter().enumerate() {
                    g[i] += v;
                }
                hist.lock().unwrap().merge(&local_hist);
            });
        }
        barrier.wait();
        *started.lock().unwrap() = Some(Instant::now());
    });
    let elapsed = started.lock().unwrap().expect("load started").elapsed();
    (
        elapsed,
        windows.into_inner().unwrap(),
        hist.into_inner().unwrap(),
    )
}

/// The `--grow` mode: the same key load and mixed phase against (a) a hash
/// server pre-sized for the final key count and (b) an elastic server booted
/// at [`kvstore::ELASTIC_BOOT_BUCKETS`] buckets per shard.  The load phase
/// records windowed throughput (the elastic server's during-growth dip);
/// the steady phase shows where the grown table settles relative to the
/// pre-sized baseline; `STATS` supplies grow events and final bucket
/// counts.  A final `grow-summary` entry carries the presized/elastic
/// steady-state ratio CI asserts on.
fn run_grow_mode(
    connections: usize,
    workers: usize,
    duration: Duration,
    keys: u64,
    dist: KeyDist,
) -> Vec<String> {
    let shards = StoreConfig::default().shards;
    let presized_buckets = ((keys as usize / shards).max(1)).next_power_of_two();
    let mut entries = Vec::new();
    let mut steady_ops = Vec::new();
    let mut elastic_summary = String::new();
    for (label, tables, buckets_per_shard) in [
        ("presized", TableKind::Hash, Some(presized_buckets)),
        // Elastic shards size themselves; the knob is a config error there.
        ("elastic", TableKind::Elastic, None),
    ] {
        let cfg = ServerConfig {
            workers,
            store: StoreConfig {
                tables,
                buckets_per_shard,
                ..Default::default()
            },
            ..Default::default()
        };
        let server = Server::start(&cfg).expect("start grow server");
        let addr = server.local_addr();
        let (load_elapsed, windows, load_hist) = run_grow_load(addr, connections, keys);
        let steady = run_series(
            format!("grow-steady/{label}/{}", dist.label()),
            addr,
            connections,
            duration,
            keys,
            dist,
            false, // the load phase already populated every key
        );
        println!("{}", steady.csv_row());
        server.shutdown();

        // Dip statistics over complete windows (the last window is partial).
        let full = if windows.len() > 1 {
            &windows[..windows.len() - 1]
        } else {
            &windows[..]
        };
        let scale = 1000.0 / GROW_WINDOW_MS as f64;
        let min_w = full.iter().copied().min().unwrap_or(0) as f64 * scale;
        let mean_w = if full.is_empty() {
            0.0
        } else {
            full.iter().sum::<u64>() as f64 / full.len() as f64 * scale
        };
        let dip_ratio = if mean_w > 0.0 { min_w / mean_w } else { 1.0 };
        let (p50, _, p99) = load_hist.percentiles_ns();
        let (grow_events, total_buckets) = steady
            .server
            .tables
            .as_ref()
            .map(|t| (t.grow_events, t.shards.iter().map(|sh| sh.buckets).sum()))
            .unwrap_or((0, 0u64));
        entries.push(format!(
            concat!(
                "{{\"name\":\"grow-load/{}/{}\",\"mode\":\"grow\",\"keys\":{},",
                "\"connections\":{},\"load_elapsed_s\":{:.4},",
                "\"load_keys_per_sec\":{:.0},\"window_ms\":{},",
                "\"min_window_keys_per_sec\":{:.0},",
                "\"mean_window_keys_per_sec\":{:.0},\"dip_ratio\":{:.4},",
                "\"load_p50_ns\":{},\"load_p99_ns\":{},",
                "\"grow_events\":{},\"total_buckets\":{}}}"
            ),
            label,
            dist.label(),
            keys,
            connections,
            load_elapsed.as_secs_f64(),
            keys as f64 / load_elapsed.as_secs_f64().max(1e-9),
            GROW_WINDOW_MS,
            min_w,
            mean_w,
            dip_ratio,
            p50,
            p99,
            grow_events,
            total_buckets,
        ));
        let ops_per_sec = steady.ok as f64 / steady.elapsed.as_secs_f64().max(1e-9);
        steady_ops.push(ops_per_sec);
        if label == "elastic" {
            elastic_summary = format!(
                ",\"elastic_grow_events\":{grow_events},\
                 \"elastic_total_buckets\":{total_buckets},\
                 \"elastic_dip_ratio\":{dip_ratio:.4}"
            );
            assert!(
                grow_events > 0,
                "elastic server served {keys} keys without a single directory doubling"
            );
        }
        entries.push(steady.to_json());
    }
    let ratio = steady_ops[1] / steady_ops[0].max(1e-9);
    println!(
        "grow-summary: elastic steady-state at {:.1}% of presized ({:.0} vs {:.0} ops/s)",
        ratio * 100.0,
        steady_ops[1],
        steady_ops[0]
    );
    entries.push(format!(
        concat!(
            "{{\"name\":\"grow-summary/{}\",\"mode\":\"grow\",\"keys\":{},",
            "\"presized_steady_ops_per_sec\":{:.0},",
            "\"elastic_steady_ops_per_sec\":{:.0},\"steady_ratio\":{:.4}{}}}"
        ),
        dist.label(),
        keys,
        steady_ops[0],
        steady_ops[1],
        ratio,
        elastic_summary,
    ));
    entries
}

/// Strided key slots one windowed `--scan` query covers.
const SCAN_WINDOW: u64 = 128;

/// The `--scan` mode: a range-partitioned (skiplist) server under a mix of
/// windowed scans, transfers, and occasional full-space scans.  Keys are
/// strided across the whole u64 space so range partitioning spreads them
/// over every shard, and every full scan asserts **conservation**: money
/// moving between accounts mid-scan must never change the page total,
/// because a page is one atomic read-only transaction.
fn run_scan_mode(connections: usize, workers: usize, duration: Duration, keys: u64) -> Vec<String> {
    // A page is one transaction, and every returned entry is one counted
    // read in its descriptor — so an atomic full-space page is bounded by
    // the read-set capacity (4096 entries), not just MAX_SCAN_LIMIT.
    assert!(
        keys <= 3_500,
        "--scan asserts full-page conservation; an atomic page is capped by \
         descriptor read-set capacity, keep --keys <= 3500"
    );
    let cfg = ServerConfig {
        workers,
        store: StoreConfig {
            tables: TableKind::Skip,
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Server::start(&cfg).expect("start scan server");
    let addr = server.local_addr();
    let stride = u64::MAX / keys;
    {
        let mut c = Client::connect(addr).expect("scan preload");
        let pairs: Vec<(u64, u64)> = (0..keys).map(|i| (i * stride, INITIAL)).collect();
        for chunk in pairs.chunks(512) {
            c.mset(chunk).expect("scan preload mset");
        }
    }
    let total: u128 = keys as u128 * INITIAL as u128;

    let barrier = Barrier::new(connections + 1);
    let scans = AtomicU64::new(0);
    let scan_entries = AtomicU64::new(0);
    let full_scans = AtomicU64::new(0);
    let transfers = AtomicU64::new(0);
    let retry_aborts = AtomicU64::new(0);
    let hist = Mutex::new(LatencyHistogram::new());
    let started = Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        for t in 0..connections {
            let barrier = &barrier;
            let scans = &scans;
            let scan_entries = &scan_entries;
            let full_scans = &full_scans;
            let transfers = &transfers;
            let retry_aborts = &retry_aborts;
            let hist = &hist;
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("scan connect");
                let mut rng = FastRng::new(0x5CA9 + t as u64);
                let (mut n_scan, mut n_entries, mut n_full, mut n_xfer, mut n_retry) =
                    (0u64, 0u64, 0u64, 0u64, 0u64);
                let mut local_hist = LatencyHistogram::new();
                barrier.wait();
                let deadline = Instant::now() + duration;
                while Instant::now() < deadline {
                    let dice = rng.next_below(100);
                    let start = Instant::now();
                    if dice < 60 {
                        let lo = rng.next_below(keys) * stride;
                        let hi = lo.saturating_add(SCAN_WINDOW * stride);
                        match c.scan(lo, hi, SCAN_WINDOW as u32) {
                            Ok(page) => {
                                n_scan += 1;
                                n_entries += page.len() as u64;
                                local_hist.record(start.elapsed());
                            }
                            Err(KvError::Server(_)) => n_retry += 1,
                            Err(_) => break,
                        }
                    } else if dice < 90 {
                        let from = rng.next_below(keys);
                        let mut to = rng.next_below(keys);
                        if to == from {
                            to = (to + 1) % keys;
                        }
                        match c.transfer(from * stride, to * stride, 1) {
                            Ok(_) => {
                                n_xfer += 1;
                                local_hist.record(start.elapsed());
                            }
                            Err(KvError::Server(ErrCode::Retry))
                            | Err(KvError::Server(ErrCode::Capacity)) => n_retry += 1,
                            Err(KvError::Server(_)) => n_xfer += 1, // Insufficient: answered
                            Err(_) => break,
                        }
                    } else {
                        match c.scan(0, u64::MAX, keys as u32) {
                            Ok(page) => {
                                assert_eq!(
                                    page.len() as u64,
                                    keys,
                                    "full scan must see every account"
                                );
                                let sum: u128 = page
                                    .iter()
                                    .map(|(_, v)| match v {
                                        pmem::Value::U64(w) => *w as u128,
                                        pmem::Value::Bytes(_) => 0,
                                    })
                                    .sum();
                                assert_eq!(
                                    sum, total,
                                    "scan page total drifted under concurrent transfers"
                                );
                                n_full += 1;
                                local_hist.record(start.elapsed());
                            }
                            Err(KvError::Server(_)) => n_retry += 1,
                            Err(_) => break,
                        }
                    }
                }
                scans.fetch_add(n_scan, Ordering::Relaxed);
                scan_entries.fetch_add(n_entries, Ordering::Relaxed);
                full_scans.fetch_add(n_full, Ordering::Relaxed);
                transfers.fetch_add(n_xfer, Ordering::Relaxed);
                retry_aborts.fetch_add(n_retry, Ordering::Relaxed);
                hist.lock().unwrap().merge(&local_hist);
            });
        }
        barrier.wait();
        *started.lock().unwrap() = Some(Instant::now());
    });
    let elapsed = started.lock().unwrap().expect("run started").elapsed();

    let stats = {
        let mut c = Client::connect(addr).expect("stats connect");
        c.stats().expect("stats")
    };
    server.shutdown();
    let tables = stats.tables.expect("server reports table stats");
    assert_eq!(
        tables.partition,
        kvstore::PartitionScheme::Range,
        "skip tables must be range-partitioned"
    );

    let secs = elapsed.as_secs_f64().max(1e-9);
    let (p50, _, p99) = hist.lock().unwrap().percentiles_ns();
    let (n_scan, n_full) = (
        scans.load(Ordering::Relaxed),
        full_scans.load(Ordering::Relaxed),
    );
    println!(
        "scan-summary: {:.0} scans/s ({} windowed + {} full, all pages conserved), {:.0} transfers/s",
        (n_scan + n_full) as f64 / secs,
        n_scan,
        n_full,
        transfers.load(Ordering::Relaxed) as f64 / secs,
    );
    vec![format!(
        concat!(
            "{{\"name\":\"scan/skip\",\"mode\":\"scan\",\"keys\":{},",
            "\"connections\":{},\"elapsed_s\":{:.4},",
            "\"scans\":{},\"scans_per_sec\":{:.0},\"scan_entries\":{},",
            "\"full_scans\":{},\"transfers\":{},\"retry_aborts\":{},",
            "\"p50_ns\":{},\"p99_ns\":{},\"partition\":\"range\",",
            "\"server_commits\":{},\"server_ro_commits\":{}}}"
        ),
        keys,
        connections,
        elapsed.as_secs_f64(),
        n_scan + n_full,
        (n_scan + n_full) as f64 / secs,
        scan_entries.load(Ordering::Relaxed),
        n_full,
        transfers.load(Ordering::Relaxed),
        retry_aborts.load(Ordering::Relaxed),
        p50,
        p99,
        stats.tx.commits,
        stats.tx.ro_commits,
    )]
}

/// The `--cache` mode: a cache-tables server (second-chance policy: hash map
/// and FIFO queue composed in one transaction per op) under a zipfian get/put
/// mix sized to overflow capacity.  Reports the server's commit-disciplined
/// hit/miss/eviction tallies and asserts the capacity invariant on the
/// occupancy `STATS` reports.
fn run_cache_mode(
    connections: usize,
    workers: usize,
    duration: Duration,
    keys: u64,
    dist: KeyDist,
) -> Vec<String> {
    let capacity = (keys / 4).max(StoreConfig::default().shards as u64);
    let cfg = ServerConfig {
        workers,
        store: StoreConfig {
            tables: TableKind::Cache { capacity },
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Server::start(&cfg).expect("start cache server");
    let addr = server.local_addr();

    let barrier = Barrier::new(connections + 1);
    let gets = AtomicU64::new(0);
    let observed_hits = AtomicU64::new(0);
    let puts = AtomicU64::new(0);
    let retry_aborts = AtomicU64::new(0);
    let hist = Mutex::new(LatencyHistogram::new());
    let started = Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        for t in 0..connections {
            let barrier = &barrier;
            let gets = &gets;
            let observed_hits = &observed_hits;
            let puts = &puts;
            let retry_aborts = &retry_aborts;
            let hist = &hist;
            let sampler = dist.sampler(keys);
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("cache connect");
                let mut rng = FastRng::new(0xCAC4E + t as u64);
                let (mut n_get, mut n_hit, mut n_put, mut n_retry) = (0u64, 0u64, 0u64, 0u64);
                let mut local_hist = LatencyHistogram::new();
                barrier.wait();
                let deadline = Instant::now() + duration;
                while Instant::now() < deadline {
                    let k = sampler.sample(&mut rng);
                    let start = Instant::now();
                    if rng.next_below(100) < 70 {
                        match c.get(k) {
                            Ok(v) => {
                                n_get += 1;
                                n_hit += u64::from(v.is_some());
                                local_hist.record(start.elapsed());
                            }
                            Err(KvError::Server(_)) => n_retry += 1,
                            Err(_) => break,
                        }
                    } else {
                        match c.put(k, rng.next_u64() % INITIAL) {
                            Ok(_) => {
                                n_put += 1;
                                local_hist.record(start.elapsed());
                            }
                            Err(KvError::Server(_)) => n_retry += 1,
                            Err(_) => break,
                        }
                    }
                }
                gets.fetch_add(n_get, Ordering::Relaxed);
                observed_hits.fetch_add(n_hit, Ordering::Relaxed);
                puts.fetch_add(n_put, Ordering::Relaxed);
                retry_aborts.fetch_add(n_retry, Ordering::Relaxed);
                hist.lock().unwrap().merge(&local_hist);
            });
        }
        barrier.wait();
        *started.lock().unwrap() = Some(Instant::now());
    });
    let elapsed = started.lock().unwrap().expect("run started").elapsed();

    let stats = {
        let mut c = Client::connect(addr).expect("stats connect");
        c.stats().expect("stats")
    };
    server.shutdown();
    let tables = stats.tables.expect("server reports table stats");
    let cache = tables.cache.expect("cache server reports cache tallies");
    let live: u64 = tables
        .shards
        .iter()
        .map(|sh| sh.items.expect("cache shards track occupancy"))
        .sum();
    assert!(
        live <= capacity,
        "live entries {live} exceed the configured capacity {capacity}"
    );
    let hit_rate = cache.hits as f64 / (cache.hits + cache.misses).max(1) as f64;

    let secs = elapsed.as_secs_f64().max(1e-9);
    let (p50, _, p99) = hist.lock().unwrap().percentiles_ns();
    let ops = gets.load(Ordering::Relaxed) + puts.load(Ordering::Relaxed);
    println!(
        "cache-summary: {:.0} ops/s, hit rate {:.1}% ({} hits / {} misses), {} evictions, {live}/{capacity} live",
        ops as f64 / secs,
        hit_rate * 100.0,
        cache.hits,
        cache.misses,
        cache.evictions,
    );
    vec![format!(
        concat!(
            "{{\"name\":\"cache/second-chance\",\"mode\":\"cache\",\"keys\":{},",
            "\"capacity\":{},\"connections\":{},\"elapsed_s\":{:.4},",
            "\"ops\":{},\"ops_per_sec\":{:.0},",
            "\"gets\":{},\"client_observed_hits\":{},\"puts\":{},",
            "\"retry_aborts\":{},\"hits\":{},\"misses\":{},\"hit_rate\":{:.4},",
            "\"evictions\":{},\"live_entries\":{},",
            "\"p50_ns\":{},\"p99_ns\":{},\"server_commits\":{}}}"
        ),
        keys,
        capacity,
        connections,
        elapsed.as_secs_f64(),
        ops,
        ops as f64 / secs,
        gets.load(Ordering::Relaxed),
        observed_hits.load(Ordering::Relaxed),
        puts.load(Ordering::Relaxed),
        retry_aborts.load(Ordering::Relaxed),
        cache.hits,
        cache.misses,
        hit_rate,
        cache.evictions,
        live,
        p50,
        p99,
        stats.tx.commits,
    )]
}

/// The `--metrics-ab` mode: the same closed-loop mixed workload against two
/// otherwise-identical transient servers, one with telemetry enabled and one
/// with it disabled, plus a summary row carrying the throughput ratio CI can
/// assert on.  This is the overhead guard for the observability layer: the
/// per-request cost of telemetry is three clock reads and a handful of
/// relaxed atomics, and the ratio row makes any regression visible in
/// BENCH_server.json rather than only under a profiler.
fn run_metrics_ab_mode(
    connections: usize,
    workers: usize,
    duration: Duration,
    keys: u64,
    dist: KeyDist,
    tables: TableKind,
) -> Vec<String> {
    let mut entries = Vec::new();
    let mut rates = Vec::new();
    for enabled in [true, false] {
        let cfg = ServerConfig {
            workers,
            store: StoreConfig {
                tables: tables.clone(),
                ..Default::default()
            },
            telemetry: TelemetryConfig {
                enabled,
                ..Default::default()
            },
            ..Default::default()
        };
        let server = Server::start(&cfg).expect("start A/B server");
        let label = if enabled { "on" } else { "off" };
        let mut r = run_series(
            format!("server-ab/telemetry-{label}/{}", dist.label()),
            server.local_addr(),
            connections,
            duration,
            keys,
            dist,
            true,
        );
        r.extra = format!(",\"telemetry\":{enabled}");
        println!("{}", r.csv_row());
        let answered = r.ok + r.app_errors;
        rates.push(answered as f64 / r.elapsed.as_secs_f64().max(1e-9));
        entries.push(r.to_json());
        server.shutdown();
    }
    let ratio = rates[0] / rates[1].max(1e-9);
    println!(
        "metrics-ab-summary: telemetry on at {:.3}x of off ({:.0} vs {:.0} ops/s)",
        ratio, rates[0], rates[1]
    );
    entries.push(format!(
        concat!(
            "{{\"name\":\"metrics-ab-summary/{}\",\"mode\":\"metrics-ab\",",
            "\"connections\":{},\"on_ops_per_sec\":{:.0},\"off_ops_per_sec\":{:.0},",
            "\"on_off_ratio\":{:.4}}}"
        ),
        dist.label(),
        connections,
        rates[0],
        rates[1],
        ratio,
    ));
    entries
}

fn main() {
    // Hundreds of benchmark connections means hundreds of descriptors on
    // both ends of the loopback; lift the soft cap before opening any.
    if let Err(e) = kvstore::sys::raise_nofile_limit() {
        eprintln!("warning: could not raise RLIMIT_NOFILE: {e}");
    }
    let args = CommonArgs::parse();
    let connections: usize = CommonArgs::extra_flag("--connections", 2);
    let workers: usize = CommonArgs::extra_flag("--workers", 4);
    let theta: f64 = CommonArgs::extra_flag("--theta", 0.99);
    let uniform = std::env::args().any(|a| a == "--uniform");
    let connect: String = CommonArgs::extra_flag("--connect", String::new());
    let tables = match CommonArgs::extra_flag("--tables", "hash".to_string()).as_str() {
        "hash" => TableKind::Hash,
        "skip" => TableKind::Skip,
        "mixed" => TableKind::Mixed,
        "elastic" => TableKind::Elastic,
        "cache" => TableKind::Cache {
            capacity: CommonArgs::extra_flag("--cache-capacity", 1 << 16),
        },
        other => panic!("unknown --tables {other:?} (hash|skip|mixed|elastic|cache)"),
    };
    let duration = Duration::from_secs_f64(args.seconds);
    let dist = if uniform {
        KeyDist::Uniform
    } else {
        KeyDist::Zipfian(theta)
    };

    // Error probe: N transfers from guaranteed-missing keys against an
    // external server, so a metrics scrape has abort-reason counters to
    // attribute.  Exits without writing JSON.
    let probe_errors: u64 = CommonArgs::extra_flag("--probe-errors", 0);
    if probe_errors > 0 {
        let addr: std::net::SocketAddr = connect
            .parse()
            .expect("--probe-errors needs --connect ADDR:PORT");
        let mut c = Client::connect(addr).expect("probe connect");
        let mut failures = 0u64;
        for i in 0..probe_errors {
            failures += u64::from(c.transfer(u64::MAX - i, 0, 1).is_err());
        }
        println!("probe-errors: {failures}/{probe_errors} transfers from missing keys failed");
        assert_eq!(failures, probe_errors, "missing-key transfers must fail");
        return;
    }

    println!(
        "series,connections,ops_per_sec,client_retry_aborts,server_conflict_aborts,p50_ns,p99_ns"
    );

    if std::env::args().any(|a| a == "--grow") {
        let entries = run_grow_mode(connections, workers, duration, args.keys, dist);
        write_json("server", &entries);
        return;
    }

    if std::env::args().any(|a| a == "--scan") {
        let entries = run_scan_mode(connections, workers, duration, args.keys);
        write_json("server", &entries);
        return;
    }

    if std::env::args().any(|a| a == "--cache") {
        let entries = run_cache_mode(connections, workers, duration, args.keys, dist);
        write_json("server", &entries);
        return;
    }

    if std::env::args().any(|a| a == "--fanout") {
        let fan: usize = CommonArgs::extra_flag("--fanout-conns", 512);
        let entries = run_fanout_mode(workers, duration, args.keys, dist, tables, fan);
        write_json("server", &entries);
        return;
    }

    if std::env::args().any(|a| a == "--metrics-ab") {
        let entries = run_metrics_ab_mode(connections, workers, duration, args.keys, dist, tables);
        write_json("server", &entries);
        return;
    }

    if std::env::args().any(|a| a == "--overload") {
        let offered_mult: f64 = CommonArgs::extra_flag("--offered-mult", 2.0);
        let entries = run_overload_mode(
            connections,
            workers,
            duration,
            args.keys,
            dist,
            tables,
            offered_mult,
        );
        write_json("server", &entries);
        return;
    }

    let mut results = Vec::new();

    if !connect.is_empty() {
        let addr = connect.parse().expect("--connect ADDR:PORT");
        let r = run_series(
            format!("server-external/{}", dist.label()),
            addr,
            connections,
            duration,
            args.keys,
            dist,
            true,
        );
        println!("{}", r.csv_row());
        results.push(r);
    } else {
        for (label, backend) in [
            ("transient", StoreBackend::Transient),
            ("durable", StoreBackend::Durable),
        ] {
            let cfg = ServerConfig {
                workers,
                store: StoreConfig {
                    tables: tables.clone(),
                    backend,
                    ..Default::default()
                },
                ..Default::default()
            };
            let server = Server::start(&cfg).expect("start kvstore server");
            let r = run_series(
                format!("server-{label}/{}", dist.label()),
                server.local_addr(),
                connections,
                duration,
                args.keys,
                dist,
                true,
            );
            println!("{}", r.csv_row());
            results.push(r);
            server.shutdown();
        }

        // Blob series: the same service through the variable-length op
        // family, at a small inline-class size and a multi-read-pass size
        // (4 KiB spills class-0 durable slots into overflow chains).
        for (label, backend) in [
            ("transient", StoreBackend::Transient),
            ("durable", StoreBackend::Durable),
        ] {
            for vsize in [128usize, 4096] {
                let cfg = ServerConfig {
                    workers,
                    store: StoreConfig {
                        tables: tables.clone(),
                        backend,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let server = Server::start(&cfg).expect("start blob server");
                let r = run_blob_series(
                    format!("server-blob-{label}/{vsize}B/{}", dist.label()),
                    server.local_addr(),
                    connections,
                    duration,
                    args.keys,
                    dist,
                    vsize,
                );
                println!("{}", r.csv_row());
                results.push(r);
                server.shutdown();
            }
        }
    }

    let entries: Vec<String> = results.iter().map(SeriesResult::to_json).collect();
    write_json("server", &entries);
}
