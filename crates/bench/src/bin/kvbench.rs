//! Service-level load generator for the `kvstore` layer: N closed-loop
//! client connections over loopback TCP, zipfian key picks, mixed
//! single-key / multi-key traffic, per-request latency histograms.
//!
//! By default it is self-hosting: it starts an in-process server, runs one
//! series against the **transient** backend and one against the **durable**
//! (txMontage, live epoch advancer) backend, and writes both to
//! `BENCH_server.json` via the shared `bench::report` emitter — throughput,
//! client-observed abort counts, log-bucketed p50/p90/p99 latencies, and
//! the server's own `STATS` snapshot (commit-path mix, conflict aborts,
//! domain state).  `--connect ADDR` instead drives an externally started
//! `kvserver`.
//!
//! ```text
//! cargo run --release -p bench --bin kvbench -- \
//!     --connections 4 --seconds 2 --keys 4096 --theta 0.99 --workers 4
//! ```
//!
//! Traffic mix per draw (keys zipfian unless `--uniform`): 50% `GET`,
//! 20% `PUT`, 10% `CAS`, 10% `TRANSFER` (two picks, amount 1), 10% `MGET`
//! of 4 keys.  There are no `DEL`s so `TRANSFER` accounts stay populated;
//! failed transfers (`Insufficient`) are successful round trips and are
//! counted separately from aborts.

use bench::report::{write_json, LatencyHistogram};
use bench::workload::KeyDist;
use bench::CommonArgs;
use kvstore::{
    Client, KvError, Server, ServerConfig, StatsReply, StoreBackend, StoreConfig, TableKind,
};
use medley::util::FastRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// Initial balance preloaded into every key.
const INITIAL: u64 = 1_000_000;

/// Per-connection tallies of one series.
#[derive(Default)]
struct ConnTally {
    ok: u64,
    retry_aborts: u64,
    app_errors: u64,
}

struct SeriesResult {
    name: String,
    connections: usize,
    elapsed: Duration,
    ok: u64,
    retry_aborts: u64,
    app_errors: u64,
    hist: LatencyHistogram,
    server: StatsReply,
}

impl SeriesResult {
    fn to_json(&self) -> String {
        let (p50, p90, p99) = self.hist.percentiles_ns();
        let t = &self.server.tx;
        let ops_per_sec = self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9);
        let domain = match &self.server.domain {
            None => String::new(),
            Some(d) => format!(
                ",\"live_payloads\":{},\"persisted_epoch\":{},\"current_epoch\":{}",
                d.live_payloads, d.persisted_epoch, d.current_epoch
            ),
        };
        format!(
            concat!(
                "{{\"name\":\"{}\",\"connections\":{},\"elapsed_s\":{:.4},",
                "\"ops\":{},\"ops_per_sec\":{:.0},",
                "\"retry_aborts\":{},\"app_errors\":{},",
                "\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{},",
                "\"server_commits\":{},\"server_aborts\":{},",
                "\"server_conflict_aborts\":{},\"server_fast_commits\":{},",
                "\"server_ro_commits\":{},\"server_general_commits\":{}{}}}"
            ),
            self.name,
            self.connections,
            self.elapsed.as_secs_f64(),
            self.ok,
            ops_per_sec,
            self.retry_aborts,
            self.app_errors,
            p50,
            p90,
            p99,
            self.hist.max_ns(),
            t.commits,
            t.aborts,
            t.conflict_aborts,
            t.fast_commits,
            t.ro_commits,
            t.general_commits,
            domain,
        )
    }

    fn csv_row(&self) -> String {
        let (p50, _, p99) = self.hist.percentiles_ns();
        format!(
            "{},{},{:.0},{},{},{},{}",
            self.name,
            self.connections,
            self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9),
            self.retry_aborts,
            self.server.tx.conflict_aborts,
            p50,
            p99
        )
    }
}

/// One client operation: sampled shape, executed, latency recorded.
fn run_one_op(
    c: &mut Client,
    rng: &mut FastRng,
    sampler: &bench::workload::KeySampler,
    keys: u64,
    tally: &mut ConnTally,
    hist: &mut LatencyHistogram,
) -> Result<(), KvError> {
    let k = sampler.sample(rng);
    let dice = rng.next_below(100);
    let start = Instant::now();
    let outcome: Result<(), KvError> = if dice < 50 {
        c.get(k).map(|_| ())
    } else if dice < 70 {
        c.put(k, rng.next_u64() % INITIAL).map(|_| ())
    } else if dice < 80 {
        // CAS against the freshly read value: mostly succeeds, loses under
        // contention (server-side transactional retry).
        match c.get(k) {
            Ok(Some(cur)) => c.cas(k, cur, cur ^ 1).map(|_| ()),
            Ok(None) => Ok(()),
            Err(e) => Err(e),
        }
    } else if dice < 90 {
        let mut to = sampler.sample(rng);
        if to == k {
            to = (to + 1) % keys;
        }
        c.transfer(k, to, 1).map(|_| ())
    } else {
        let ks: Vec<u64> = (0..4).map(|_| sampler.sample(rng)).collect();
        c.mget(&ks).map(|_| ())
    };
    match outcome {
        Ok(()) => {
            tally.ok += 1;
            hist.record(start.elapsed());
            Ok(())
        }
        Err(KvError::Server(code)) => {
            // The server answered: the round trip completed, classify it.
            match code {
                kvstore::ErrCode::Retry | kvstore::ErrCode::Capacity => tally.retry_aborts += 1,
                _ => {
                    tally.app_errors += 1;
                    hist.record(start.elapsed());
                }
            }
            Ok(())
        }
        Err(e) => Err(e),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_series(
    name: String,
    addr: std::net::SocketAddr,
    connections: usize,
    duration: Duration,
    keys: u64,
    dist: KeyDist,
) -> SeriesResult {
    // Preload every key over the wire (chunked MSETs stay well inside the
    // descriptor write-set capacity).
    {
        let mut c = Client::connect(addr).expect("preload connect");
        let pairs: Vec<(u64, u64)> = (0..keys).map(|k| (k, INITIAL)).collect();
        for chunk in pairs.chunks(512) {
            c.mset(chunk).expect("preload mset");
        }
    }

    let barrier = Barrier::new(connections + 1);
    let ok = AtomicU64::new(0);
    let retry_aborts = AtomicU64::new(0);
    let app_errors = AtomicU64::new(0);
    let hist = Mutex::new(LatencyHistogram::new());
    let started = Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        for t in 0..connections {
            let barrier = &barrier;
            let ok = &ok;
            let retry_aborts = &retry_aborts;
            let app_errors = &app_errors;
            let hist = &hist;
            let sampler = dist.sampler(keys);
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("bench connect");
                let mut rng = FastRng::new(0xBE9C4 + t as u64);
                let mut tally = ConnTally::default();
                let mut local_hist = LatencyHistogram::new();
                barrier.wait();
                let deadline = Instant::now() + duration;
                while Instant::now() < deadline {
                    if run_one_op(
                        &mut c,
                        &mut rng,
                        &sampler,
                        keys,
                        &mut tally,
                        &mut local_hist,
                    )
                    .is_err()
                    {
                        break;
                    }
                }
                ok.fetch_add(tally.ok, Ordering::Relaxed);
                retry_aborts.fetch_add(tally.retry_aborts, Ordering::Relaxed);
                app_errors.fetch_add(tally.app_errors, Ordering::Relaxed);
                hist.lock().unwrap().merge(&local_hist);
            });
        }
        barrier.wait();
        *started.lock().unwrap() = Some(Instant::now());
    });
    let elapsed = started.lock().unwrap().expect("run started").elapsed();

    // Durable servers: take a durability cut, then sample the statistics.
    let server = {
        let mut c = Client::connect(addr).expect("stats connect");
        let _ = c.sync();
        c.stats().expect("stats")
    };

    SeriesResult {
        name,
        connections,
        elapsed,
        ok: ok.load(Ordering::Relaxed),
        retry_aborts: retry_aborts.load(Ordering::Relaxed),
        app_errors: app_errors.load(Ordering::Relaxed),
        hist: hist.into_inner().unwrap(),
        server,
    }
}

fn main() {
    let args = CommonArgs::parse();
    let connections: usize = CommonArgs::extra_flag("--connections", 2);
    let workers: usize = CommonArgs::extra_flag("--workers", 4);
    let theta: f64 = CommonArgs::extra_flag("--theta", 0.99);
    let uniform = std::env::args().any(|a| a == "--uniform");
    let connect: String = CommonArgs::extra_flag("--connect", String::new());
    let tables = match CommonArgs::extra_flag("--tables", "hash".to_string()).as_str() {
        "hash" => TableKind::Hash,
        "skip" => TableKind::Skip,
        "mixed" => TableKind::Mixed,
        other => panic!("unknown --tables {other:?} (hash|skip|mixed)"),
    };
    let duration = Duration::from_secs_f64(args.seconds);
    let dist = if uniform {
        KeyDist::Uniform
    } else {
        KeyDist::Zipfian(theta)
    };

    println!(
        "series,connections,ops_per_sec,client_retry_aborts,server_conflict_aborts,p50_ns,p99_ns"
    );
    let mut results = Vec::new();

    if !connect.is_empty() {
        let addr = connect.parse().expect("--connect ADDR:PORT");
        let r = run_series(
            format!("server-external/{}", dist.label()),
            addr,
            connections,
            duration,
            args.keys,
            dist,
        );
        println!("{}", r.csv_row());
        results.push(r);
    } else {
        for (label, backend) in [
            ("transient", StoreBackend::Transient),
            ("durable", StoreBackend::Durable),
        ] {
            let cfg = ServerConfig {
                workers,
                store: StoreConfig {
                    tables,
                    backend,
                    ..Default::default()
                },
                ..Default::default()
            };
            let server = Server::start(&cfg).expect("start kvstore server");
            let r = run_series(
                format!("server-{label}/{}", dist.label()),
                server.local_addr(),
                connections,
                duration,
                args.keys,
                dist,
            );
            println!("{}", r.csv_row());
            results.push(r);
            server.shutdown();
        }
    }

    let entries: Vec<String> = results.iter().map(SeriesResult::to_json).collect();
    write_json("server", &entries);
}
