//! Fig. 10: average per-transaction latency on skiplists at a fixed thread
//! count, comparing:
//!
//! * `TxOff`  — the NBTC-transformed skiplist with transactions disabled
//!   (instrumentation elided; each operation runs standalone);
//! * `TxOn`   — the same skiplist with 1–10-operation transactions;
//! * the same two configurations with simulated-NVM write-back costs charged
//!   on payload updates (`*-NVM`), and the fully persistent txMontage
//!   configuration (`txMontage`).
//!
//! The paper's "Original" series (the untransformed Fraser skiplist) is
//! approximated by `TxOff`; see EXPERIMENTS.md for the discussion of the
//! residual difference (the cost of the 128-bit `CasObj`).

use bench::{CommonArgs, MedleyMicro, MedleyTxOff};
use medley::TxManager;
use nbds::SkipList;
use pmem::{NvmCostModel, PersistenceDomain};
use std::sync::Arc;
use txmontage::DurableSkipList;

fn main() {
    let args = CommonArgs::parse();
    let threads = *args.threads.last().unwrap_or(&4);
    println!("figure,system,ratio,threads,latency_ns_per_txn");
    for ratio in [(0, 1, 1), (2, 1, 1), (18, 1, 1)] {
        let cfg = args.micro_config(ratio);
        // (a) DRAM: TxOff vs TxOn.
        {
            let mgr = TxManager::new();
            let map = Arc::new(SkipList::<u64>::new());
            let sys = MedleyTxOff::new("TxOff", mgr, map);
            let lat = bench::run_micro_latency(&sys, &cfg, threads);
            bench::emit("fig10a", "TxOff", ratio, threads, lat);
        }
        {
            let mgr = TxManager::new();
            let map = Arc::new(SkipList::<u64>::new());
            let sys = MedleyMicro::new("TxOn", mgr, map);
            let lat = bench::run_micro_latency(&sys, &cfg, threads);
            bench::emit("fig10a", "TxOn", ratio, threads, lat);
        }
        // (b) simulated NVM (payloads charged write-back costs, persistence off).
        {
            let mgr = TxManager::new();
            let domain = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::OPTANE_LIKE);
            let map = Arc::new(DurableSkipList::skip_list(domain));
            let sys = MedleyTxOff::new("TxOff-NVM", mgr, map);
            let lat = bench::run_micro_latency(&sys, &cfg, threads);
            bench::emit("fig10b", "TxOff-NVM", ratio, threads, lat);
        }
        {
            let mgr = TxManager::new();
            let domain = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::OPTANE_LIKE);
            let map = Arc::new(DurableSkipList::skip_list(domain));
            let sys = MedleyMicro::new("TxOn-NVM", mgr, map);
            let lat = bench::run_micro_latency(&sys, &cfg, threads);
            bench::emit("fig10b", "TxOn-NVM", ratio, threads, lat);
        }
        // (c) fully persistent txMontage (periodic persistence running).
        {
            let mgr = TxManager::new();
            let domain = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::OPTANE_LIKE);
            let map = Arc::new(DurableSkipList::skip_list(Arc::clone(&domain)));
            let _advancer = pmem::EpochAdvancer::spawn(
                Arc::clone(&domain),
                std::time::Duration::from_millis(10),
            );
            let sys = MedleyMicro::new("txMontage", mgr, map);
            let lat = bench::run_micro_latency(&sys, &cfg, threads);
            bench::emit("fig10c", "txMontage", ratio, threads, lat);
        }
    }
}
