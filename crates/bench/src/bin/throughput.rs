//! Contended-throughput harness: ops/sec-vs-threads series under zipfian and
//! uniform key distributions, written to `BENCH_throughput.json`.
//!
//! Transient workloads per thread count and distribution:
//!
//! * `transfer/*` — two-word transfers over a tiny hot account set (general
//!   descriptor path under install conflicts and helping storms), with a
//!   read-only audit every eighth transaction;
//! * `map2:1:1/*` — single-op update-heavy mix over a hash table (single-CAS
//!   and read-only fast paths under bucket contention);
//! * `map18:1:1/*` — read-heavy mix (read-only path dominant).
//!
//! Durable (txMontage) workloads, run with a live `EpochAdvancer` so every
//! committed update flows through the persistence domain's payload
//! alloc/retire path and the periodic write-back:
//!
//! * `durable-transfer/*` — two-key balance transfers over a durable map
//!   (each commit retires two payloads and allocates two more);
//! * `durable-map2:1:1/*` — update-heavy durable map mix;
//! * `durable-*-mutex/*` — the same workloads on the Mutex-slab payload
//!   store, the A/B baseline whose global lock serializes all payload
//!   traffic (pass `--no-durable-baseline` to skip).
//!
//! ```text
//! cargo run --release -p bench --bin throughput -- \
//!     --threads 1,4,16 --seconds 0.5 --keys 65536 --accounts 8 --theta 0.99
//! ```
//!
//! Prints `workload/dist,threads,ops_per_sec,commits,aborts,helps` CSV rows
//! and writes the full per-series statistics (commit-path mix, conflict
//! aborts, helps, NVM flush/fence deltas and domain state for the durable
//! series) to the JSON report (`BENCH_JSON` overrides the path).

use bench::workload::{
    run_durable_map_mix, run_durable_transfer, run_hot_transfer, run_map_mix, write_report,
    KeyDist, ThroughputConfig,
};
use bench::CommonArgs;
use pmem::DomainBackend;
use std::time::Duration;

fn main() {
    let args = CommonArgs::parse();
    let accounts: u64 = CommonArgs::extra_flag("--accounts", 8);
    let theta: f64 = CommonArgs::extra_flag("--theta", 0.99);
    let skip_baseline = std::env::args().any(|a| a == "--no-durable-baseline");
    let duration = Duration::from_secs_f64(args.seconds);

    println!("workload,threads,ops_per_sec,commits,aborts,helps");
    let mut results = Vec::new();
    for &threads in &args.threads {
        for dist in [KeyDist::Zipfian(theta), KeyDist::Uniform] {
            let cfg = ThroughputConfig {
                threads,
                duration,
                dist,
            };
            let r = run_hot_transfer(&cfg, accounts);
            println!("{}", r.csv_row());
            results.push(r);
            for ratio in [(2, 1, 1), (18, 1, 1)] {
                let r = run_map_mix(&cfg, args.keys, ratio);
                println!("{}", r.csv_row());
                results.push(r);
            }
            // Durable series: arena store, then the Mutex-slab baseline.
            let mut backends = vec![DomainBackend::Arena];
            if !skip_baseline {
                backends.push(DomainBackend::MutexSlab);
            }
            for backend in backends {
                let r = run_durable_transfer(&cfg, accounts, backend);
                println!("{}", r.csv_row());
                results.push(r);
                let r = run_durable_map_mix(&cfg, args.keys, (2, 1, 1), backend);
                println!("{}", r.csv_row());
                results.push(r);
            }
        }
    }
    write_report("throughput", &results);
}
