//! Fig. 9: TPC-C (newOrder + payment, 1:1) throughput vs. threads over
//! transactional skiplists: Medley, txMontage, OneFile, TDSL.
//! (LFTT is excluded because it supports only static transactions, exactly as
//! in the paper.)

use medley::TxManager;
use nbds::SkipList;
use pmem::{NvmCostModel, PersistenceDomain};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tpcc::{
    execute_input, load_chunked, random_input, MedleyBackend, OneFileBackend, Scale, TdslBackend,
    TpccBackend,
};
use txmontage::DurableSkipList;

fn bench_backend<B: TpccBackend>(
    name: &str,
    backend: &B,
    scale: &Scale,
    threads: usize,
    secs: f64,
) {
    // Load the database from one session in capacity-friendly chunks.
    {
        let mut s = backend.session();
        load_chunked(backend, &mut s, scale);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for t in 0..threads {
            let stop = Arc::clone(&stop);
            let committed = Arc::clone(&committed);
            joins.push(scope.spawn(move || {
                let mut session = backend.session();
                let mut rng = medley::util::FastRng::new(t as u64 + 1);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let input = random_input(&mut rng, scale);
                    if backend.run_tx(&mut session, &mut |kv| execute_input(kv, &input)) {
                        local += 1;
                    }
                }
                committed.fetch_add(local, Ordering::Relaxed);
            }));
        }
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        for j in joins {
            let _ = j.join();
        }
    });
    let tput = committed.load(Ordering::Relaxed) as f64 / secs;
    println!("fig9,{name},newOrder:payment=1:1,{threads},{tput:.0}");
}

fn main() {
    let args = bench::CommonArgs::parse();
    // The extra scale flags let CI smoke runs shrink the TPC-C database:
    // loading at the default scale takes minutes on small hosts regardless
    // of `--seconds`.
    let scale = Scale {
        warehouses: bench::CommonArgs::extra_flag("--warehouses", 2),
        districts_per_warehouse: bench::CommonArgs::extra_flag("--districts", 10),
        customers_per_district: bench::CommonArgs::extra_flag("--customers", 256),
        items: bench::CommonArgs::extra_flag("--items", 1024),
    };
    println!("figure,system,ratio,threads,throughput_txn_per_s");
    for &threads in &args.threads {
        {
            let mgr = TxManager::new();
            let map = Arc::new(SkipList::<u64>::new());
            let backend = MedleyBackend::new(mgr, map);
            bench_backend("Medley", &backend, &scale, threads, args.seconds);
        }
        {
            let mgr = TxManager::new();
            let domain = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::OPTANE_LIKE);
            let map = Arc::new(DurableSkipList::skip_list(Arc::clone(&domain)));
            let _advancer =
                pmem::EpochAdvancer::spawn(Arc::clone(&domain), Duration::from_millis(10));
            let backend = MedleyBackend::new(mgr, map);
            bench_backend("txMontage", &backend, &scale, threads, args.seconds);
        }
        {
            let backend = OneFileBackend::new(onefile::OneFileStm::new(), 1 << 16);
            bench_backend("OneFile", &backend, &scale, threads, args.seconds);
        }
        {
            let backend = TdslBackend::new();
            bench_backend("TDSL", &backend, &scale, threads, args.seconds);
        }
    }
}
