//! Fig. 8: throughput of transactional skiplists (Medley, txMontage, OneFile,
//! POneFile, TDSL, LFTT) for get:insert:remove ratios 0:1:1, 2:1:1, 18:1:1.

use bench::systems::{LfttMicro, OneFileMicro, TdslMicro, TxMontageMicro};
use bench::{emit, CommonArgs, MedleyMicro};
use medley::TxManager;
use nbds::SkipList;
use pmem::{DomainBackend, NvmCostModel, SimNvm};
use std::sync::Arc;

fn main() {
    let args = CommonArgs::parse();
    let buckets = (args.keys as usize).next_power_of_two();
    println!("figure,system,ratio,threads,throughput_txn_per_s");
    for ratio in [(0, 1, 1), (2, 1, 1), (18, 1, 1)] {
        let cfg = args.micro_config(ratio);
        for &threads in &args.threads {
            {
                let mgr = TxManager::new();
                let map = Arc::new(SkipList::<u64>::new());
                let sys = MedleyMicro::new("Medley", mgr, map);
                emit(
                    "fig8",
                    "Medley",
                    ratio,
                    threads,
                    bench::run_micro(&sys, &cfg, threads),
                );
            }
            {
                let sys = TxMontageMicro::skip_list(
                    DomainBackend::Arena,
                    std::time::Duration::from_millis(10),
                );
                emit(
                    "fig8",
                    "txMontage",
                    ratio,
                    threads,
                    bench::run_micro(&sys, &cfg, threads),
                );
            }
            {
                let sys = OneFileMicro::transient(buckets);
                emit(
                    "fig8",
                    "OneFile",
                    ratio,
                    threads,
                    bench::run_micro(&sys, &cfg, threads),
                );
            }
            {
                let nvm = Arc::new(SimNvm::new(NvmCostModel::OPTANE_LIKE));
                let sys = OneFileMicro::persistent(buckets, nvm);
                emit(
                    "fig8",
                    "POneFile",
                    ratio,
                    threads,
                    bench::run_micro(&sys, &cfg, threads),
                );
            }
            {
                let sys = TdslMicro::new();
                emit(
                    "fig8",
                    "TDSL",
                    ratio,
                    threads,
                    bench::run_micro(&sys, &cfg, threads),
                );
            }
            {
                let sys = LfttMicro::new(buckets);
                emit(
                    "fig8",
                    "LFTT",
                    ratio,
                    threads,
                    bench::run_micro(&sys, &cfg, threads),
                );
            }
        }
    }
}
