//! # bench — harness reproducing the paper's evaluation (Sec. 6)
//!
//! The binaries in this crate regenerate the paper's figures:
//!
//! | Binary  | Paper figure | What it measures |
//! |---------|--------------|------------------|
//! | `fig7`  | Fig. 7 a–c   | transactional hash-table throughput vs. threads (Medley, txMontage, OneFile, POneFile) |
//! | `fig8`  | Fig. 8 a–c   | transactional skiplist throughput vs. threads (adds TDSL and LFTT) |
//! | `fig9`  | Fig. 9       | TPC-C (newOrder + payment, 1:1) throughput vs. threads |
//! | `fig10` | Fig. 10 a–c  | per-transaction latency: instrumentation off/on, DRAM vs. simulated NVM vs. full persistence |
//!
//! Each binary prints CSV rows (`figure,system,ratio,threads,value`) so the
//! series can be plotted directly.  Thread counts, run time per point, key
//! space and preload size are configurable from the command line; defaults
//! are scaled down to finish quickly in CI containers (the paper uses 80
//! hyperthreads, a 1 M key space, and 30 s runs).

use medley::util::FastRng;
use medley::{TxError, TxManager};
use nbds::TxMap;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod report;
pub mod systems;
pub mod workload;

/// One operation of a composed microbenchmark transaction.
#[derive(Debug, Clone, Copy)]
pub enum MicroOp {
    /// Lookup.
    Get(u64),
    /// Insert (with the key doubling as the value).
    Insert(u64),
    /// Remove.
    Remove(u64),
}

/// A system under test for the microbenchmark: executes a short *static*
/// transaction composed of 1–10 operations (exactly the workload of
/// Figs. 7–8).
pub trait MicroSystem: Send + Sync + 'static {
    /// Human-readable name used in the CSV output.
    fn name(&self) -> &'static str;
    /// Per-thread session state.
    fn make_session(&self) -> Box<dyn MicroSession + '_>;
}

/// Per-thread handle of a [`MicroSystem`].
pub trait MicroSession {
    /// Executes one transaction; returns `true` if it committed.
    fn run_tx(&mut self, ops: &[MicroOp]) -> bool;
}

/// Workload parameters for the microbenchmark.
#[derive(Debug, Clone)]
pub struct MicroConfig {
    /// get : insert : remove ratio (e.g. `(0,1,1)`, `(2,1,1)`, `(18,1,1)`).
    pub ratio: (u32, u32, u32),
    /// Size of the key space (paper: 1 M).
    pub key_space: u64,
    /// Number of keys preloaded (paper: 0.5 M).
    pub preload: u64,
    /// Maximum number of operations composed per transaction (paper: 10).
    pub max_ops_per_tx: u64,
    /// Wall-clock duration of each measurement.
    pub duration: Duration,
}

impl Default for MicroConfig {
    fn default() -> Self {
        Self {
            ratio: (0, 1, 1),
            key_space: 1 << 17,
            preload: 1 << 16,
            max_ops_per_tx: 10,
            duration: Duration::from_millis(800),
        }
    }
}

impl MicroConfig {
    /// Generates one random transaction under this configuration.
    pub fn random_tx(&self, rng: &mut FastRng) -> Vec<MicroOp> {
        let n = 1 + rng.next_below(self.max_ops_per_tx);
        let (g, i, r) = self.ratio;
        let total = (g + i + r) as u64;
        (0..n)
            .map(|_| {
                let k = rng.next_below(self.key_space);
                let dice = rng.next_below(total);
                if dice < g as u64 {
                    MicroOp::Get(k)
                } else if dice < (g + i) as u64 {
                    MicroOp::Insert(k)
                } else {
                    MicroOp::Remove(k)
                }
            })
            .collect()
    }
}

/// Runs the microbenchmark for one system at one thread count and returns the
/// throughput in committed transactions per second.
pub fn run_micro(system: &dyn MicroSystem, cfg: &MicroConfig, threads: usize) -> f64 {
    // Preload from a single session.
    {
        let mut s = system.make_session();
        let mut rng = FastRng::new(0xC0FFEE);
        let mut loaded = 0;
        while loaded < cfg.preload {
            let k = rng.next_below(cfg.key_space);
            if s.run_tx(&[MicroOp::Insert(k)]) {
                loaded += 1;
            }
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for t in 0..threads {
            let stop = Arc::clone(&stop);
            let committed = Arc::clone(&committed);
            let cfg = cfg.clone();
            joins.push(scope.spawn(move || {
                let mut session = system.make_session();
                let mut rng = FastRng::new(t as u64 + 1);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let ops = cfg.random_tx(&mut rng);
                    if session.run_tx(&ops) {
                        local += 1;
                    }
                }
                committed.fetch_add(local, Ordering::Relaxed);
            }));
        }
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        for j in joins {
            let _ = j.join();
        }
    });
    committed.load(Ordering::Relaxed) as f64 / cfg.duration.as_secs_f64()
}

/// Runs the microbenchmark and returns the average latency per *committed*
/// transaction in nanoseconds (used by Fig. 10).
pub fn run_micro_latency(system: &dyn MicroSystem, cfg: &MicroConfig, threads: usize) -> f64 {
    let start = Instant::now();
    let tput = run_micro(system, cfg, threads);
    let _ = start;
    if tput == 0.0 {
        f64::INFINITY
    } else {
        threads as f64 * 1e9 / tput
    }
}

/// A Medley-composable map driven by a shared `TxManager`, adapted to the
/// microbenchmark interface.  Also used for txMontage (via `Durable`).
pub struct MedleyMicro<M> {
    name: &'static str,
    mgr: Arc<TxManager>,
    map: Arc<M>,
}

impl<M: TxMap<u64> + 'static> MedleyMicro<M> {
    /// Creates the adapter.
    pub fn new(name: &'static str, mgr: Arc<TxManager>, map: Arc<M>) -> Self {
        Self { name, mgr, map }
    }
}

struct MedleyMicroSession<'a, M> {
    handle: medley::ThreadHandle,
    map: &'a M,
}

impl<'a, M: TxMap<u64>> MicroSession for MedleyMicroSession<'a, M> {
    fn run_tx(&mut self, ops: &[MicroOp]) -> bool {
        let map = self.map;
        let res: Result<(), TxError> = self.handle.run(|t| {
            for op in ops {
                match *op {
                    MicroOp::Get(k) => {
                        map.get(t, k);
                    }
                    MicroOp::Insert(k) => {
                        map.insert(t, k, k);
                    }
                    MicroOp::Remove(k) => {
                        map.remove(t, k);
                    }
                }
            }
            Ok(())
        });
        res.is_ok()
    }
}

impl<M: TxMap<u64> + 'static> MicroSystem for MedleyMicro<M> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn make_session(&self) -> Box<dyn MicroSession + '_> {
        Box::new(MedleyMicroSession {
            handle: self.mgr.register(),
            map: &*self.map,
        })
    }
}

/// A Medley map running each operation as a standalone (non-transactional)
/// operation — the "TxOff" configuration of Fig. 10.
pub struct MedleyTxOff<M> {
    name: &'static str,
    mgr: Arc<TxManager>,
    map: Arc<M>,
}

impl<M: TxMap<u64> + 'static> MedleyTxOff<M> {
    /// Creates the adapter.
    pub fn new(name: &'static str, mgr: Arc<TxManager>, map: Arc<M>) -> Self {
        Self { name, mgr, map }
    }
}

struct TxOffSession<'a, M> {
    handle: medley::ThreadHandle,
    map: &'a M,
}

impl<'a, M: TxMap<u64>> MicroSession for TxOffSession<'a, M> {
    fn run_tx(&mut self, ops: &[MicroOp]) -> bool {
        // Standalone context: each operation monomorphizes down to the
        // uninstrumented nonblocking algorithm (the "TxOff" series).
        let mut cx = self.handle.nontx();
        for op in ops {
            match *op {
                MicroOp::Get(k) => {
                    self.map.get(&mut cx, k);
                }
                MicroOp::Insert(k) => {
                    self.map.insert(&mut cx, k, k);
                }
                MicroOp::Remove(k) => {
                    self.map.remove(&mut cx, k);
                }
            }
        }
        true
    }
}

impl<M: TxMap<u64> + 'static> MicroSystem for MedleyTxOff<M> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn make_session(&self) -> Box<dyn MicroSession + '_> {
        Box::new(TxOffSession {
            handle: self.mgr.register(),
            map: &*self.map,
        })
    }
}

/// Prints one CSV row of a figure series.
pub fn emit(figure: &str, system: &str, ratio: (u32, u32, u32), threads: usize, value: f64) {
    println!(
        "{figure},{system},{}:{}:{},{threads},{value:.0}",
        ratio.0, ratio.1, ratio.2
    );
}

/// Parses `--threads 1,2,4 --seconds 0.5 --keys 131072 --preload 65536` style
/// arguments shared by the figure binaries.
pub struct CommonArgs {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Seconds per measurement point.
    pub seconds: f64,
    /// Key-space size.
    pub keys: u64,
    /// Preloaded keys.
    pub preload: u64,
}

impl CommonArgs {
    /// Parses the process arguments (ignoring unknown flags).
    pub fn parse() -> Self {
        let mut out = Self {
            threads: vec![1, 2, 4],
            seconds: 0.8,
            keys: 1 << 17,
            preload: 1 << 16,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--threads" => {
                    out.threads = args[i + 1]
                        .split(',')
                        .filter_map(|s| s.parse().ok())
                        .collect();
                    i += 2;
                }
                "--seconds" => {
                    out.seconds = args[i + 1].parse().unwrap_or(out.seconds);
                    i += 2;
                }
                "--keys" => {
                    out.keys = args[i + 1].parse().unwrap_or(out.keys);
                    i += 2;
                }
                "--preload" => {
                    out.preload = args[i + 1].parse().unwrap_or(out.preload);
                    i += 2;
                }
                _ => i += 1,
            }
        }
        out
    }

    /// Reads one extra `--flag value` (or `--flag=value`) argument the
    /// shared parser does not know about (it deliberately ignores unknown
    /// flags so binaries can layer their own), falling back to `default`
    /// only when the flag is absent.  A present-but-unparsable value is a
    /// hard error: silently falling back would e.g. turn a CI smoke run
    /// with a mistyped `--warehouses` into a full-scale TPC-C load.  Works
    /// for any `FromStr` value type (`u64` scales, `f64` skew parameters).
    pub fn extra_flag<T: std::str::FromStr>(name: &str, default: T) -> T {
        let args: Vec<String> = std::env::args().collect();
        let eq_prefix = format!("{name}=");
        let raw = args.iter().enumerate().find_map(|(i, a)| {
            if let Some(v) = a.strip_prefix(&eq_prefix) {
                Some(v.to_string())
            } else if a == name {
                Some(
                    args.get(i + 1)
                        .unwrap_or_else(|| panic!("{name} requires a value"))
                        .clone(),
                )
            } else {
                None
            }
        });
        match raw {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("invalid value {v:?} for {name}")),
        }
    }

    /// Builds a [`MicroConfig`] with the given operation ratio.
    pub fn micro_config(&self, ratio: (u32, u32, u32)) -> MicroConfig {
        MicroConfig {
            ratio,
            key_space: self.keys,
            preload: self.preload,
            max_ops_per_tx: 10,
            duration: Duration::from_secs_f64(self.seconds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_tx_respects_bounds() {
        let cfg = MicroConfig::default();
        let mut rng = FastRng::new(1);
        for _ in 0..100 {
            let tx = cfg.random_tx(&mut rng);
            assert!(!tx.is_empty() && tx.len() <= 10);
        }
    }

    #[test]
    fn read_only_ratio_generates_only_gets() {
        let cfg = MicroConfig {
            ratio: (1, 0, 0),
            ..Default::default()
        };
        let mut rng = FastRng::new(2);
        for _ in 0..50 {
            for op in cfg.random_tx(&mut rng) {
                assert!(matches!(op, MicroOp::Get(_)));
            }
        }
    }

    #[test]
    fn micro_harness_runs_medley_end_to_end() {
        let mgr = TxManager::with_max_threads(16);
        let map = Arc::new(nbds::MichaelHashMap::<u64>::with_buckets(1 << 10));
        let sys = MedleyMicro::new("Medley-hash", mgr, map);
        let cfg = MicroConfig {
            key_space: 1 << 10,
            preload: 1 << 8,
            duration: Duration::from_millis(50),
            ..Default::default()
        };
        let tput = run_micro(&sys, &cfg, 1);
        assert!(tput > 0.0, "harness must commit transactions");
    }
}
