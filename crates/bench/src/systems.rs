//! Microbenchmark adapters for the baseline systems (OneFile, POneFile,
//! TDSL, LFTT) and constructors for the Medley / txMontage configurations.

use crate::{MedleyMicro, MicroOp, MicroSession, MicroSystem};
use medley::TxManager;
use nbds::TxMap;
use pmem::{DomainBackend, EpochAdvancer, NvmCostModel, PersistenceDomain};
use std::sync::Arc;
use std::time::Duration;
use txmontage::{Durable, DurableHashMap, DurableSkipList};

// ---------------------------------------------------------------------------
// txMontage
// ---------------------------------------------------------------------------

/// The txMontage configuration of the figure benchmarks: a durable Medley
/// map over a fresh manager and persistence domain, with a live epoch
/// advancer that is stopped when the setup is dropped.  The `backend`
/// parameter selects the payload store (arena by default; the Mutex-slab
/// baseline for A/B runs).
pub struct TxMontageMicro<M> {
    inner: MedleyMicro<Durable<M>>,
    domain: Arc<PersistenceDomain>,
    _advancer: EpochAdvancer,
}

impl TxMontageMicro<nbds::MichaelHashMap<(u64, u64)>> {
    /// Durable hash map (Fig. 7's txMontage series).
    pub fn hash_map(buckets: usize, backend: DomainBackend, advancer_period: Duration) -> Self {
        let mgr = TxManager::new();
        let domain =
            PersistenceDomain::with_backend(Arc::clone(&mgr), NvmCostModel::OPTANE_LIKE, backend);
        let map = Arc::new(DurableHashMap::hash_map(buckets, Arc::clone(&domain)));
        let advancer = EpochAdvancer::spawn(Arc::clone(&domain), advancer_period);
        Self {
            inner: MedleyMicro::new("txMontage", mgr, map),
            domain,
            _advancer: advancer,
        }
    }
}

impl TxMontageMicro<nbds::SkipList<(u64, u64)>> {
    /// Durable skiplist (Fig. 8's txMontage series).
    pub fn skip_list(backend: DomainBackend, advancer_period: Duration) -> Self {
        let mgr = TxManager::new();
        let domain =
            PersistenceDomain::with_backend(Arc::clone(&mgr), NvmCostModel::OPTANE_LIKE, backend);
        let map = Arc::new(DurableSkipList::skip_list(Arc::clone(&domain)));
        let advancer = EpochAdvancer::spawn(Arc::clone(&domain), advancer_period);
        Self {
            inner: MedleyMicro::new("txMontage", mgr, map),
            domain,
            _advancer: advancer,
        }
    }
}

impl<M> TxMontageMicro<M> {
    /// The persistence domain (for flush/fence accounting).
    pub fn domain(&self) -> &Arc<PersistenceDomain> {
        &self.domain
    }
}

impl<M: TxMap<(u64, u64)> + 'static> MicroSystem for TxMontageMicro<M> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn make_session(&self) -> Box<dyn MicroSession + '_> {
        self.inner.make_session()
    }
}

// ---------------------------------------------------------------------------
// OneFile / POneFile
// ---------------------------------------------------------------------------

/// OneFile-style STM hash map under the microbenchmark interface.
pub struct OneFileMicro {
    name: &'static str,
    stm: Arc<onefile::OneFileStm>,
    map: Arc<onefile::OneFileMap>,
}

impl OneFileMicro {
    /// Transient OneFile.
    pub fn transient(buckets: usize) -> Self {
        let stm = onefile::OneFileStm::new();
        let map = Arc::new(onefile::OneFileMap::new(Arc::clone(&stm), buckets));
        Self {
            name: "OneFile",
            stm,
            map,
        }
    }

    /// Persistent OneFile (eager flushes through simulated NVM).
    pub fn persistent(buckets: usize, nvm: Arc<pmem::SimNvm>) -> Self {
        let stm = onefile::OneFileStm::new_persistent(nvm);
        let map = Arc::new(onefile::OneFileMap::new(Arc::clone(&stm), buckets));
        Self {
            name: "POneFile",
            stm,
            map,
        }
    }
}

struct OneFileSession<'a> {
    stm: &'a onefile::OneFileStm,
    map: &'a onefile::OneFileMap,
}

impl<'a> MicroSession for OneFileSession<'a> {
    fn run_tx(&mut self, ops: &[MicroOp]) -> bool {
        let read_only = ops.iter().all(|o| matches!(o, MicroOp::Get(_)));
        if read_only {
            // OneFile's headline optimization: read-only transactions need no
            // read set, only sequence validation.
            self.stm.read_tx(|tx| {
                for op in ops {
                    if let MicroOp::Get(k) = op {
                        self.map.get_r(tx, *k);
                    }
                }
            });
            return true;
        }
        self.stm
            .write_tx(|tx| {
                for op in ops {
                    match *op {
                        MicroOp::Get(k) => {
                            self.map.get_w(tx, k);
                        }
                        MicroOp::Insert(k) => {
                            self.map.insert_w(tx, k, k);
                        }
                        MicroOp::Remove(k) => {
                            self.map.remove_w(tx, k);
                        }
                    }
                }
                Ok(())
            })
            .is_ok()
    }
}

impl MicroSystem for OneFileMicro {
    fn name(&self) -> &'static str {
        self.name
    }
    fn make_session(&self) -> Box<dyn MicroSession + '_> {
        Box::new(OneFileSession {
            stm: &self.stm,
            map: &self.map,
        })
    }
}

// ---------------------------------------------------------------------------
// TDSL
// ---------------------------------------------------------------------------

/// TDSL-style blocking transactional map under the microbenchmark interface.
pub struct TdslMicro {
    map: Arc<tdsl::TdslMap>,
}

impl TdslMicro {
    /// Creates the adapter.
    pub fn new() -> Self {
        Self {
            map: Arc::new(tdsl::TdslMap::new()),
        }
    }
}

impl Default for TdslMicro {
    fn default() -> Self {
        Self::new()
    }
}

struct TdslSession<'a> {
    map: &'a tdsl::TdslMap,
}

impl<'a> MicroSession for TdslSession<'a> {
    fn run_tx(&mut self, ops: &[MicroOp]) -> bool {
        self.map
            .run(|tx| {
                for op in ops {
                    match *op {
                        MicroOp::Get(k) => {
                            self.map.get_tx(tx, k);
                        }
                        MicroOp::Insert(k) => {
                            self.map.insert_tx(tx, k, k);
                        }
                        MicroOp::Remove(k) => {
                            self.map.remove_tx(tx, k);
                        }
                    }
                }
                Ok(())
            })
            .is_ok()
    }
}

impl MicroSystem for TdslMicro {
    fn name(&self) -> &'static str {
        "TDSL"
    }
    fn make_session(&self) -> Box<dyn MicroSession + '_> {
        Box::new(TdslSession { map: &self.map })
    }
}

// ---------------------------------------------------------------------------
// LFTT
// ---------------------------------------------------------------------------

/// LFTT-style static-transaction map under the microbenchmark interface.
pub struct LfttMicro {
    map: Arc<lftt::LfttMap>,
}

impl LfttMicro {
    /// Creates the adapter with `buckets` hash buckets.
    pub fn new(buckets: usize) -> Self {
        Self {
            map: Arc::new(lftt::LfttMap::new(buckets)),
        }
    }
}

struct LfttSession<'a> {
    map: &'a lftt::LfttMap,
}

impl<'a> MicroSession for LfttSession<'a> {
    fn run_tx(&mut self, ops: &[MicroOp]) -> bool {
        let static_ops: Vec<lftt::LfttOp> = ops
            .iter()
            .map(|op| match *op {
                MicroOp::Get(k) => lftt::LfttOp::Get(k),
                MicroOp::Insert(k) => lftt::LfttOp::Insert(k, k),
                MicroOp::Remove(k) => lftt::LfttOp::Remove(k),
            })
            .collect();
        self.map.execute(&static_ops).is_some()
    }
}

impl MicroSystem for LfttMicro {
    fn name(&self) -> &'static str {
        "LFTT"
    }
    fn make_session(&self) -> Box<dyn MicroSession + '_> {
        Box::new(LfttSession { map: &self.map })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_micro, MicroConfig};
    use std::time::Duration;

    fn tiny_cfg() -> MicroConfig {
        MicroConfig {
            ratio: (2, 1, 1),
            key_space: 1 << 10,
            preload: 1 << 8,
            max_ops_per_tx: 5,
            duration: Duration::from_millis(40),
        }
    }

    #[test]
    fn all_baseline_adapters_run() {
        let cfg = tiny_cfg();
        assert!(run_micro(&OneFileMicro::transient(1 << 10), &cfg, 2) > 0.0);
        assert!(run_micro(&TdslMicro::new(), &cfg, 2) > 0.0);
        assert!(run_micro(&LfttMicro::new(1 << 10), &cfg, 2) > 0.0);
        let nvm = Arc::new(pmem::SimNvm::new(pmem::NvmCostModel::ZERO));
        assert!(run_micro(&OneFileMicro::persistent(1 << 10, nvm), &cfg, 2) > 0.0);
    }

    #[test]
    fn txmontage_adapter_runs_and_writes_back() {
        let cfg = tiny_cfg();
        let sys = TxMontageMicro::hash_map(1 << 10, DomainBackend::Arena, Duration::from_millis(2));
        assert!(run_micro(&sys, &cfg, 2) > 0.0);
        let (flushes, fences) = sys.domain().nvm().stats().snapshot();
        assert!(
            flushes > 0 && fences > 0,
            "advancer must write payloads back"
        );
    }
}
