//! NBTC-transformed version of Michael's chained lock-free hash table
//! (paper Fig. 2): a fixed array of buckets, each an ordered
//! [`MichaelList`].
//!
//! The paper's microbenchmark uses 1 M buckets over a 1 M key space; the
//! default here matches, and [`MichaelHashMap::with_buckets`] lets tests and
//! benchmarks pick smaller tables.
//!
//! Operations delegate to the per-bucket [`MichaelList`], so they inherit its
//! commit fast-path eligibility: a transaction made of one `insert`/`put`/
//! `remove` commits with a single plain CAS and lookup-only transactions
//! commit descriptor-free (see `medley::TxManager` fast paths).
//!
//! Under the lazy-publication runtime even *multi*-operation transactions
//! leave the buckets untouched while they execute: every critical CAS is
//! buffered thread-locally and the counted reads registered by the list
//! traversals stay in the owner-private read buffer, so concurrent
//! standalone operations on the same buckets never encounter (or help) a
//! descriptor before the transaction reaches its commit.

use crate::counter::LenCounter;
use crate::list::MichaelList;
use medley::Ctx;

/// Default number of buckets (matches the paper's configuration).
pub const DEFAULT_BUCKETS: usize = 1 << 20;

/// A lock-free, NBTC-composable chained hash map from `u64` keys to `V`.
pub struct MichaelHashMap<V> {
    buckets: Box<[MichaelList<V>]>,
    mask: u64,
    /// Striped live-item counter.  Deltas follow the transactional outcome
    /// discipline: applied immediately standalone, post-commit in a
    /// transaction, never on abort (see [`LenCounter`]).
    count: LenCounter,
}

impl<V> MichaelHashMap<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Creates a map with the default bucket count.
    pub fn new() -> Self {
        Self::with_buckets(DEFAULT_BUCKETS)
    }

    /// Creates a map with `buckets` buckets (rounded up to a power of two).
    pub fn with_buckets(buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(1);
        let buckets = (0..n).map(|_| MichaelList::new()).collect::<Vec<_>>();
        Self {
            buckets: buckets.into_boxed_slice(),
            mask: (n - 1) as u64,
            count: LenCounter::new(),
        }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Committed live-item count (relaxed striped sum; see
    /// [`LenCounter::len`] for the consistency caveats).
    pub fn len(&self) -> u64 {
        self.count.len()
    }

    /// Whether [`MichaelHashMap::len`] currently reads zero.
    pub fn is_empty(&self) -> bool {
        self.count.is_empty()
    }

    /// Registers a counter delta to apply when the enclosing operation's
    /// outcome is decided (immediately standalone, post-commit in a
    /// transaction, dropped on abort).
    fn count_delta<C: Ctx>(&self, cx: &mut C, delta: i64) {
        let counter_addr = &self.count as *const LenCounter as usize;
        cx.add_cleanup(move |h| {
            // SAFETY: the map outlives the transaction (caller contract —
            // the same one the list unlink cleanups rely on).
            let count = unsafe { &*(counter_addr as *const LenCounter) };
            count.add(h.tid(), delta);
        });
    }

    #[inline]
    fn bucket(&self, key: u64) -> &MichaelList<V> {
        // Fibonacci hashing spreads adjacent integer keys across buckets.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.buckets[(h & self.mask) as usize]
    }

    /// Looks up `key`.
    pub fn get<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        self.bucket(key).get(cx, key)
    }

    /// Whether `key` is present (counted-read traversal; never clones the
    /// value).
    pub fn contains<C: Ctx>(&self, cx: &mut C, key: u64) -> bool {
        self.bucket(key).contains(cx, key)
    }

    /// Inserts `key -> val` only if absent; returns `true` on success.
    pub fn insert<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> bool {
        let ok = self.bucket(key).insert(cx, key, val);
        if ok {
            self.count_delta(cx, 1);
        }
        ok
    }

    /// Inserts or replaces; returns the previous value if any.
    pub fn put<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> Option<V> {
        let old = self.bucket(key).put(cx, key, val);
        if old.is_none() {
            self.count_delta(cx, 1);
        }
        old
    }

    /// Removes `key`; returns its value if it was present.
    pub fn remove<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        let old = self.bucket(key).remove(cx, key);
        if old.is_some() {
            self.count_delta(cx, -1);
        }
        old
    }

    /// Quiescent count of live keys (test/diagnostic helper).
    pub fn len_quiescent(&self) -> usize {
        self.buckets.iter().map(|b| b.len_quiescent()).sum()
    }

    /// Quiescent snapshot of all `(key, value)` pairs (unordered across
    /// buckets).
    pub fn snapshot(&self) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        for b in self.buckets.iter() {
            out.extend(b.snapshot());
        }
        out
    }
}

impl<V> Default for MichaelHashMap<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medley::{AbortReason, TxManager, TxResult};
    use std::sync::Arc;

    fn small_map() -> MichaelHashMap<u64> {
        MichaelHashMap::with_buckets(64)
    }

    #[test]
    fn basic_crud() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let map = small_map();
        assert_eq!(map.get(&mut h.nontx(), 1), None);
        assert!(map.insert(&mut h.nontx(), 1, 10));
        assert!(!map.insert(&mut h.nontx(), 1, 11));
        assert_eq!(map.get(&mut h.nontx(), 1), Some(10));
        assert_eq!(map.put(&mut h.nontx(), 1, 12), Some(10));
        assert_eq!(map.put(&mut h.nontx(), 2, 20), None);
        assert_eq!(map.remove(&mut h.nontx(), 1), Some(12));
        assert_eq!(map.remove(&mut h.nontx(), 1), None);
        assert_eq!(map.len_quiescent(), 1);
    }

    #[test]
    fn len_counter_tracks_commits_only() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let map = small_map();
        assert!(map.is_empty());
        assert!(map.insert(&mut h.nontx(), 1, 10));
        assert_eq!(map.put(&mut h.nontx(), 2, 20), None);
        assert_eq!(
            map.put(&mut h.nontx(), 2, 21),
            Some(20),
            "replace is neutral"
        );
        assert_eq!(map.len(), 2);
        let res: TxResult<()> = h.run(|t| {
            assert!(map.insert(t, 3, 30));
            assert_eq!(map.remove(t, 1), Some(10));
            Err(t.abort(AbortReason::Explicit))
        });
        assert!(res.is_err());
        assert_eq!(map.len(), 2, "aborted deltas must not land");
        let res: TxResult<()> = h.run(|t| {
            assert!(map.insert(t, 3, 30));
            assert_eq!(map.remove(t, 1), Some(10));
            Ok(())
        });
        assert!(res.is_ok());
        assert_eq!(map.len(), 2, "+1 and -1 in one committed transaction");
        assert_eq!(map.len() as usize, map.len_quiescent());
    }

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        let m = MichaelHashMap::<u64>::with_buckets(100);
        assert_eq!(m.bucket_count(), 128);
        let m = MichaelHashMap::<u64>::with_buckets(1);
        assert_eq!(m.bucket_count(), 1);
    }

    #[test]
    fn many_keys_single_thread() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let map = MichaelHashMap::with_buckets(256);
        for k in 0..2_000u64 {
            assert!(map.insert(&mut h.nontx(), k, k * 3));
        }
        assert_eq!(map.len_quiescent(), 2_000);
        for k in 0..2_000u64 {
            assert_eq!(map.get(&mut h.nontx(), k), Some(k * 3));
        }
        for k in (0..2_000u64).step_by(2) {
            assert_eq!(map.remove(&mut h.nontx(), k), Some(k * 3));
        }
        assert_eq!(map.len_quiescent(), 1_000);
    }

    #[test]
    fn cross_table_transfer_transaction() {
        // The paper's Fig. 3 example: transfer between accounts in two hash
        // tables, atomically.
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let ht1 = small_map();
        let ht2 = small_map();
        assert!(ht1.insert(&mut h.nontx(), 100, 500)); // account 100 with balance 500
        assert!(ht2.insert(&mut h.nontx(), 200, 50));

        let transfer = |h: &mut medley::ThreadHandle, amount: u64| -> TxResult<()> {
            h.run(|h| {
                let v1 = ht1.get(h, 100);
                let v2 = ht2.get(h, 200);
                match v1 {
                    Some(b) if b >= amount => {
                        ht1.put(h, 100, b - amount);
                        ht2.put(h, 200, v2.unwrap_or(0) + amount);
                        Ok(())
                    }
                    _ => Err(h.abort(AbortReason::Explicit)),
                }
            })
        };

        assert!(transfer(&mut h, 120).is_ok());
        assert_eq!(ht1.get(&mut h.nontx(), 100), Some(380));
        assert_eq!(ht2.get(&mut h.nontx(), 200), Some(170));

        // Insufficient funds: the explicit abort leaves both tables untouched.
        assert!(transfer(&mut h, 1_000).is_err());
        assert_eq!(ht1.get(&mut h.nontx(), 100), Some(380));
        assert_eq!(ht2.get(&mut h.nontx(), 200), Some(170));
    }

    #[test]
    fn concurrent_mixed_workload_consistency() {
        const THREADS: usize = 4;
        const OPS: usize = 600;
        const KEY_SPACE: u64 = 128;
        let mgr = TxManager::new();
        let map = Arc::new(MichaelHashMap::<u64>::with_buckets(64));
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let mgr = Arc::clone(&mgr);
            let map = Arc::clone(&map);
            joins.push(std::thread::spawn(move || {
                let mut h = mgr.register();
                let mut rng = medley::util::FastRng::new((t + 1) as u64);
                for _ in 0..OPS {
                    let k = rng.next_below(KEY_SPACE);
                    match rng.next_below(3) {
                        0 => {
                            map.put(&mut h.nontx(), k, k * 2);
                        }
                        1 => {
                            map.remove(&mut h.nontx(), k);
                        }
                        _ => {
                            if let Some(v) = map.get(&mut h.nontx(), k) {
                                assert_eq!(v, k * 2, "value must always match its key");
                            }
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        for (k, v) in map.snapshot() {
            assert_eq!(v, k * 2);
        }
    }

    #[test]
    fn concurrent_transactions_across_two_tables() {
        // Move tokens between two tables; the combined number of tokens is
        // invariant under concurrent transactional transfers.
        const THREADS: usize = 4;
        const OPS: usize = 200;
        const KEYS: u64 = 16;
        let mgr = TxManager::new();
        let a = Arc::new(MichaelHashMap::<u64>::with_buckets(32));
        let b = Arc::new(MichaelHashMap::<u64>::with_buckets(32));
        {
            let mut h = mgr.register();
            for k in 0..KEYS {
                assert!(a.insert(&mut h.nontx(), k, 10));
                assert!(b.insert(&mut h.nontx(), k, 10));
            }
        }
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let mgr = Arc::clone(&mgr);
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            joins.push(std::thread::spawn(move || {
                let mut h = mgr.register();
                let mut rng = medley::util::FastRng::new((t + 7) as u64);
                for _ in 0..OPS {
                    let k = rng.next_below(KEYS);
                    let a_to_b = rng.next_below(2) == 0;
                    let _ = h.run(|h| {
                        let (src, dst) = if a_to_b { (&a, &b) } else { (&b, &a) };
                        let sv = src.get(h, k).unwrap_or(0);
                        let dv = dst.get(h, k).unwrap_or(0);
                        if sv == 0 {
                            return Err(h.abort(AbortReason::Explicit));
                        }
                        src.put(h, k, sv - 1);
                        dst.put(h, k, dv + 1);
                        Ok(())
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let total: u64 = a
            .snapshot()
            .iter()
            .chain(b.snapshot().iter())
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(total, KEYS * 10 * 2);
    }
}
