//! Tagged-pointer helpers.
//!
//! All node pointers stored in [`medley::CasWord`]s are at least 8-byte
//! aligned, so the low bit is free to carry the Harris/Michael deletion mark
//! ("this node is logically removed").  The descriptor-vs-value distinction
//! of Medley lives in the *counter* half of the `CasWord`, so value tagging
//! and transactional instrumentation never collide.

/// The logical-deletion mark.
pub const MARK: u64 = 1;

/// Returns `bits` with the deletion mark set.
#[inline]
pub fn marked(bits: u64) -> u64 {
    bits | MARK
}

/// Returns `bits` with the deletion mark cleared.
#[inline]
pub fn unmarked(bits: u64) -> u64 {
    bits & !MARK
}

/// Whether the deletion mark is set.
#[inline]
pub fn is_marked(bits: u64) -> bool {
    bits & MARK == MARK
}

/// Converts stored bits to a (possibly null) node pointer, dropping any mark.
#[inline]
pub fn as_ptr<T>(bits: u64) -> *mut T {
    unmarked(bits) as usize as *mut T
}

/// Converts a node pointer to its stored representation (unmarked).
#[inline]
pub fn from_ptr<T>(ptr: *mut T) -> u64 {
    debug_assert_eq!(
        ptr as usize as u64 & MARK,
        0,
        "node pointers must be aligned"
    );
    ptr as usize as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_roundtrip() {
        let bits = 0x1000u64;
        assert!(!is_marked(bits));
        let m = marked(bits);
        assert!(is_marked(m));
        assert_eq!(unmarked(m), bits);
    }

    #[test]
    fn pointer_roundtrip() {
        let b = Box::into_raw(Box::new(7u64));
        let bits = from_ptr(b);
        assert_eq!(as_ptr::<u64>(bits), b);
        assert_eq!(as_ptr::<u64>(marked(bits)), b, "as_ptr strips the mark");
        unsafe { drop(Box::from_raw(b)) };
    }

    #[test]
    fn null_is_representable() {
        assert_eq!(as_ptr::<u64>(0), std::ptr::null_mut());
        assert!(!is_marked(0));
    }
}
