//! Common traits for transactional containers.
//!
//! The benchmark harness, the TPC-C layer, and the integration tests all work
//! against these traits so that the Medley hash table, the Medley skiplist,
//! the txMontage persistent maps, and the baseline systems (OneFile, TDSL,
//! LFTT) can be swapped freely — mirroring how the paper runs the same
//! workloads over every competitor.
//!
//! All operations are generic over a [`Ctx`] execution context, so a single
//! `impl` serves both standalone calls (through [`medley::NonTx`], where the
//! instrumentation monomorphizes away) and transactional calls (through
//! [`medley::Txn`]).  The price is that the traits are not object-safe;
//! harness code is generic over `M: TxMap<V>` instead of boxing
//! `dyn TxMap`.

use medley::Ctx;

/// A map from `u64` keys to values of type `V` whose operations can
/// participate in Medley transactions (called with a [`medley::Txn`]
/// context) or run standalone (called with a [`medley::NonTx`] context).
pub trait TxMap<V>: Send + Sync {
    /// Looks up `key`.
    fn get<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V>;
    /// Inserts `key -> val` only if absent; returns `true` on success.
    fn insert<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> bool;
    /// Inserts or replaces; returns the previous value if any.
    fn put<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> Option<V>;
    /// Removes `key`; returns its value if present.
    fn remove<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V>;
    /// Whether `key` is present.
    ///
    /// Deliberately **required** (no default): a membership test must be a
    /// counted-read traversal that registers its linearizing load and never
    /// clones `V`.  An earlier default delegated to `self.get(..).is_some()`,
    /// which silently cloned the value for any container that forgot to
    /// override it — making the choice explicit turns that performance trap
    /// into a compile error.  (See the `contains_never_clones_the_value`
    /// test for the enforcement on the in-crate containers.)
    fn contains<C: Ctx>(&self, cx: &mut C, key: u64) -> bool;
}

/// An **ordered** map: a [`TxMap`] whose keys additionally support a
/// transactional range cursor.
///
/// Implemented by the skiplist (and its durable wrapper in `txmontage`);
/// [`crate::MichaelHashMap`] and [`crate::SplitOrderedMap`] stay
/// deliberately unordered — hashing destroys key order, so an ordered
/// cursor over them would be a lie the type system should not tell.
pub trait TxOrderedMap<V>: TxMap<V> {
    /// Collects up to `limit` `(key, value)` pairs with keys in `bounds`,
    /// in ascending key order.
    ///
    /// Under a transactional context the cursor's linearizing loads join the
    /// read set (counted reads), so a *committed* scan is an atomic snapshot
    /// of the traversed window; standalone the walk is uninstrumented and
    /// makes no cross-key atomicity claim.
    fn range<C: Ctx>(
        &self,
        cx: &mut C,
        bounds: std::ops::Range<u64>,
        limit: usize,
    ) -> Vec<(u64, V)>;
}

/// A FIFO queue whose operations can participate in Medley transactions or
/// run standalone — the queue-shaped counterpart of [`TxMap`], so queue
/// workloads are harness-swappable too.
pub trait TxQueue<V>: Send + Sync {
    /// Appends `val` at the tail.
    fn enqueue<C: Ctx>(&self, cx: &mut C, val: V);
    /// Removes and returns the head value, or `None` if empty.
    fn dequeue<C: Ctx>(&self, cx: &mut C) -> Option<V>;
    /// Whether the queue is empty (a single linearizing observation).
    fn is_empty<C: Ctx>(&self, cx: &mut C) -> bool;
}

impl<V> TxMap<V> for crate::MichaelHashMap<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn get<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        crate::MichaelHashMap::get(self, cx, key)
    }
    fn insert<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> bool {
        crate::MichaelHashMap::insert(self, cx, key, val)
    }
    fn put<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> Option<V> {
        crate::MichaelHashMap::put(self, cx, key, val)
    }
    fn remove<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        crate::MichaelHashMap::remove(self, cx, key)
    }
    fn contains<C: Ctx>(&self, cx: &mut C, key: u64) -> bool {
        crate::MichaelHashMap::contains(self, cx, key)
    }
}

impl<V> TxMap<V> for crate::SkipList<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn get<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        crate::SkipList::get(self, cx, key)
    }
    fn insert<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> bool {
        crate::SkipList::insert(self, cx, key, val)
    }
    fn put<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> Option<V> {
        crate::SkipList::put(self, cx, key, val)
    }
    fn remove<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        crate::SkipList::remove(self, cx, key)
    }
    fn contains<C: Ctx>(&self, cx: &mut C, key: u64) -> bool {
        crate::SkipList::contains(self, cx, key)
    }
}

impl<V> TxOrderedMap<V> for crate::SkipList<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn range<C: Ctx>(
        &self,
        cx: &mut C,
        bounds: std::ops::Range<u64>,
        limit: usize,
    ) -> Vec<(u64, V)> {
        crate::SkipList::range(self, cx, bounds, limit)
    }
}

impl<V> TxMap<V> for crate::MichaelList<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn get<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        crate::MichaelList::get(self, cx, key)
    }
    fn insert<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> bool {
        crate::MichaelList::insert(self, cx, key, val)
    }
    fn put<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> Option<V> {
        crate::MichaelList::put(self, cx, key, val)
    }
    fn remove<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        crate::MichaelList::remove(self, cx, key)
    }
    fn contains<C: Ctx>(&self, cx: &mut C, key: u64) -> bool {
        crate::MichaelList::contains(self, cx, key)
    }
}

impl<V> TxMap<V> for crate::SplitOrderedMap<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn get<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        crate::SplitOrderedMap::get(self, cx, key)
    }
    fn insert<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> bool {
        crate::SplitOrderedMap::insert(self, cx, key, val)
    }
    fn put<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> Option<V> {
        crate::SplitOrderedMap::put(self, cx, key, val)
    }
    fn remove<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        crate::SplitOrderedMap::remove(self, cx, key)
    }
    fn contains<C: Ctx>(&self, cx: &mut C, key: u64) -> bool {
        crate::SplitOrderedMap::contains(self, cx, key)
    }
}

impl<V> TxQueue<V> for crate::MsQueue<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn enqueue<C: Ctx>(&self, cx: &mut C, val: V) {
        crate::MsQueue::enqueue(self, cx, val)
    }
    fn dequeue<C: Ctx>(&self, cx: &mut C) -> Option<V> {
        crate::MsQueue::dequeue(self, cx)
    }
    fn is_empty<C: Ctx>(&self, cx: &mut C) -> bool {
        crate::MsQueue::is_empty(self, cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medley::{ThreadHandle, TxManager};

    fn exercise<M: TxMap<u64>>(map: &M, h: &mut ThreadHandle) {
        let cx = &mut h.nontx();
        assert!(!map.contains(cx, 9));
        assert!(map.insert(cx, 9, 90));
        assert!(map.contains(cx, 9));
        assert_eq!(map.get(cx, 9), Some(90));
        assert_eq!(map.put(cx, 9, 91), Some(90));
        assert_eq!(map.remove(cx, 9), Some(91));
        assert_eq!(map.remove(cx, 9), None);
    }

    #[test]
    fn all_structures_satisfy_the_trait() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        exercise(&crate::MichaelHashMap::<u64>::with_buckets(16), &mut h);
        exercise(&crate::SkipList::<u64>::new(), &mut h);
        exercise(&crate::MichaelList::<u64>::new(), &mut h);
        exercise(&crate::SplitOrderedMap::<u64>::new(), &mut h);
    }

    #[test]
    fn queue_trait_is_usable_in_both_contexts() {
        fn drive<Q: TxQueue<u64>>(q: &Q, h: &mut ThreadHandle) {
            assert!(q.is_empty(&mut h.nontx()));
            q.enqueue(&mut h.nontx(), 5);
            let moved: medley::TxResult<Option<u64>> = h.run(|t| {
                let v = q.dequeue(t);
                if let Some(v) = v {
                    q.enqueue(t, v + 1);
                }
                Ok(v)
            });
            assert_eq!(moved, Ok(Some(5)));
            assert_eq!(q.dequeue(&mut h.nontx()), Some(6));
        }
        let mgr = TxManager::new();
        let mut h = mgr.register();
        drive(&crate::MsQueue::<u64>::new(), &mut h);
    }

    #[test]
    fn contains_works_transactionally_without_cloning() {
        // `contains` must register a validatable read: a read-only
        // transaction made of `contains` calls commits descriptor-free.
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let map = crate::MichaelHashMap::<String>::with_buckets(16);
        assert!(map.insert(&mut h.nontx(), 1, "one".to_string()));
        let res = h.run(|t| Ok((map.contains(t, 1), map.contains(t, 2))));
        assert_eq!(res, Ok((true, false)));
        h.flush_stats();
        assert!(mgr.stats().snapshot().ro_commits >= 1);
    }

    /// A value type whose `Clone` counts invocations: proof that no in-crate
    /// container answers `contains` through the old cloning `get` shortcut.
    #[derive(Debug)]
    struct CountsClones(std::sync::Arc<std::sync::atomic::AtomicU64>);
    impl Clone for CountsClones {
        fn clone(&self) -> Self {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Self(std::sync::Arc::clone(&self.0))
        }
    }

    #[test]
    fn contains_never_clones_the_value() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        fn probe<M: TxMap<CountsClones>>(map: &M, h: &mut medley::ThreadHandle) {
            let clones = Arc::new(AtomicU64::new(0));
            assert!(map.insert(&mut h.nontx(), 1, CountsClones(Arc::clone(&clones))));
            let inserted = clones.load(Ordering::Relaxed);
            assert!(map.contains(&mut h.nontx(), 1));
            assert!(!map.contains(&mut h.nontx(), 2));
            let res = h.run(|t| Ok((map.contains(t, 1), map.contains(t, 2))));
            assert_eq!(res, Ok((true, false)));
            assert_eq!(
                clones.load(Ordering::Relaxed),
                inserted,
                "contains must not clone the value"
            );
        }
        let mgr = TxManager::new();
        let mut h = mgr.register();
        probe(
            &crate::MichaelHashMap::<CountsClones>::with_buckets(16),
            &mut h,
        );
        probe(&crate::MichaelList::<CountsClones>::new(), &mut h);
        probe(&crate::SkipList::<CountsClones>::new(), &mut h);
        probe(&crate::SplitOrderedMap::<CountsClones>::new(), &mut h);
    }
}
