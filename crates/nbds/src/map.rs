//! A common trait for transactional key/value maps.
//!
//! The benchmark harness, the TPC-C layer, and the integration tests all work
//! against this trait so that the Medley hash table, the Medley skiplist, the
//! txMontage persistent maps, and the baseline systems (OneFile, TDSL, LFTT)
//! can be swapped freely — mirroring how the paper runs the same workloads
//! over every competitor.

use medley::ThreadHandle;

/// A map from `u64` keys to values of type `V` whose operations can
/// participate in Medley transactions (or run standalone).
pub trait TxMap<V>: Send + Sync {
    /// Looks up `key`.
    fn get(&self, h: &mut ThreadHandle, key: u64) -> Option<V>;
    /// Inserts `key -> val` only if absent; returns `true` on success.
    fn insert(&self, h: &mut ThreadHandle, key: u64, val: V) -> bool;
    /// Inserts or replaces; returns the previous value if any.
    fn put(&self, h: &mut ThreadHandle, key: u64, val: V) -> Option<V>;
    /// Removes `key`; returns its value if present.
    fn remove(&self, h: &mut ThreadHandle, key: u64) -> Option<V>;
    /// Whether `key` is present.
    fn contains(&self, h: &mut ThreadHandle, key: u64) -> bool {
        self.get(h, key).is_some()
    }
}

impl<V> TxMap<V> for crate::MichaelHashMap<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn get(&self, h: &mut ThreadHandle, key: u64) -> Option<V> {
        MichaelHashMapExt::get(self, h, key)
    }
    fn insert(&self, h: &mut ThreadHandle, key: u64, val: V) -> bool {
        crate::MichaelHashMap::insert(self, h, key, val)
    }
    fn put(&self, h: &mut ThreadHandle, key: u64, val: V) -> Option<V> {
        crate::MichaelHashMap::put(self, h, key, val)
    }
    fn remove(&self, h: &mut ThreadHandle, key: u64) -> Option<V> {
        crate::MichaelHashMap::remove(self, h, key)
    }
}

// Helper alias to avoid infinite recursion between the trait method and the
// inherent method of the same name.
trait MichaelHashMapExt<V> {
    fn get(&self, h: &mut ThreadHandle, key: u64) -> Option<V>;
}
impl<V> MichaelHashMapExt<V> for crate::MichaelHashMap<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn get(&self, h: &mut ThreadHandle, key: u64) -> Option<V> {
        crate::MichaelHashMap::get(self, h, key)
    }
}

impl<V> TxMap<V> for crate::SkipList<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn get(&self, h: &mut ThreadHandle, key: u64) -> Option<V> {
        crate::SkipList::get(self, h, key)
    }
    fn insert(&self, h: &mut ThreadHandle, key: u64, val: V) -> bool {
        crate::SkipList::insert(self, h, key, val)
    }
    fn put(&self, h: &mut ThreadHandle, key: u64, val: V) -> Option<V> {
        crate::SkipList::put(self, h, key, val)
    }
    fn remove(&self, h: &mut ThreadHandle, key: u64) -> Option<V> {
        crate::SkipList::remove(self, h, key)
    }
}

impl<V> TxMap<V> for crate::MichaelList<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn get(&self, h: &mut ThreadHandle, key: u64) -> Option<V> {
        crate::MichaelList::get(self, h, key)
    }
    fn insert(&self, h: &mut ThreadHandle, key: u64, val: V) -> bool {
        crate::MichaelList::insert(self, h, key, val)
    }
    fn put(&self, h: &mut ThreadHandle, key: u64, val: V) -> Option<V> {
        crate::MichaelList::put(self, h, key, val)
    }
    fn remove(&self, h: &mut ThreadHandle, key: u64) -> Option<V> {
        crate::MichaelList::remove(self, h, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medley::TxManager;

    fn exercise(map: &dyn TxMap<u64>, h: &mut ThreadHandle) {
        assert!(!map.contains(h, 9));
        assert!(map.insert(h, 9, 90));
        assert!(map.contains(h, 9));
        assert_eq!(map.get(h, 9), Some(90));
        assert_eq!(map.put(h, 9, 91), Some(90));
        assert_eq!(map.remove(h, 9), Some(91));
        assert_eq!(map.remove(h, 9), None);
    }

    #[test]
    fn all_structures_satisfy_the_trait() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        exercise(&crate::MichaelHashMap::<u64>::with_buckets(16), &mut h);
        exercise(&crate::SkipList::<u64>::new(), &mut h);
        exercise(&crate::MichaelList::<u64>::new(), &mut h);
    }
}
