//! NBTC-transformed version of Michael's lock-free ordered linked list
//! (the building block of Michael's chained hash table, paper Fig. 2).
//!
//! The transformation follows the paper mechanically:
//!
//! * every *critical* load/CAS goes through `nbtc_load` / `nbtc_cas`;
//! * the linearizing load of a read-only outcome (`get`, failed `insert`,
//!   failed `remove`) is registered with `add_to_read_set`;
//! * physical unlinking and node retirement — the post-linearization
//!   "cleanup" phase — is registered with `add_cleanup`, so inside a
//!   transaction it runs only after commit;
//! * node allocation goes through `tnew` so that aborted transactions free
//!   their speculative nodes.
//!
//! Every operation is generic over a [`medley::Ctx`] execution context:
//! monomorphized for [`medley::NonTx`] it *is* the original uninstrumented
//! algorithm, and monomorphized for [`medley::Txn`] its critical accesses
//! run speculatively and commit atomically.
//!
//! `put` uses the paper's replace trick: marking the old node's `next`
//! pointer *at* the replacement node simultaneously removes the old node and
//! splices in the new one with a single (critical) CAS.
//!
//! ## Commit fast-path eligibility
//!
//! Every update here performs exactly **one** critical CAS, so a transaction
//! consisting of a single `insert`/`put`/`remove` qualifies for the runtime's
//! single-CAS direct commit (no descriptor is ever installed), and a
//! transaction of lookups and failed updates commits descriptor-free through
//! the read-only path.  The traversal marks its linearizing load for the
//! runtime by registering the `(value, counter)` pair it tracked via
//! `nbtc_load_counted`, which both pinpoints the critical access and keeps
//! read-set registration exact regardless of traversal length.  With lazy
//! publication the registration is pure thread-local bookkeeping: the
//! counted read reaches the shared descriptor only if the enclosing
//! transaction ends up publishing one at commit.

use crate::tag;
use medley::{CasWord, Ctx};
use std::marker::PhantomData;
use std::ptr;

/// A node of the ordered list.  `next` carries the Harris/Michael deletion
/// mark in its low bit.
pub(crate) struct Node<V> {
    pub(crate) key: u64,
    pub(crate) val: V,
    pub(crate) next: CasWord,
}

/// Result of a `find` traversal: the predecessor word, the value observed in
/// it, and the candidate node (first node with `key >= target`).
struct Position<V> {
    prev: *const CasWord,
    prev_val: u64,
    /// Counter token observed by the load of `prev` that yielded `prev_val`
    /// (see [`medley::ThreadHandle::nbtc_load_counted`]).  Passing it to
    /// `add_read_with_counter` registers the linearizing load of a read-only
    /// outcome exactly, without going through the recent-loads ring.
    prev_cnt: u64,
    curr: *mut Node<V>,
    /// Unmarked successor bits of `curr`; only meaningful when `curr` is
    /// non-null.
    next: u64,
    found: bool,
}

/// A sorted, lock-free, NBTC-composable linked-list map from `u64` keys to
/// values of type `V`.
///
/// All operations work both inside and outside Medley transactions; outside a
/// transaction the instrumentation is elided and the structure behaves like
/// the original nonblocking list.
pub struct MichaelList<V> {
    head: CasWord,
    _marker: PhantomData<V>,
}

// SAFETY: the list is an ordinary shared concurrent container; nodes are
// reachable from multiple threads and reclaimed through EBR.
unsafe impl<V: Send + Sync> Send for MichaelList<V> {}
unsafe impl<V: Send + Sync> Sync for MichaelList<V> {}

impl<V> Default for MichaelList<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<V> MichaelList<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            head: CasWord::new(0),
            _marker: PhantomData,
        }
    }

    /// Michael's `find`: positions the caller just before the first node with
    /// key ≥ `key`, helping to physically unlink any logically deleted node
    /// encountered on the way.
    fn find<C: Ctx>(&self, cx: &mut C, key: u64) -> Position<V> {
        'retry: loop {
            let mut prev: *const CasWord = &self.head;
            // SAFETY: `prev` points either at the list head (owned by self)
            // or at the `next` field of a node protected by the EBR pin the
            // caller holds for the duration of the operation.
            let (mut curr_bits, mut prev_cnt) = cx.nbtc_load_counted(unsafe { &*prev });
            loop {
                let curr = tag::as_ptr::<Node<V>>(curr_bits);
                if curr.is_null() {
                    return Position {
                        prev,
                        prev_val: curr_bits,
                        prev_cnt,
                        curr: ptr::null_mut(),
                        next: 0,
                        found: false,
                    };
                }
                // SAFETY: `curr` was reachable from the list and cannot be
                // freed while we are pinned.
                let (next_bits, next_cnt) = cx.nbtc_load_counted(unsafe { &(*curr).next });
                if tag::is_marked(next_bits) {
                    // `curr` is logically deleted (by an operation that has
                    // already linearized); help unlink it.  This CAS is not a
                    // publication or linearization point of *our* operation,
                    // but it becomes critical automatically if it follows a
                    // speculative read within the same transaction.
                    let succ = tag::unmarked(next_bits);
                    if !cx.nbtc_cas(unsafe { &*prev }, tag::from_ptr(curr), succ, false, false) {
                        continue 'retry;
                    }
                    // SAFETY: we won the unlink CAS, so we are the unique
                    // retirer of `curr`.
                    unsafe { cx.tretire(curr) };
                    // The unlink advanced `prev`'s counter; re-load so the
                    // counter token stays exact.
                    // SAFETY: `prev` is valid while pinned (as above).
                    let (nb, nc) = cx.nbtc_load_counted(unsafe { &*prev });
                    curr_bits = nb;
                    prev_cnt = nc;
                    continue;
                }
                // SAFETY: as above.
                let ckey = unsafe { (*curr).key };
                if ckey >= key {
                    return Position {
                        prev,
                        prev_val: curr_bits,
                        prev_cnt,
                        curr,
                        next: next_bits,
                        found: ckey == key,
                    };
                }
                prev = unsafe { &(*curr).next as *const CasWord };
                curr_bits = next_bits;
                prev_cnt = next_cnt;
            }
        }
    }

    /// Looks up `key`, returning a clone of its value.
    pub fn get<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        cx.with_op(|cx| {
            let pos = self.find(cx, key);
            // SAFETY: `pos.curr` is pinned; cloning the value does not race
            // with reclamation.
            let res = if pos.found {
                Some(unsafe { (*pos.curr).val.clone() })
            } else {
                None
            };
            // The load of `prev` that yielded `curr` is the linearizing load
            // of this read-only operation; its counter token was tracked by
            // `find`, so registration bypasses the recent-loads ring.
            // SAFETY: `pos.prev` is valid while pinned.
            cx.add_read_with_counter(unsafe { &*pos.prev }, pos.prev_val, pos.prev_cnt);
            res
        })
    }

    /// Whether `key` is present.  Registers the same counted linearizing
    /// load as [`MichaelList::get`] but never clones the value.
    pub fn contains<C: Ctx>(&self, cx: &mut C, key: u64) -> bool {
        cx.with_op(|cx| {
            let pos = self.find(cx, key);
            // SAFETY: `pos.prev` is valid while pinned.
            cx.add_read_with_counter(unsafe { &*pos.prev }, pos.prev_val, pos.prev_cnt);
            pos.found
        })
    }

    /// Inserts `key -> val` only if `key` is absent.  Returns `true` on
    /// success; on failure the value is dropped.
    pub fn insert<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> bool {
        cx.with_op(|cx| {
            let node = cx.tnew(Node {
                key,
                val,
                next: CasWord::new(0),
            });
            loop {
                let pos = self.find(cx, key);
                if pos.found {
                    // Failed insert is a read-only outcome.
                    // SAFETY: `node` was just allocated by us and never
                    // published; `pos.prev` is pinned.
                    unsafe { cx.tdelete(node) };
                    cx.add_read_with_counter(unsafe { &*pos.prev }, pos.prev_val, pos.prev_cnt);
                    return false;
                }
                // SAFETY: `node` is still private.
                unsafe { (*node).next.store_value(tag::from_ptr(pos.curr)) };
                // Linearization (and publication) point of a successful insert.
                // SAFETY: `pos.prev` is pinned.
                if cx.nbtc_cas(
                    unsafe { &*pos.prev },
                    tag::from_ptr(pos.curr),
                    tag::from_ptr(node),
                    true,
                    true,
                ) {
                    return true;
                }
            }
        })
    }

    /// Inserts or replaces, returning the previous value if any.
    pub fn put<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> Option<V> {
        cx.with_op(|cx| {
            let node = cx.tnew(Node {
                key,
                val,
                next: CasWord::new(0),
            });
            loop {
                let pos = self.find(cx, key);
                if pos.found {
                    let curr = pos.curr;
                    // Replace: the new node adopts curr's successor, and a
                    // single CAS marks curr while splicing the new node in
                    // (its marked pointer *is* the new node).
                    // SAFETY: `node` is private; `curr` is pinned.
                    unsafe { (*node).next.store_value(pos.next) };
                    if cx.nbtc_cas(
                        unsafe { &(*curr).next },
                        pos.next,
                        tag::marked(tag::from_ptr(node)),
                        true,
                        true,
                    ) {
                        // SAFETY: `curr` is pinned; val cloned before retirement.
                        let old = unsafe { (*curr).val.clone() };
                        let prev_addr = pos.prev as usize;
                        let curr_addr = curr as usize;
                        let node_addr = node as usize;
                        // Cleanup: physically unlink the replaced node.
                        cx.add_cleanup(move |h| {
                            let prev = prev_addr as *const CasWord;
                            // SAFETY: the structure outlives the transaction
                            // (caller contract); a successful unlink makes us
                            // the unique retirer.
                            if unsafe { &*prev }.cas_value(curr_addr as u64, node_addr as u64) {
                                unsafe { h.retire_now(curr_addr as *mut Node<V>) };
                            }
                            // Otherwise a concurrent traversal already helped.
                        });
                        return Some(old);
                    }
                } else {
                    // SAFETY: `node` is private; `pos.prev` is pinned.
                    unsafe { (*node).next.store_value(tag::from_ptr(pos.curr)) };
                    if cx.nbtc_cas(
                        unsafe { &*pos.prev },
                        tag::from_ptr(pos.curr),
                        tag::from_ptr(node),
                        true,
                        true,
                    ) {
                        return None;
                    }
                }
            }
        })
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        cx.with_op(|cx| {
            loop {
                let pos = self.find(cx, key);
                if !pos.found {
                    // SAFETY: `pos.prev` is pinned.
                    cx.add_read_with_counter(unsafe { &*pos.prev }, pos.prev_val, pos.prev_cnt);
                    return None;
                }
                let curr = pos.curr;
                // Linearization point: marking curr's next pointer.
                // SAFETY: `curr` is pinned.
                if cx.nbtc_cas(
                    unsafe { &(*curr).next },
                    pos.next,
                    tag::marked(pos.next),
                    true,
                    true,
                ) {
                    // SAFETY: `curr` is pinned.
                    let old = unsafe { (*curr).val.clone() };
                    let prev_addr = pos.prev as usize;
                    let curr_addr = curr as usize;
                    let next_bits = pos.next;
                    cx.add_cleanup(move |h| {
                        let prev = prev_addr as *const CasWord;
                        // SAFETY: see `put`'s cleanup.
                        if unsafe { &*prev }.cas_value(curr_addr as u64, next_bits) {
                            unsafe { h.retire_now(curr_addr as *mut Node<V>) };
                        }
                    });
                    return Some(old);
                }
            }
        })
    }

    /// Quiescent snapshot of the live `(key, value)` pairs, in key order.
    ///
    /// Intended for tests, recovery tooling and single-threaded inspection:
    /// it must not race with concurrent transactional updates.
    pub fn snapshot(&self) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        let mut bits = self.head.load_value_spin();
        loop {
            let node = tag::as_ptr::<Node<V>>(bits);
            if node.is_null() {
                break;
            }
            // SAFETY: quiescence is the caller's contract.
            let next = unsafe { (*node).next.load_value_spin() };
            if !tag::is_marked(next) {
                unsafe { out.push(((*node).key, (*node).val.clone())) };
            }
            bits = tag::unmarked(next);
        }
        out
    }

    /// Number of live keys (quiescent; see [`MichaelList::snapshot`]).
    pub fn len_quiescent(&self) -> usize {
        self.snapshot().len()
    }
}

impl<V> Drop for MichaelList<V> {
    fn drop(&mut self) {
        // Exclusive access: free every node still reachable from the head.
        // Nodes that were unlinked earlier are owned by the EBR limbo bags.
        let mut bits = tag::unmarked(self.head.load_value_spin());
        while !tag::as_ptr::<Node<V>>(bits).is_null() {
            let node = tag::as_ptr::<Node<V>>(bits);
            // SAFETY: `&mut self` gives exclusive access; each reachable node
            // is freed exactly once.
            let next = unsafe { (*node).next.load_value_spin() };
            unsafe { drop(Box::from_raw(node)) };
            bits = tag::unmarked(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medley::{AbortReason, TxManager, TxResult};
    use std::sync::Arc;

    fn setup() -> (Arc<TxManager>, MichaelList<u64>) {
        (TxManager::new(), MichaelList::new())
    }

    #[test]
    fn empty_list_lookups() {
        let (mgr, list) = setup();
        let mut h = mgr.register();
        assert_eq!(list.get(&mut h.nontx(), 1), None);
        assert!(!list.contains(&mut h.nontx(), 1));
        assert_eq!(list.remove(&mut h.nontx(), 1), None);
        assert_eq!(list.len_quiescent(), 0);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let (mgr, list) = setup();
        let mut h = mgr.register();
        assert!(list.insert(&mut h.nontx(), 5, 50));
        assert!(
            !list.insert(&mut h.nontx(), 5, 51),
            "duplicate insert must fail"
        );
        assert_eq!(list.get(&mut h.nontx(), 5), Some(50));
        assert_eq!(list.remove(&mut h.nontx(), 5), Some(50));
        assert_eq!(list.get(&mut h.nontx(), 5), None);
        assert_eq!(list.remove(&mut h.nontx(), 5), None);
    }

    #[test]
    fn keys_stay_sorted() {
        let (mgr, list) = setup();
        let mut h = mgr.register();
        for k in [5u64, 1, 9, 3, 7, 2, 8] {
            assert!(list.insert(&mut h.nontx(), k, k * 10));
        }
        let snap = list.snapshot();
        let keys: Vec<u64> = snap.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn put_replaces_and_returns_old() {
        let (mgr, list) = setup();
        let mut h = mgr.register();
        assert_eq!(list.put(&mut h.nontx(), 7, 70), None);
        assert_eq!(list.put(&mut h.nontx(), 7, 71), Some(70));
        assert_eq!(list.get(&mut h.nontx(), 7), Some(71));
        assert_eq!(list.len_quiescent(), 1);
        assert_eq!(list.remove(&mut h.nontx(), 7), Some(71));
        assert_eq!(list.len_quiescent(), 0);
    }

    #[test]
    fn transactional_ops_are_atomic() {
        let (mgr, list) = setup();
        let mut h = mgr.register();
        assert!(list.insert(&mut h.nontx(), 1, 10));
        // Move key 1 to key 2 atomically.
        let res: TxResult<()> = h.run(|h| {
            let v = list.remove(h, 1).unwrap();
            assert!(list.insert(h, 2, v));
            Ok(())
        });
        assert!(res.is_ok());
        assert_eq!(list.get(&mut h.nontx(), 1), None);
        assert_eq!(list.get(&mut h.nontx(), 2), Some(10));
    }

    #[test]
    fn aborted_transaction_leaves_no_trace() {
        let (mgr, list) = setup();
        let mut h = mgr.register();
        assert!(list.insert(&mut h.nontx(), 1, 10));
        let res: TxResult<()> = h.run(|h| {
            assert_eq!(list.remove(h, 1), Some(10));
            assert!(list.insert(h, 2, 20));
            assert!(list.insert(h, 3, 30));
            Err(h.abort(AbortReason::Explicit))
        });
        assert!(res.is_err());
        assert_eq!(
            list.get(&mut h.nontx(), 1),
            Some(10),
            "remove must be rolled back"
        );
        assert_eq!(
            list.get(&mut h.nontx(), 2),
            None,
            "insert must be rolled back"
        );
        assert_eq!(list.get(&mut h.nontx(), 3), None);
        assert_eq!(list.len_quiescent(), 1);
    }

    #[test]
    fn transaction_sees_its_own_writes() {
        let (mgr, list) = setup();
        let mut h = mgr.register();
        let res: TxResult<()> = h.run(|h| {
            assert!(list.insert(h, 4, 40));
            assert_eq!(list.get(h, 4), Some(40), "read-your-own-write");
            assert_eq!(list.remove(h, 4), Some(40));
            assert_eq!(list.get(h, 4), None, "read-your-own-delete");
            assert!(list.insert(h, 4, 41));
            Ok(())
        });
        assert!(res.is_ok());
        assert_eq!(list.get(&mut h.nontx(), 4), Some(41));
        assert_eq!(list.len_quiescent(), 1);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 300;
        let mgr = TxManager::new();
        let list = Arc::new(MichaelList::<u64>::new());
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let mgr = Arc::clone(&mgr);
            let list = Arc::clone(&list);
            joins.push(std::thread::spawn(move || {
                let mut h = mgr.register();
                for i in 0..PER_THREAD {
                    let k = t * PER_THREAD + i;
                    assert!(list.insert(&mut h.nontx(), k, k));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(list.len_quiescent(), (THREADS * PER_THREAD) as usize);
        let mut h = mgr.register();
        for k in 0..THREADS * PER_THREAD {
            assert_eq!(list.get(&mut h.nontx(), k), Some(k));
        }
    }

    #[test]
    fn concurrent_transfer_preserves_total() {
        // Classic bank-transfer workload over list cells.
        const THREADS: usize = 4;
        const OPS: usize = 400;
        const ACCOUNTS: u64 = 8;
        let mgr = TxManager::new();
        let list = Arc::new(MichaelList::<u64>::new());
        {
            let mut h = mgr.register();
            for a in 0..ACCOUNTS {
                assert!(list.insert(&mut h.nontx(), a, 100));
            }
        }
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let mgr = Arc::clone(&mgr);
            let list = Arc::clone(&list);
            joins.push(std::thread::spawn(move || {
                let mut h = mgr.register();
                let mut rng = medley::util::FastRng::new(t as u64 + 1);
                for _ in 0..OPS {
                    let from = rng.next_below(ACCOUNTS);
                    let to = rng.next_below(ACCOUNTS);
                    if from == to {
                        continue;
                    }
                    let _ = h.run(|h| {
                        let a = list.get(h, from).unwrap();
                        let b = list.get(h, to).unwrap();
                        if a == 0 {
                            return Err(h.abort(AbortReason::Explicit));
                        }
                        list.put(h, from, a - 1);
                        list.put(h, to, b + 1);
                        Ok(())
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let total: u64 = list.snapshot().iter().map(|(_, v)| *v).sum();
        assert_eq!(total, ACCOUNTS * 100);
    }
}
