//! NBTC-transformed lock-free skiplist (in the style of Fraser's CAS-based
//! skiplist, which the paper transforms for Medley and LFTT).
//!
//! Membership is defined entirely by the bottom-level list, which is a
//! Harris/Michael ordered list: the linearization point of an insert is the
//! level-0 link CAS, the linearization point of a remove (or of the removal
//! half of a replace) is the level-0 marking CAS, and the linearizing load of
//! a read-only outcome is the load of the level-0 predecessor.  Exactly **one
//! critical CAS per update** therefore needs to be executed speculatively.
//!
//! The upper levels are a probabilistic index (in nbMontage terms, they are
//! "index", not "payload"): they are linked and unlinked in the
//! post-linearization cleanup phase with plain CASes, so they never carry
//! descriptors and never need to be rolled back.  An aborted remove may leave
//! a node's upper levels marked; the node simply degrades to a bottom-level
//! node until it is removed for real, which affects performance but never
//! correctness.
//!
//! Reclamation: a node is retired only by the operation that logically
//! deleted it, and only after a verification search has confirmed the node is
//! unlinked from every level, so index pointers can never dangle.
//!
//! Because every update performs exactly one critical CAS (the level-0 link
//! or mark) and every read-only outcome registers exactly one counted load,
//! single-operation transactions over this skiplist take the runtime's
//! single-CAS direct-commit path and read-only transactions commit
//! descriptor-free.  Larger transactions buffer all their level-0 CASes
//! thread-locally (lazy publication), so the tower structure is never
//! exposed to a half-done transaction: other threads see the pre-image of
//! every critical word until the commit-time install.

use crate::tag;
use medley::{CasWord, Ctx, NonTx};
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum tower height (matches the paper's 20-level skiplists).
pub const MAX_HEIGHT: usize = 20;

pub(crate) struct Node<V> {
    key: u64,
    val: V,
    height: usize,
    tower: [CasWord; MAX_HEIGHT],
}

impl<V> Node<V> {
    fn new_tower() -> [CasWord; MAX_HEIGHT] {
        std::array::from_fn(|_| CasWord::new(0))
    }
}

/// Result of positioning at the bottom level.
struct Level0Pos<V> {
    prev: *const CasWord,
    prev_val: u64,
    /// Counter token observed by the load of `prev` (for exact read-set
    /// registration of read-only outcomes; see `nbtc_load_counted`).
    prev_cnt: u64,
    curr: *mut Node<V>,
    next: u64,
    found: bool,
}

/// A lock-free, NBTC-composable skiplist map from `u64` keys to `V`.
pub struct SkipList<V> {
    head: [CasWord; MAX_HEIGHT],
    seed: AtomicU64,
    _marker: PhantomData<V>,
}

// SAFETY: shared concurrent container, nodes reclaimed through EBR.
unsafe impl<V: Send + Sync> Send for SkipList<V> {}
unsafe impl<V: Send + Sync> Sync for SkipList<V> {}

impl<V> SkipList<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty skiplist.
    pub fn new() -> Self {
        Self {
            head: std::array::from_fn(|_| CasWord::new(0)),
            seed: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
            _marker: PhantomData,
        }
    }

    /// Pseudo-random tower height with a geometric(1/2) distribution.
    fn random_height(&self) -> usize {
        let mut x = self
            .seed
            .fetch_add(0xA24B_AED4_963E_E407, Ordering::Relaxed);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        ((x.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
    }

    /// The level-`level` link word of `node`, or of the head tower when
    /// `node` is null.
    #[inline]
    fn word_at(&self, node: *mut Node<V>, level: usize) -> *const CasWord {
        if node.is_null() {
            &self.head[level]
        } else {
            // SAFETY: callers only pass nodes protected by the current pin.
            unsafe { &(*node).tower[level] }
        }
    }

    /// Searches for `key`, filling `preds`/`succs` with the insertion point
    /// at every level and returning the bottom-level position.  Marked nodes
    /// encountered on the way are physically unlinked (helping), but never
    /// retired here.
    fn search<C: Ctx>(
        &self,
        cx: &mut C,
        key: u64,
        preds: &mut [*mut Node<V>; MAX_HEIGHT],
        succs: &mut [u64; MAX_HEIGHT],
    ) -> Level0Pos<V> {
        'retry: loop {
            let mut pred_node: *mut Node<V> = ptr::null_mut();
            for level in (0..MAX_HEIGHT).rev() {
                loop {
                    let pred_word = self.word_at(pred_node, level);
                    // SAFETY: pred_word is valid while pinned.
                    let (raw, raw_cnt) = cx.nbtc_load_counted(unsafe { &*pred_word });
                    if tag::is_marked(raw) && !pred_node.is_null() {
                        // The pred node picked up at a higher level has since
                        // been deleted at this one (possibly speculatively by
                        // our own transaction, in which case no helper can
                        // unlink it until commit).  Restart this level from
                        // the head tower, where the marked node is
                        // encountered as `curr` and handled by the
                        // unlink-help branch below.
                        pred_node = ptr::null_mut();
                        continue;
                    }
                    let curr_bits = tag::unmarked(raw);
                    let curr = tag::as_ptr::<Node<V>>(curr_bits);
                    if curr.is_null() {
                        preds[level] = pred_node;
                        succs[level] = 0;
                        if level == 0 {
                            return Level0Pos {
                                prev: pred_word,
                                prev_val: raw,
                                prev_cnt: raw_cnt,
                                curr: ptr::null_mut(),
                                next: 0,
                                found: false,
                            };
                        }
                        break;
                    }
                    // SAFETY: curr reachable and pinned.
                    let next_raw = cx.nbtc_load(unsafe { &(*curr).tower[level] });
                    if tag::is_marked(next_raw) {
                        // curr is deleted at this level; help unlink it.
                        if !cx.nbtc_cas(
                            unsafe { &*pred_word },
                            curr_bits,
                            tag::unmarked(next_raw),
                            false,
                            false,
                        ) {
                            continue 'retry;
                        }
                        continue;
                    }
                    let ckey = unsafe { (*curr).key };
                    if ckey < key {
                        pred_node = curr;
                        continue;
                    }
                    preds[level] = pred_node;
                    succs[level] = curr_bits;
                    if level == 0 {
                        return Level0Pos {
                            prev: pred_word,
                            prev_val: raw,
                            prev_cnt: raw_cnt,
                            curr,
                            next: next_raw,
                            found: ckey == key,
                        };
                    }
                    break;
                }
            }
            unreachable!("level 0 always returns");
        }
    }

    fn empty_arrays() -> ([*mut Node<V>; MAX_HEIGHT], [u64; MAX_HEIGHT]) {
        ([ptr::null_mut(); MAX_HEIGHT], [0; MAX_HEIGHT])
    }

    /// Looks up `key`.
    pub fn get<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        cx.with_op(|cx| {
            let (mut preds, mut succs) = Self::empty_arrays();
            let pos = self.search(cx, key, &mut preds, &mut succs);
            // SAFETY: pos.curr pinned.
            let res = if pos.found {
                Some(unsafe { (*pos.curr).val.clone() })
            } else {
                None
            };
            // SAFETY: pos.prev valid while pinned.
            cx.add_read_with_counter(unsafe { &*pos.prev }, pos.prev_val, pos.prev_cnt);
            res
        })
    }

    /// Whether `key` is present.  Registers the same counted linearizing
    /// load as [`SkipList::get`] but never clones the value.
    pub fn contains<C: Ctx>(&self, cx: &mut C, key: u64) -> bool {
        cx.with_op(|cx| {
            let (mut preds, mut succs) = Self::empty_arrays();
            let pos = self.search(cx, key, &mut preds, &mut succs);
            // SAFETY: pos.prev valid while pinned.
            cx.add_read_with_counter(unsafe { &*pos.prev }, pos.prev_val, pos.prev_cnt);
            pos.found
        })
    }

    /// Ordered range cursor: collects up to `limit` live `(key, value)`
    /// pairs with keys in `bounds`, in ascending key order.
    ///
    /// Transactionally this is an **atomic snapshot of the traversed
    /// window**: the linearizing level-0 loads — the link into the first
    /// candidate and each live node's own level-0 word — join the read set
    /// with their counter tokens, so commit-time validation fails if any
    /// membership in the window changed between the walk and the commit.
    /// Marked nodes are skipped *without* registration: a level-0 word never
    /// changes again once marked (removal freezes it at `marked(next)`, a
    /// replace at `marked(replacement)`), so the hop through a dead node is
    /// pinned by the registered live words on either side of it.  Any
    /// membership change in the window — an insert, a removal mark, a
    /// replace — must CAS one of the registered words, which invalidates the
    /// counter token and aborts the scan's transaction.
    ///
    /// Standalone ([`NonTx`]) the same code monomorphizes into an
    /// uninstrumented read pass with no cross-node atomicity claim, like
    /// [`SkipList::snapshot`] but bounded.
    pub fn range<C: Ctx>(
        &self,
        cx: &mut C,
        bounds: std::ops::Range<u64>,
        limit: usize,
    ) -> Vec<(u64, V)> {
        cx.with_op(|cx| {
            let mut out = Vec::new();
            if bounds.start >= bounds.end || limit == 0 {
                return out;
            }
            let (mut preds, mut succs) = Self::empty_arrays();
            let pos = self.search(cx, bounds.start, &mut preds, &mut succs);
            // SAFETY: pos.prev valid while pinned.
            cx.add_read_with_counter(unsafe { &*pos.prev }, pos.prev_val, pos.prev_cnt);
            let mut curr = pos.curr;
            // SAFETY: every node on the level-0 list is protected by the
            // current pin; keys are immutable after construction.
            while let Some(node) = unsafe { curr.as_ref() } {
                if node.key >= bounds.end || out.len() == limit {
                    break;
                }
                let (next_raw, next_cnt) = cx.nbtc_load_counted(&node.tower[0]);
                if tag::is_marked(next_raw) {
                    // Logically deleted: hop over it unregistered (frozen
                    // word, see above).  A replace parks the successor with
                    // the same key here, so order is preserved.
                    curr = tag::as_ptr::<Node<V>>(tag::unmarked(next_raw));
                    continue;
                }
                // Live: this one load both proves membership and pins the
                // link to the successor.
                cx.add_read_with_counter(&node.tower[0], next_raw, next_cnt);
                out.push((node.key, node.val.clone()));
                curr = tag::as_ptr::<Node<V>>(tag::unmarked(next_raw));
            }
            out
        })
    }

    /// Links `node` into levels `1..height` (post-linearization index
    /// maintenance).  Called from cleanup context, which is definitionally
    /// non-transactional — hence the concrete [`NonTx`] context.
    fn link_upper_levels(&self, cx: &mut NonTx<'_>, node: *mut Node<V>, height: usize) {
        let (mut preds, mut succs) = Self::empty_arrays();
        // SAFETY: node is linked at level 0 (committed) and cannot be freed
        // before it is unlinked from every level, which cannot happen while
        // its own remover has not yet retired it and we are pinned.
        let key = unsafe { (*node).key };
        'levels: for level in 1..height {
            loop {
                // Stop early if the node has since been logically deleted.
                let bottom = unsafe { (*node).tower[0].load_parts().0 };
                if tag::is_marked(bottom) {
                    break 'levels;
                }
                let _ = self.search(cx, key, &mut preds, &mut succs);
                let succ = succs[level];
                if tag::as_ptr::<Node<V>>(succ) == node {
                    // Already linked at this level (e.g. by a previous retry).
                    continue 'levels;
                }
                // Point the node at its successor, unless it got marked.
                let cur = unsafe { (*node).tower[level].load_parts().0 };
                if tag::is_marked(cur) {
                    break 'levels;
                }
                if cur != succ && !unsafe { &(*node).tower[level] }.cas_value(cur, succ) {
                    continue;
                }
                let pred_word = self.word_at(preds[level], level);
                // SAFETY: preds[level] pinned.
                if unsafe { &*pred_word }.cas_value(succ, tag::from_ptr(node)) {
                    // Post-link validation: the successor we just linked to
                    // may have been marked (and even verified as unlinked by
                    // its remover) between our search and the link CAS.  We
                    // created that link, so we are responsible for making
                    // sure it does not outlive our EBR pin — unlink any
                    // marked successor before returning, or the remover's
                    // retirement would leave a permanently dangling index
                    // pointer (use-after-free for later traversals).
                    self.unlink_marked_successors(node, level);
                    continue 'levels;
                }
                // Lost a race; re-search and retry this level.
            }
        }
    }

    /// Repeatedly unlinks `node`'s level-`level` successor while that
    /// successor is marked at `level`.  Part of the creator-validates
    /// discipline described in [`SkipList::link_upper_levels`].
    fn unlink_marked_successors(&self, node: *mut Node<V>, level: usize) {
        loop {
            // SAFETY: `node` is reachable and pinned by the caller; any
            // successor observed here was linked while we are pinned, so its
            // memory cannot be reclaimed before we return.
            let cur = unsafe { (*node).tower[level].load_parts().0 };
            let succ = tag::as_ptr::<Node<V>>(tag::unmarked(cur));
            if tag::is_marked(cur) || succ.is_null() {
                return;
            }
            let succ_next = unsafe { (*succ).tower[level].load_parts().0 };
            if !tag::is_marked(succ_next) {
                return;
            }
            // Marked successor: splice it out of our own link word.
            let _ = unsafe { &(*node).tower[level] }.cas_value(cur, tag::unmarked(succ_next));
            // Re-examine: the replacement successor may be marked as well.
        }
    }

    /// Walks level `level` from the head, unlinking **every** marked node
    /// with key ≤ `key` (paper-style helping, but traversing *through* equal
    /// keys).  A plain `search` is not enough for a retiring node: a `put`
    /// replacement carries the same key as its victim, so `search(key)`
    /// stops at the replacement and never reaches a marked victim linked
    /// behind it.
    fn purge_level(&self, cx: &mut NonTx<'_>, level: usize, key: u64) {
        'retry: loop {
            let mut pred: *mut Node<V> = ptr::null_mut();
            loop {
                let pred_word = self.word_at(pred, level);
                // SAFETY: pred_word valid while pinned.
                let raw = cx.nbtc_load(unsafe { &*pred_word });
                let curr_bits = tag::unmarked(raw);
                let curr = tag::as_ptr::<Node<V>>(curr_bits);
                if curr.is_null() {
                    return;
                }
                // SAFETY: curr reachable and pinned.
                let next_raw = cx.nbtc_load(unsafe { &(*curr).tower[level] });
                if tag::is_marked(next_raw) {
                    if !cx.nbtc_cas(
                        unsafe { &*pred_word },
                        curr_bits,
                        tag::unmarked(next_raw),
                        false,
                        false,
                    ) {
                        continue 'retry;
                    }
                    continue;
                }
                let ckey = unsafe { (*curr).key };
                if ckey > key {
                    return;
                }
                pred = curr;
            }
        }
    }

    /// Marks levels `height-1 .. 1` of `node` (cleanup of a logical delete),
    /// then unlinks the node everywhere and retires it.
    fn finish_removal(&self, cx: &mut NonTx<'_>, node: *mut Node<V>) {
        // SAFETY: node is pinned and not yet retired (we are its unique
        // retirer).
        let height = unsafe { (*node).height };
        let key = unsafe { (*node).key };
        for level in (1..height).rev() {
            loop {
                let cur = unsafe { (*node).tower[level].load_parts().0 };
                if tag::is_marked(cur) {
                    break;
                }
                if unsafe { &(*node).tower[level] }.cas_value(cur, tag::marked(cur)) {
                    break;
                }
            }
        }
        // Purge every level the node may still be linked at; the traversal
        // goes through equal keys so a replacement with the same key cannot
        // shadow the retiring node.  Afterwards the only links that can
        // still materialize come from in-flight linkers, and those unlink
        // their own marked successors before unpinning (see
        // `link_upper_levels`), which is enough because this node's memory
        // cannot be reclaimed while any such linker stays pinned.
        for level in (0..height).rev() {
            self.purge_level(cx, level, key);
        }
        // SAFETY: unreachable from the structure and uniquely retired here.
        unsafe { cx.retire_now(node) };
    }

    /// Inserts `key -> val` only if absent; returns `true` on success.
    pub fn insert<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> bool {
        cx.with_op(|cx| {
            let height = self.random_height();
            let node = cx.tnew(Node {
                key,
                val,
                height,
                tower: Node::<V>::new_tower(),
            });
            loop {
                let (mut preds, mut succs) = Self::empty_arrays();
                let pos = self.search(cx, key, &mut preds, &mut succs);
                if pos.found {
                    // SAFETY: node private; pos.prev pinned.
                    unsafe { cx.tdelete(node) };
                    cx.add_read_with_counter(unsafe { &*pos.prev }, pos.prev_val, pos.prev_cnt);
                    return false;
                }
                // SAFETY: node still private.
                unsafe { (*node).tower[0].store_value(tag::from_ptr(pos.curr)) };
                // Linearization + publication point: bottom-level link.
                if cx.nbtc_cas(
                    unsafe { &*pos.prev },
                    tag::from_ptr(pos.curr),
                    tag::from_ptr(node),
                    true,
                    true,
                ) {
                    let list_addr = self as *const Self as usize;
                    let node_addr = node as usize;
                    cx.add_cleanup(move |h| {
                        let list = list_addr as *const Self;
                        let mut cx = NonTx::new(h);
                        // SAFETY: the structure outlives the transaction
                        // (caller contract).
                        unsafe {
                            (*list).link_upper_levels(&mut cx, node_addr as *mut Node<V>, height)
                        };
                    });
                    return true;
                }
            }
        })
    }

    /// Inserts or replaces; returns the previous value if any.
    pub fn put<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> Option<V> {
        cx.with_op(|cx| {
            let height = self.random_height();
            let node = cx.tnew(Node {
                key,
                val,
                height,
                tower: Node::<V>::new_tower(),
            });
            loop {
                let (mut preds, mut succs) = Self::empty_arrays();
                let pos = self.search(cx, key, &mut preds, &mut succs);
                if pos.found {
                    let old_node = pos.curr;
                    // Replace: mark the old node's bottom link so that the
                    // marked pointer *is* the replacement (paper Fig. 2).
                    // SAFETY: node private; old_node pinned.
                    unsafe { (*node).tower[0].store_value(pos.next) };
                    if cx.nbtc_cas(
                        unsafe { &(*old_node).tower[0] },
                        pos.next,
                        tag::marked(tag::from_ptr(node)),
                        true,
                        true,
                    ) {
                        let old = unsafe { (*old_node).val.clone() };
                        let list_addr = self as *const Self as usize;
                        let node_addr = node as usize;
                        let old_addr = old_node as usize;
                        cx.add_cleanup(move |h| {
                            let list = list_addr as *const Self;
                            let mut cx = NonTx::new(h);
                            // SAFETY: caller contract (structure outlives tx).
                            unsafe {
                                (*list).link_upper_levels(
                                    &mut cx,
                                    node_addr as *mut Node<V>,
                                    height,
                                );
                                (*list).finish_removal(&mut cx, old_addr as *mut Node<V>);
                            }
                        });
                        return Some(old);
                    }
                } else {
                    // SAFETY: node private; pos.prev pinned.
                    unsafe { (*node).tower[0].store_value(tag::from_ptr(pos.curr)) };
                    if cx.nbtc_cas(
                        unsafe { &*pos.prev },
                        tag::from_ptr(pos.curr),
                        tag::from_ptr(node),
                        true,
                        true,
                    ) {
                        let list_addr = self as *const Self as usize;
                        let node_addr = node as usize;
                        cx.add_cleanup(move |h| {
                            let list = list_addr as *const Self;
                            let mut cx = NonTx::new(h);
                            // SAFETY: caller contract.
                            unsafe {
                                (*list).link_upper_levels(
                                    &mut cx,
                                    node_addr as *mut Node<V>,
                                    height,
                                )
                            };
                        });
                        return None;
                    }
                }
            }
        })
    }

    /// Removes `key`; returns its value if present.
    pub fn remove<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        cx.with_op(|cx| {
            loop {
                let (mut preds, mut succs) = Self::empty_arrays();
                let pos = self.search(cx, key, &mut preds, &mut succs);
                if !pos.found {
                    // SAFETY: pos.prev pinned.
                    cx.add_read_with_counter(unsafe { &*pos.prev }, pos.prev_val, pos.prev_cnt);
                    return None;
                }
                let node = pos.curr;
                // Linearization point: marking the bottom-level link.
                // SAFETY: node pinned.
                if cx.nbtc_cas(
                    unsafe { &(*node).tower[0] },
                    pos.next,
                    tag::marked(pos.next),
                    true,
                    true,
                ) {
                    let old = unsafe { (*node).val.clone() };
                    let list_addr = self as *const Self as usize;
                    let node_addr = node as usize;
                    cx.add_cleanup(move |h| {
                        let list = list_addr as *const Self;
                        let mut cx = NonTx::new(h);
                        // SAFETY: caller contract.
                        unsafe { (*list).finish_removal(&mut cx, node_addr as *mut Node<V>) };
                    });
                    return Some(old);
                }
            }
        })
    }

    /// Quiescent snapshot of the live `(key, value)` pairs in key order.
    pub fn snapshot(&self) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        let mut bits = tag::unmarked(self.head[0].load_value_spin());
        while let Some(node) = unsafe { tag::as_ptr::<Node<V>>(bits).as_ref() } {
            let next = node.tower[0].load_value_spin();
            if !tag::is_marked(next) {
                out.push((node.key, node.val.clone()));
            }
            bits = tag::unmarked(next);
        }
        out
    }

    /// Quiescent count of live keys.
    pub fn len_quiescent(&self) -> usize {
        self.snapshot().len()
    }
}

impl<V> Default for SkipList<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Drop for SkipList<V> {
    fn drop(&mut self) {
        // Free every node reachable at level 0; unlinked nodes are owned by
        // EBR limbo bags.
        let mut bits = tag::unmarked(self.head[0].load_value_spin());
        while !tag::as_ptr::<Node<V>>(bits).is_null() {
            let node = tag::as_ptr::<Node<V>>(bits);
            // SAFETY: exclusive access in Drop.
            let next = unsafe { (*node).tower[0].load_value_spin() };
            unsafe { drop(Box::from_raw(node)) };
            bits = tag::unmarked(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medley::{AbortReason, TxManager, TxResult};
    use std::sync::Arc;

    #[test]
    fn basic_crud() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let sl = SkipList::new();
        assert_eq!(sl.get(&mut h.nontx(), 3), None);
        assert!(sl.insert(&mut h.nontx(), 3, 30));
        assert!(!sl.insert(&mut h.nontx(), 3, 31));
        assert_eq!(sl.get(&mut h.nontx(), 3), Some(30));
        assert_eq!(sl.put(&mut h.nontx(), 3, 33), Some(30));
        assert_eq!(sl.get(&mut h.nontx(), 3), Some(33));
        assert_eq!(sl.remove(&mut h.nontx(), 3), Some(33));
        assert_eq!(sl.remove(&mut h.nontx(), 3), None);
        assert_eq!(sl.len_quiescent(), 0);
    }

    #[test]
    fn many_keys_stay_sorted() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let sl = SkipList::new();
        let mut keys: Vec<u64> = (0..1_000)
            .map(|i| (i * 2_654_435_761u64) % 100_000)
            .collect();
        keys.sort_unstable();
        keys.dedup();
        for &k in &keys {
            assert!(sl.insert(&mut h.nontx(), k, k + 1));
        }
        let snap = sl.snapshot();
        assert_eq!(snap.len(), keys.len());
        let snap_keys: Vec<u64> = snap.iter().map(|(k, _)| *k).collect();
        assert_eq!(snap_keys, keys, "snapshot must be sorted and complete");
        for &k in keys.iter().step_by(3) {
            assert_eq!(sl.remove(&mut h.nontx(), k), Some(k + 1));
        }
        for &k in keys.iter() {
            let expect = if keys.iter().position(|&x| x == k).unwrap() % 3 == 0 {
                None
            } else {
                Some(k + 1)
            };
            assert_eq!(sl.get(&mut h.nontx(), k), expect);
        }
    }

    #[test]
    fn random_height_distribution_is_sane() {
        let sl = SkipList::<u64>::new();
        let mut counts = [0usize; MAX_HEIGHT + 1];
        for _ in 0..10_000 {
            let h = sl.random_height();
            assert!((1..=MAX_HEIGHT).contains(&h));
            counts[h] += 1;
        }
        assert!(
            counts[1] > 3_000,
            "about half the towers should be height 1"
        );
        assert!(counts[1] < 7_000);
    }

    #[test]
    fn range_cursor_matches_model() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let sl = SkipList::new();
        let keys: Vec<u64> = (0..200).map(|i| i * 3 + 1).collect();
        for &k in &keys {
            assert!(sl.insert(&mut h.nontx(), k, k * 10));
        }
        // Standalone walk.
        let page = sl.range(&mut h.nontx(), 10..100, usize::MAX);
        let model: Vec<(u64, u64)> = keys
            .iter()
            .filter(|&&k| (10..100).contains(&k))
            .map(|&k| (k, k * 10))
            .collect();
        assert_eq!(page, model);
        // Limit truncation takes the smallest keys.
        let page = sl.range(&mut h.nontx(), 10..100, 5);
        assert_eq!(page, model[..5]);
        // Empty and inverted windows.
        assert!(sl.range(&mut h.nontx(), 2..3, 10).is_empty());
        assert!(sl.range(&mut h.nontx(), 50..50, 10).is_empty());
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 100..10;
        assert!(sl.range(&mut h.nontx(), inverted, 10).is_empty());
        // Transactional: a read-only scan commits descriptor-free and sees
        // the same page; own writes inside the transaction are visible.
        let res: TxResult<Vec<(u64, u64)>> = h.run(|t| Ok(sl.range(t, 10..100, usize::MAX)));
        assert_eq!(res.unwrap(), model);
        h.flush_stats();
        assert!(mgr.stats().snapshot().ro_commits >= 1);
        let res: TxResult<usize> = h.run(|t| {
            assert!(sl.insert(t, 12, 120));
            let page = sl.range(t, 10..100, usize::MAX);
            assert!(page.contains(&(12, 120)), "own insert visible to scan");
            Ok(page.len())
        });
        assert_eq!(res.unwrap(), model.len() + 1);
        // Deleted keys disappear from the page.
        sl.remove(&mut h.nontx(), 12).unwrap();
        sl.remove(&mut h.nontx(), 13).unwrap();
        let page = sl.range(&mut h.nontx(), 10..100, usize::MAX);
        assert!(!page.iter().any(|&(k, _)| k == 12 || k == 13));
    }

    #[test]
    fn transactional_composition_and_rollback() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let sl = SkipList::new();
        assert!(sl.insert(&mut h.nontx(), 1, 10));

        // Committed transaction: move 1 -> 2.
        let ok: TxResult<()> = h.run(|h| {
            let v = sl.remove(h, 1).unwrap();
            assert!(sl.insert(h, 2, v));
            assert_eq!(sl.get(h, 1), None, "own delete visible");
            assert_eq!(sl.get(h, 2), Some(10), "own insert visible");
            Ok(())
        });
        assert!(ok.is_ok());
        assert_eq!(sl.get(&mut h.nontx(), 1), None);
        assert_eq!(sl.get(&mut h.nontx(), 2), Some(10));

        // Aborted transaction leaves no trace.
        let err: TxResult<()> = h.run(|h| {
            assert_eq!(sl.remove(h, 2), Some(10));
            assert!(sl.insert(h, 5, 50));
            Err(h.abort(AbortReason::Explicit))
        });
        assert!(err.is_err());
        assert_eq!(sl.get(&mut h.nontx(), 2), Some(10));
        assert_eq!(sl.get(&mut h.nontx(), 5), None);
        assert_eq!(sl.len_quiescent(), 1);
    }

    #[test]
    fn concurrent_disjoint_inserts_and_lookups() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 400;
        let mgr = TxManager::new();
        let sl = Arc::new(SkipList::<u64>::new());
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let mgr = Arc::clone(&mgr);
            let sl = Arc::clone(&sl);
            joins.push(std::thread::spawn(move || {
                let mut h = mgr.register();
                for i in 0..PER_THREAD {
                    let k = t * PER_THREAD + i;
                    assert!(sl.insert(&mut h.nontx(), k, k * 7));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(sl.len_quiescent(), (THREADS * PER_THREAD) as usize);
        let mut h = mgr.register();
        for k in 0..THREADS * PER_THREAD {
            assert_eq!(sl.get(&mut h.nontx(), k), Some(k * 7));
        }
    }

    #[test]
    fn concurrent_mixed_ops_value_invariant() {
        const THREADS: usize = 4;
        const OPS: usize = 500;
        const KEY_SPACE: u64 = 64;
        let mgr = TxManager::new();
        let sl = Arc::new(SkipList::<u64>::new());
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let mgr = Arc::clone(&mgr);
            let sl = Arc::clone(&sl);
            joins.push(std::thread::spawn(move || {
                let mut h = mgr.register();
                let mut rng = medley::util::FastRng::new((t + 11) as u64);
                for _ in 0..OPS {
                    let k = rng.next_below(KEY_SPACE);
                    match rng.next_below(4) {
                        0 => {
                            sl.insert(&mut h.nontx(), k, k * 2);
                        }
                        1 => {
                            sl.put(&mut h.nontx(), k, k * 2);
                        }
                        2 => {
                            sl.remove(&mut h.nontx(), k);
                        }
                        _ => {
                            if let Some(v) = sl.get(&mut h.nontx(), k) {
                                assert_eq!(v, k * 2);
                            }
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let snap = sl.snapshot();
        for (k, v) in &snap {
            assert_eq!(*v, *k * 2);
        }
        let keys: Vec<u64> = snap.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            keys, sorted,
            "level-0 list must remain sorted and duplicate-free"
        );
    }

    #[test]
    fn concurrent_transfers_preserve_sum() {
        const THREADS: usize = 4;
        const OPS: usize = 250;
        const ACCOUNTS: u64 = 10;
        let mgr = TxManager::new();
        let sl = Arc::new(SkipList::<u64>::new());
        {
            let mut h = mgr.register();
            for a in 0..ACCOUNTS {
                assert!(sl.insert(&mut h.nontx(), a, 1_000));
            }
        }
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let mgr = Arc::clone(&mgr);
            let sl = Arc::clone(&sl);
            joins.push(std::thread::spawn(move || {
                let mut h = mgr.register();
                let mut rng = medley::util::FastRng::new((t + 3) as u64);
                for _ in 0..OPS {
                    let from = rng.next_below(ACCOUNTS);
                    let to = rng.next_below(ACCOUNTS);
                    if from == to {
                        continue;
                    }
                    let amt = 1 + rng.next_below(5);
                    let _ = h.run(|h| {
                        let a = sl.get(h, from).unwrap();
                        let b = sl.get(h, to).unwrap();
                        if a < amt {
                            return Err(h.abort(AbortReason::Explicit));
                        }
                        sl.put(h, from, a - amt);
                        sl.put(h, to, b + amt);
                        Ok(())
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let total: u64 = sl.snapshot().iter().map(|(_, v)| *v).sum();
        assert_eq!(total, ACCOUNTS * 1_000);
    }
}
