//! # nbds — NBTC-transformed nonblocking data structures
//!
//! This crate contains the concurrent data structures the paper composes with
//! Medley, each transformed mechanically according to the NBTC methodology
//! (replace critical loads/CASes with `nbtc_load`/`nbtc_cas`, register the
//! linearizing loads of read-only outcomes with `add_to_read_set`, push
//! post-linearization work to `add_cleanup`, and allocate through
//! `tnew`/`tdelete`/`tretire`):
//!
//! * [`MichaelList`] — Michael's lock-free ordered list (paper Fig. 2's
//!   building block);
//! * [`MichaelHashMap`] — Michael's chained hash table;
//! * [`SplitOrderedMap`] — the Shalev–Shavit split-ordered list: an
//!   **elastic** hash table whose bucket directory doubles on-line under
//!   load, with transactions composing across the table mid-grow;
//! * [`SkipList`] — a Fraser-style CAS-based skiplist;
//! * [`MsQueue`] — the Michael–Scott FIFO queue.
//!
//! Every operation is generic over a [`medley::Ctx`] execution context.
//! Called with the [`medley::Txn`] guard handed out by
//! [`medley::ThreadHandle::run`] (or [`medley::ThreadHandle::begin`]), the
//! operations of one or more structures compose into a strictly serializable
//! transaction; called with a [`medley::NonTx`] standalone context (from
//! [`medley::ThreadHandle::nontx`]) they monomorphize into exactly the
//! original nonblocking algorithms — the standalone/transactional
//! distinction is a compile-time fact, not a runtime branch.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod counter;
pub mod hashtable;
pub mod list;
pub mod map;
pub mod msqueue;
pub mod skiplist;
pub mod split_ordered;
pub mod tag;

pub use counter::LenCounter;
pub use hashtable::MichaelHashMap;
pub use list::MichaelList;
pub use map::{TxMap, TxOrderedMap, TxQueue};
pub use msqueue::MsQueue;
pub use skiplist::SkipList;
pub use split_ordered::SplitOrderedMap;
