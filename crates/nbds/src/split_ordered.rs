//! NBTC-transformed split-ordered hash table (Shalev & Shavit, *Split-Ordered
//! Lists: Lock-Free Extensible Hash Tables*), the crate's elastic map.
//!
//! # Structure
//!
//! All items live in **one** ordered [`MichaelList`](crate::MichaelList)-style
//! linked list, sorted not by key but by *split-order key*: the bit-reversed
//! hash, with the low bit reserved to separate the two node classes —
//!
//! * **regular nodes** carry an item; their split-order key is
//!   [`so_regular_key`]`(h) = reverse_bits(h) | 1` (always odd);
//! * **sentinel nodes** mark the start of a bucket; their split-order key is
//!   [`so_sentinel_key`]`(b) = reverse_bits(b)` (always even, because bucket
//!   indices stay far below 2^63).
//!
//! On top of the list sits a growable directory of bucket pointers: a fixed
//! array of [`SEGMENTS`] lazily-allocated segments, where segment *i* holds
//! the 2^i sentinel pointers for buckets `[2^i, 2^(i+1))`.  The table's
//! current bucket count `size` is a power of two; an operation hashes its
//! key, takes `h & (size - 1)` as its bucket, and starts its traversal at
//! that bucket's sentinel instead of the head — dividing the list into
//! `size` short runs.
//!
//! # Resizing
//!
//! Growing is one CAS: `size: s → 2s` when the item count passes
//! `LOAD_FACTOR × s`.  Nothing is rehashed — bit reversal guarantees that
//! the items of old bucket `b` split *in place* into new buckets `b` and
//! `b + s`, already in order.  The new buckets' sentinels are created lazily
//! on first access ([`parent_bucket`] recursion: bucket `b`'s sentinel is
//! spliced in right after the sentinel of `b` with its top set bit cleared),
//! so a resize is incremental and never stop-the-world.  A thread acting on
//! a stale (smaller) `size` lands on an *ancestor* bucket of the key's true
//! bucket, whose sentinel precedes every key of its descendants — the
//! traversal is merely longer, never wrong.
//!
//! # Why directory work never joins a transaction's footprint
//!
//! Sentinel insertion and directory/segment publication are *infrastructure*
//! actions: they change the table's physical layout but not its abstract
//! key→value state — a table with or without bucket 7's sentinel contains
//! exactly the same items.  Running them through the transactional
//! instrumentation would be wrong on two counts: (a) two transactions over
//! disjoint keys that both first-touch the same bucket would conflict on the
//! sentinel splice, and (b) an abort would have to *undo* the sentinel,
//! un-publishing layout that concurrent operations may already rely on.  So
//! these actions go through [`medley::Ctx::untracked_load`] /
//! [`medley::Ctx::untracked_cas`]: even mid-transaction they take effect
//! immediately, are visible to all threads, survive an abort of the
//! enclosing transaction, and are never validated at commit.  (The sole
//! interaction with the enclosing transaction is indirect: an untracked CAS
//! can invalidate a buffered speculative write to the same word, which
//! surfaces as an ordinary conflict abort and retry.)  The item operations
//! themselves (`get`/`insert`/`put`/`remove`) are instrumented exactly like
//! [`MichaelList`](crate::MichaelList) — one critical CAS per update, a
//! counted linearizing read per read-only outcome — so single-op
//! transactions keep the single-CAS direct commit and read-only
//! transactions keep the descriptor-free commit, even mid-grow.
//!
//! # Counting
//!
//! The load-factor trigger needs an item count; an exact shared counter
//! would serialize every update, so the table keeps a striped relaxed
//! [`LenCounter`] whose deltas follow the transactional outcome discipline:
//! applied immediately in a standalone context, from the post-commit cleanup
//! phase in a transaction, and not at all on abort.

use crate::counter::LenCounter;
use crate::tag;
use medley::{CasWord, Ctx};
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// Number of directory segments; segment `i` covers buckets
/// `[2^i, 2^(i+1))`, so the table can grow to `2^SEGMENTS` buckets.
pub const SEGMENTS: usize = 32;

/// Hard ceiling on the bucket count (`2^SEGMENTS`).
pub const MAX_BUCKETS: u64 = 1 << SEGMENTS;

/// Average chain length that triggers a doubling.
const LOAD_FACTOR: u64 = 4;

/// How many successful inserts pass between two load-factor checks (summing
/// the striped counter on every insert would defeat the striping).
const GROW_CHECK_INTERVAL: u64 = 64;

/// Full-width Fibonacci hash of a key.  The multiplier is odd, so the map
/// `key → h` is a bijection on `u64` — distinct keys always produce distinct
/// hashes, and the regular/regular tie in split order is limited to hashes
/// differing only in the top bit (resolved by comparing keys).
#[inline]
pub fn key_hash(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Split-order key of a regular (item) node: bit-reversed hash with the low
/// bit set.  Always odd.
#[inline]
pub fn so_regular_key(h: u64) -> u64 {
    h.reverse_bits() | 1
}

/// Split-order key of bucket `b`'s sentinel node: the bit-reversed bucket
/// index.  Always even for `b < 2^63` (and bucket indices stay below
/// [`MAX_BUCKETS`]), so sentinel keys and regular keys are disjoint.
#[inline]
pub fn so_sentinel_key(b: u64) -> u64 {
    b.reverse_bits()
}

/// The parent of bucket `b` in the recursive split ordering: `b` with its
/// most-significant set bit cleared — the bucket `b` split off from when the
/// table doubled past `b`.  Requires `b > 0` (bucket 0 is the root).
#[inline]
pub fn parent_bucket(b: u64) -> u64 {
    debug_assert!(b > 0, "bucket 0 has no parent");
    b & !(1u64 << (63 - b.leading_zeros()))
}

/// A node of the split-ordered list.  `next` carries the Harris/Michael
/// deletion mark in its low bit.  Sentinels hold `val: None` and reuse `key`
/// for their bucket index; regular nodes hold `val: Some(..)` and the user
/// key.  The two classes never compare equal: their split-order keys have
/// different parity.
struct SoNode<V> {
    so_key: u64,
    key: u64,
    val: Option<V>,
    next: CasWord,
}

/// Result of a `find` traversal (see [`crate::list`]): the predecessor word,
/// the value/counter observed in it, and the candidate node (first node with
/// split-order position ≥ target).
struct Position<V> {
    prev: *const CasWord,
    prev_val: u64,
    prev_cnt: u64,
    curr: *mut SoNode<V>,
    /// Unmarked successor bits of `curr`; only meaningful when `curr` is
    /// non-null.
    next: u64,
    found: bool,
}

/// A lock-free, NBTC-composable, **elastic** hash map from `u64` keys to `V`:
/// a Shalev–Shavit split-ordered list that doubles its bucket directory
/// on-line when the load factor passes a threshold.  See the module docs for
/// the resize and instrumentation story.
pub struct SplitOrderedMap<V> {
    /// Start-of-list word; doubles as bucket 0's "sentinel" (bucket 0 has no
    /// node — every traversal of bucket 0 starts here).
    head: CasWord,
    /// Directory: segment `i` is a lazily-allocated array of `2^i` sentinel
    /// pointers for buckets `[2^i, 2^(i+1))`.
    segments: [AtomicPtr<AtomicPtr<SoNode<V>>>; SEGMENTS],
    /// Current bucket count (power of two).  Grows monotonically; stale
    /// smaller reads only lengthen traversals (ancestor buckets).
    size: AtomicU64,
    /// Striped live-item counter (commit-disciplined; see module docs).
    count: LenCounter,
    /// Number of successful `size` doublings.
    grow_events: AtomicU64,
    /// Successful-insert ticker gating the load-factor check.
    grow_ticks: AtomicU64,
    _marker: PhantomData<V>,
}

// SAFETY: an ordinary shared concurrent container; nodes are reachable from
// multiple threads and reclaimed through EBR.
unsafe impl<V: Send + Sync> Send for SplitOrderedMap<V> {}
unsafe impl<V: Send + Sync> Sync for SplitOrderedMap<V> {}

impl<V> Default for SplitOrderedMap<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<V> SplitOrderedMap<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty table at the minimum size (two buckets).  There is
    /// nothing to pre-size: the directory doubles itself under load.
    pub fn new() -> Self {
        Self::with_buckets(2)
    }

    /// Creates an empty table with an initial bucket count (rounded up to a
    /// power of two, clamped to `[2, MAX_BUCKETS]`).  Purely a warm-start
    /// hint — the table grows past it on its own.
    pub fn with_buckets(buckets: usize) -> Self {
        let n = (buckets.next_power_of_two().max(2) as u64).min(MAX_BUCKETS);
        Self {
            head: CasWord::new(0),
            segments: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
            size: AtomicU64::new(n),
            count: LenCounter::new(),
            grow_events: AtomicU64::new(0),
            grow_ticks: AtomicU64::new(0),
            _marker: PhantomData,
        }
    }

    // -- directory -----------------------------------------------------------

    /// Segment index and intra-segment offset of bucket `b > 0`.
    #[inline]
    fn segment_of(b: u64) -> (usize, usize) {
        let seg = (63 - b.leading_zeros()) as usize;
        (seg, (b - (1u64 << seg)) as usize)
    }

    /// The directory slot of bucket `b > 0`, allocating its segment on first
    /// touch.  Segment allocation is a plain pointer CAS — infrastructure
    /// below even the `untracked` layer, since segments are private memory
    /// until published.
    fn slot(&self, b: u64) -> &AtomicPtr<SoNode<V>> {
        let (seg, idx) = Self::segment_of(b);
        let mut arr = self.segments[seg].load(Ordering::Acquire);
        if arr.is_null() {
            let len = 1usize << seg;
            let fresh: Box<[AtomicPtr<SoNode<V>>]> =
                (0..len).map(|_| AtomicPtr::new(ptr::null_mut())).collect();
            let raw = Box::into_raw(fresh) as *mut AtomicPtr<SoNode<V>>;
            match self.segments[seg].compare_exchange(
                ptr::null_mut(),
                raw,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => arr = raw,
                Err(existing) => {
                    // Lost the publication race: reclaim our private array.
                    // SAFETY: `raw` was never published and came from
                    // `Box::into_raw` of a `len`-element boxed slice.
                    unsafe {
                        drop(Box::from_raw(ptr::slice_from_raw_parts_mut(raw, len)));
                    }
                    arr = existing;
                }
            }
        }
        // SAFETY: `arr` is a live `len`-element array published above (or by
        // another thread) and never freed before `Drop`; `idx < 2^seg`.
        unsafe { &*arr.add(idx) }
    }

    /// The sentinel pointer of bucket `b` without allocating anything
    /// (null if the bucket — or its whole segment — is uninitialized).
    fn slot_peek(&self, b: u64) -> *mut SoNode<V> {
        let (seg, idx) = Self::segment_of(b);
        let arr = self.segments[seg].load(Ordering::Acquire);
        if arr.is_null() {
            return ptr::null_mut();
        }
        // SAFETY: published segment arrays stay live until `Drop`.
        unsafe { (*arr.add(idx)).load(Ordering::Acquire) }
    }

    /// Returns bucket `b`'s sentinel node, initializing the bucket (and,
    /// recursively, its ancestors) on first access.  Recursion depth is
    /// bounded by `log2(size)`.
    ///
    /// All list work here is **untracked** — see the module docs.
    fn bucket_sentinel<C: Ctx>(&self, cx: &mut C, b: u64) -> *mut SoNode<V> {
        debug_assert!(b > 0);
        let existing = self.slot(b).load(Ordering::Acquire);
        if !existing.is_null() {
            return existing;
        }
        // First access: splice the sentinel in after the parent bucket's,
        // then publish it in the directory.
        let parent_start: *const CasWord = if parent_bucket(b) == 0 {
            &self.head
        } else {
            let p = self.bucket_sentinel(cx, parent_bucket(b));
            // SAFETY: sentinels are immortal until `Drop`.
            unsafe { &(*p).next }
        };
        let so = so_sentinel_key(b);
        // Allocated privately (not `tnew`): sentinel ownership must not be
        // tied to an enclosing transaction's abort path.
        let node = Box::into_raw(Box::new(SoNode {
            so_key: so,
            key: b,
            val: None,
            next: CasWord::new(0),
        }));
        let spliced = loop {
            let pos = self.find_untracked(cx, parent_start, so, b);
            if pos.found {
                // Another thread spliced this sentinel first; ours was never
                // published.
                // SAFETY: `node` is still private.
                unsafe { drop(Box::from_raw(node)) };
                break pos.curr;
            }
            // SAFETY: `node` is private; `pos.prev` is pinned via `with_op`.
            unsafe { (*node).next.store_value(tag::from_ptr(pos.curr)) };
            if cx.untracked_cas(
                unsafe { &*pos.prev },
                tag::from_ptr(pos.curr),
                tag::from_ptr(node),
            ) {
                break node;
            }
        };
        // Publish.  Racers splice/find the *same* list node, so the CAS is
        // idempotent; a loser's failure means the slot already holds
        // `spliced`.
        let _ = self.slot(b).compare_exchange(
            ptr::null_mut(),
            spliced,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        spliced
    }

    /// The traversal start word for `key` under the current directory size.
    /// Must be called inside `with_op` (the sentinel splice traverses the
    /// list).
    fn op_start<C: Ctx>(&self, cx: &mut C, h: u64) -> *const CasWord {
        // Relaxed: a stale smaller size routes to an ancestor bucket, which
        // is correct (its sentinel precedes all descendant keys).
        let size = self.size.load(Ordering::Relaxed);
        let b = h & (size - 1);
        if b == 0 {
            &self.head
        } else {
            let s = self.bucket_sentinel(cx, b);
            // SAFETY: sentinels are immortal until `Drop`.
            unsafe { &(*s).next }
        }
    }

    // -- traversal -----------------------------------------------------------

    /// Michael's `find` over the split-ordered list, instrumented: positions
    /// the caller just before the first node with split-order position ≥
    /// `(so_key, key)`, helping to unlink logically deleted nodes on the way.
    /// Restarts from `start` (a sentinel's next word — immortal) on unlink
    /// failure.
    fn find<C: Ctx>(
        &self,
        cx: &mut C,
        start: *const CasWord,
        so_key: u64,
        key: u64,
    ) -> Position<V> {
        'retry: loop {
            let mut prev = start;
            // SAFETY: `prev` points at the head or at the `next` field of a
            // node protected by the caller's EBR pin.
            let (mut curr_bits, mut prev_cnt) = cx.nbtc_load_counted(unsafe { &*prev });
            loop {
                let curr = tag::as_ptr::<SoNode<V>>(curr_bits);
                if curr.is_null() {
                    return Position {
                        prev,
                        prev_val: curr_bits,
                        prev_cnt,
                        curr: ptr::null_mut(),
                        next: 0,
                        found: false,
                    };
                }
                // SAFETY: `curr` was reachable and cannot be freed while
                // pinned.
                let (next_bits, next_cnt) = cx.nbtc_load_counted(unsafe { &(*curr).next });
                if tag::is_marked(next_bits) {
                    let succ = tag::unmarked(next_bits);
                    if !cx.nbtc_cas(unsafe { &*prev }, tag::from_ptr(curr), succ, false, false) {
                        continue 'retry;
                    }
                    // SAFETY: we won the unlink CAS → unique retirer.
                    unsafe { cx.tretire(curr) };
                    // SAFETY: `prev` is valid while pinned.
                    let (nb, nc) = cx.nbtc_load_counted(unsafe { &*prev });
                    curr_bits = nb;
                    prev_cnt = nc;
                    continue;
                }
                // SAFETY: as above.
                let (cso, ckey) = unsafe { ((*curr).so_key, (*curr).key) };
                if (cso, ckey) >= (so_key, key) {
                    return Position {
                        prev,
                        prev_val: curr_bits,
                        prev_cnt,
                        curr,
                        next: next_bits,
                        found: cso == so_key && ckey == key,
                    };
                }
                prev = unsafe { &(*curr).next as *const CasWord };
                curr_bits = next_bits;
                prev_cnt = next_cnt;
            }
        }
    }

    /// `find` through the **untracked** primitives, for sentinel splicing:
    /// identical traversal, but loads and CASes never touch the enclosing
    /// transaction's read/write sets, and unlinked nodes are retired
    /// immediately.
    fn find_untracked<C: Ctx>(
        &self,
        cx: &mut C,
        start: *const CasWord,
        so_key: u64,
        key: u64,
    ) -> Position<V> {
        'retry: loop {
            let mut prev = start;
            // SAFETY: see `find`.
            let mut curr_bits = cx.untracked_load(unsafe { &*prev });
            loop {
                let curr = tag::as_ptr::<SoNode<V>>(curr_bits);
                if curr.is_null() {
                    return Position {
                        prev,
                        prev_val: curr_bits,
                        prev_cnt: 0,
                        curr: ptr::null_mut(),
                        next: 0,
                        found: false,
                    };
                }
                // SAFETY: pinned (the caller is inside `with_op`).
                let next_bits = cx.untracked_load(unsafe { &(*curr).next });
                if tag::is_marked(next_bits) {
                    let succ = tag::unmarked(next_bits);
                    if !cx.untracked_cas(unsafe { &*prev }, tag::from_ptr(curr), succ) {
                        continue 'retry;
                    }
                    // SAFETY: unlink winner → unique retirer; immediate
                    // retirement is safe under the pin.
                    unsafe { cx.retire_now(curr) };
                    curr_bits = cx.untracked_load(unsafe { &*prev });
                    continue;
                }
                // SAFETY: as above.
                let (cso, ckey) = unsafe { ((*curr).so_key, (*curr).key) };
                if (cso, ckey) >= (so_key, key) {
                    return Position {
                        prev,
                        prev_val: curr_bits,
                        prev_cnt: 0,
                        curr,
                        next: next_bits,
                        found: cso == so_key && ckey == key,
                    };
                }
                prev = unsafe { &(*curr).next as *const CasWord };
                curr_bits = next_bits;
            }
        }
    }

    // -- counting / growth ---------------------------------------------------

    /// Registers the +1 of a successful insert.  Runs when the outcome is
    /// decided: immediately standalone, post-commit in a transaction (and
    /// not at all on abort).  The post-commit hook is also where the
    /// load-factor trigger fires — growth is driven by *committed* items.
    fn note_insert<C: Ctx>(&self, cx: &mut C) {
        let map_addr = self as *const Self as usize;
        cx.add_cleanup(move |h| {
            // SAFETY: the map outlives the transaction (caller contract —
            // the same one the unlink cleanups rely on).
            let map = unsafe { &*(map_addr as *const Self) };
            map.count.add(h.tid(), 1);
            map.maybe_grow();
        });
    }

    /// Registers the −1 of a successful remove (same discipline).
    fn note_remove<C: Ctx>(&self, cx: &mut C) {
        let map_addr = self as *const Self as usize;
        cx.add_cleanup(move |h| {
            // SAFETY: as in `note_insert`.
            let map = unsafe { &*(map_addr as *const Self) };
            map.count.add(h.tid(), -1);
        });
    }

    /// Doubles `size` while the committed item count exceeds
    /// `LOAD_FACTOR × size`.  Gated to every [`GROW_CHECK_INTERVAL`]-th
    /// insert so the striped counter is not summed on every update.
    fn maybe_grow(&self) {
        if !self
            .grow_ticks
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(GROW_CHECK_INTERVAL)
        {
            return;
        }
        let items = self.count.len();
        loop {
            let size = self.size.load(Ordering::Relaxed);
            if size >= MAX_BUCKETS || items <= size.saturating_mul(LOAD_FACTOR) {
                return;
            }
            if self
                .size
                .compare_exchange(size, size * 2, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.grow_events.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Unconditionally doubles the directory (test/diagnostic hook for
    /// exercising growth without a million inserts).  Returns the new size.
    pub fn force_grow(&self) -> u64 {
        loop {
            let size = self.size.load(Ordering::Relaxed);
            if size >= MAX_BUCKETS {
                return size;
            }
            if self
                .size
                .compare_exchange(size, size * 2, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.grow_events.fetch_add(1, Ordering::Relaxed);
                return size * 2;
            }
        }
    }

    /// Committed live-item count (relaxed striped sum — see
    /// [`LenCounter::len`] for the consistency caveats).
    pub fn len(&self) -> u64 {
        self.count.len()
    }

    /// Whether [`SplitOrderedMap::len`] currently reads zero.
    pub fn is_empty(&self) -> bool {
        self.count.is_empty()
    }

    /// Current bucket count (power of two; grows monotonically).
    pub fn buckets(&self) -> u64 {
        self.size.load(Ordering::Relaxed)
    }

    /// Number of `size` doublings so far.
    pub fn grow_events(&self) -> u64 {
        self.grow_events.load(Ordering::Relaxed)
    }

    /// Number of buckets whose sentinel has been spliced and published
    /// (buckets initialize lazily, so this trails [`SplitOrderedMap::buckets`];
    /// bucket 0 — the head — counts as always initialized).
    pub fn initialized_buckets(&self) -> u64 {
        let size = self.buckets();
        1 + (1..size).filter(|&b| !self.slot_peek(b).is_null()).count() as u64
    }

    // -- operations ----------------------------------------------------------

    /// Looks up `key`, returning a clone of its value.
    pub fn get<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        cx.with_op(|cx| {
            let h = key_hash(key);
            let start = self.op_start(cx, h);
            let pos = self.find(cx, start, so_regular_key(h), key);
            // SAFETY: `pos.curr` is pinned; a found node is regular (odd
            // split-order key), so `val` is `Some`.
            let res = if pos.found {
                unsafe { (*pos.curr).val.clone() }
            } else {
                None
            };
            // SAFETY: `pos.prev` is valid while pinned.
            cx.add_read_with_counter(unsafe { &*pos.prev }, pos.prev_val, pos.prev_cnt);
            res
        })
    }

    /// Whether `key` is present.  Registers the same counted linearizing
    /// load as [`SplitOrderedMap::get`] but never clones the value.
    pub fn contains<C: Ctx>(&self, cx: &mut C, key: u64) -> bool {
        cx.with_op(|cx| {
            let h = key_hash(key);
            let start = self.op_start(cx, h);
            let pos = self.find(cx, start, so_regular_key(h), key);
            // SAFETY: `pos.prev` is valid while pinned.
            cx.add_read_with_counter(unsafe { &*pos.prev }, pos.prev_val, pos.prev_cnt);
            pos.found
        })
    }

    /// Inserts `key -> val` only if `key` is absent.  Returns `true` on
    /// success; on failure the value is dropped.
    pub fn insert<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> bool {
        cx.with_op(|cx| {
            let h = key_hash(key);
            let so = so_regular_key(h);
            let start = self.op_start(cx, h);
            let node = cx.tnew(SoNode {
                so_key: so,
                key,
                val: Some(val),
                next: CasWord::new(0),
            });
            loop {
                let pos = self.find(cx, start, so, key);
                if pos.found {
                    // Failed insert is a read-only outcome.
                    // SAFETY: `node` was never published; `pos.prev` is
                    // pinned.
                    unsafe { cx.tdelete(node) };
                    cx.add_read_with_counter(unsafe { &*pos.prev }, pos.prev_val, pos.prev_cnt);
                    return false;
                }
                // SAFETY: `node` is still private.
                unsafe { (*node).next.store_value(tag::from_ptr(pos.curr)) };
                // Linearization (and publication) point of a successful
                // insert.
                // SAFETY: `pos.prev` is pinned.
                if cx.nbtc_cas(
                    unsafe { &*pos.prev },
                    tag::from_ptr(pos.curr),
                    tag::from_ptr(node),
                    true,
                    true,
                ) {
                    self.note_insert(cx);
                    return true;
                }
            }
        })
    }

    /// Inserts or replaces, returning the previous value if any.
    pub fn put<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> Option<V> {
        cx.with_op(|cx| {
            let h = key_hash(key);
            let so = so_regular_key(h);
            let start = self.op_start(cx, h);
            let node = cx.tnew(SoNode {
                so_key: so,
                key,
                val: Some(val),
                next: CasWord::new(0),
            });
            loop {
                let pos = self.find(cx, start, so, key);
                if pos.found {
                    let curr = pos.curr;
                    // Replace trick: the new node adopts curr's successor,
                    // and one CAS marks curr while splicing the new node in.
                    // SAFETY: `node` is private; `curr` is pinned.
                    unsafe { (*node).next.store_value(pos.next) };
                    if cx.nbtc_cas(
                        unsafe { &(*curr).next },
                        pos.next,
                        tag::marked(tag::from_ptr(node)),
                        true,
                        true,
                    ) {
                        // SAFETY: `curr` is pinned; regular node → `Some`.
                        let old = unsafe { (*curr).val.clone() };
                        let prev_addr = pos.prev as usize;
                        let curr_addr = curr as usize;
                        let node_addr = node as usize;
                        cx.add_cleanup(move |h| {
                            let prev = prev_addr as *const CasWord;
                            // SAFETY: the map outlives the transaction; a
                            // successful unlink makes us the unique retirer.
                            if unsafe { &*prev }.cas_value(curr_addr as u64, node_addr as u64) {
                                unsafe { h.retire_now(curr_addr as *mut SoNode<V>) };
                            }
                        });
                        return old;
                    }
                } else {
                    // SAFETY: `node` is private; `pos.prev` is pinned.
                    unsafe { (*node).next.store_value(tag::from_ptr(pos.curr)) };
                    if cx.nbtc_cas(
                        unsafe { &*pos.prev },
                        tag::from_ptr(pos.curr),
                        tag::from_ptr(node),
                        true,
                        true,
                    ) {
                        self.note_insert(cx);
                        return None;
                    }
                }
            }
        })
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        cx.with_op(|cx| {
            let h = key_hash(key);
            let so = so_regular_key(h);
            let start = self.op_start(cx, h);
            loop {
                let pos = self.find(cx, start, so, key);
                if !pos.found {
                    // SAFETY: `pos.prev` is pinned.
                    cx.add_read_with_counter(unsafe { &*pos.prev }, pos.prev_val, pos.prev_cnt);
                    return None;
                }
                let curr = pos.curr;
                // Linearization point: marking curr's next pointer.
                // SAFETY: `curr` is pinned.
                if cx.nbtc_cas(
                    unsafe { &(*curr).next },
                    pos.next,
                    tag::marked(pos.next),
                    true,
                    true,
                ) {
                    // SAFETY: `curr` is pinned; regular node → `Some`.
                    let old = unsafe { (*curr).val.clone() };
                    let prev_addr = pos.prev as usize;
                    let curr_addr = curr as usize;
                    let next_bits = pos.next;
                    cx.add_cleanup(move |h| {
                        let prev = prev_addr as *const CasWord;
                        // SAFETY: see `put`'s cleanup.
                        if unsafe { &*prev }.cas_value(curr_addr as u64, next_bits) {
                            unsafe { h.retire_now(curr_addr as *mut SoNode<V>) };
                        }
                    });
                    self.note_remove(cx);
                    return old;
                }
            }
        })
    }

    // -- quiescent inspection ------------------------------------------------

    /// Quiescent snapshot of the live `(key, value)` pairs, in *split* order
    /// (bit-reversed hash order), sentinels elided.
    ///
    /// Intended for tests, recovery tooling and single-threaded inspection:
    /// it must not race with concurrent transactional updates.
    pub fn snapshot(&self) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        let mut bits = self.head.load_value_spin();
        loop {
            let node = tag::as_ptr::<SoNode<V>>(bits);
            if node.is_null() {
                break;
            }
            // SAFETY: quiescence is the caller's contract.
            let next = unsafe { (*node).next.load_value_spin() };
            if !tag::is_marked(next) {
                // SAFETY: as above; sentinels carry `None` and are skipped.
                if let Some(v) = unsafe { (*node).val.clone() } {
                    out.push((unsafe { (*node).key }, v));
                }
            }
            bits = tag::unmarked(next);
        }
        out
    }

    /// Number of live keys (quiescent; see [`SplitOrderedMap::snapshot`]).
    pub fn len_quiescent(&self) -> usize {
        self.snapshot().len()
    }

    /// Quiescent structural self-check, for property tests over random grow
    /// schedules.  Verifies:
    ///
    /// * the list is strictly sorted by `(split-order key, key)`;
    /// * every published directory slot points to an unmarked, reachable
    ///   sentinel whose split-order key matches its bucket;
    /// * bucket initialization is *monotone*: an initialized bucket's parent
    ///   chain is fully initialized (the recursive splice can't skip
    ///   ancestors);
    /// * the striped counter agrees with the number of reachable live items.
    ///
    /// Returns `(live items, spliced sentinels)` or a description of the
    /// violated invariant.
    pub fn check_integrity_quiescent(&self) -> Result<(u64, u64), String> {
        let mut items = 0u64;
        let mut sentinels = 0u64;
        let mut reachable = std::collections::HashMap::new();
        let mut last: Option<(u64, u64)> = None;
        let mut bits = self.head.load_value_spin();
        loop {
            let node = tag::as_ptr::<SoNode<V>>(bits);
            if node.is_null() {
                break;
            }
            // SAFETY: quiescence is the caller's contract.
            let (so, key, next) =
                unsafe { ((*node).so_key, (*node).key, (*node).next.load_value_spin()) };
            if let Some(prev) = last {
                if prev >= (so, key) {
                    return Err(format!(
                        "split order violated: {prev:?} precedes ({so}, {key})"
                    ));
                }
            }
            last = Some((so, key));
            if !tag::is_marked(next) {
                let is_sentinel = so & 1 == 0;
                if is_sentinel {
                    if so != so_sentinel_key(key) {
                        return Err(format!("sentinel so_key mismatch for bucket {key}"));
                    }
                    sentinels += 1;
                } else {
                    if so != so_regular_key(key_hash(key)) {
                        return Err(format!("regular so_key mismatch for key {key}"));
                    }
                    items += 1;
                }
                reachable.insert(node as usize, is_sentinel);
            }
            bits = tag::unmarked(next);
        }
        let size = self.buckets();
        if !size.is_power_of_two() {
            return Err(format!("size {size} not a power of two"));
        }
        for b in 1..size {
            let p = self.slot_peek(b);
            if p.is_null() {
                continue;
            }
            match reachable.get(&(p as usize)) {
                Some(true) => {}
                Some(false) => return Err(format!("slot {b} points at a regular node")),
                None => return Err(format!("slot {b} points at an unreachable node")),
            }
            // SAFETY: the slot's node was just verified reachable and live.
            let (so, key) = unsafe { ((*p).so_key, (*p).key) };
            if key != b || so != so_sentinel_key(b) {
                return Err(format!("slot {b} holds sentinel of bucket {key}"));
            }
            // Monotone initialization: the parent chain must be published.
            let mut a = b;
            while a > 0 {
                a = parent_bucket(a);
                if a > 0 && self.slot_peek(a).is_null() {
                    return Err(format!("bucket {b} initialized before ancestor {a}"));
                }
            }
        }
        if self.count.len() != items {
            return Err(format!(
                "counter reads {} but {items} items are reachable",
                self.count.len()
            ));
        }
        Ok((items, sentinels))
    }
}

impl<V> Drop for SplitOrderedMap<V> {
    fn drop(&mut self) {
        // Exclusive access: every node (sentinel or regular) appears in the
        // list exactly once; directory slots are duplicate pointers.  Nodes
        // unlinked earlier are owned by the EBR limbo bags.
        let mut bits = tag::unmarked(self.head.load_value_spin());
        while !tag::as_ptr::<SoNode<V>>(bits).is_null() {
            let node = tag::as_ptr::<SoNode<V>>(bits);
            // SAFETY: `&mut self` gives exclusive access; each reachable node
            // is freed exactly once.
            let next = unsafe { (*node).next.load_value_spin() };
            unsafe { drop(Box::from_raw(node)) };
            bits = tag::unmarked(next);
        }
        for (i, seg) in self.segments.iter().enumerate() {
            let p = seg.load(Ordering::Relaxed);
            if !p.is_null() {
                // SAFETY: published segments came from `Box::into_raw` of a
                // `2^i`-element boxed slice and are freed exactly once here.
                unsafe {
                    drop(Box::from_raw(ptr::slice_from_raw_parts_mut(p, 1usize << i)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medley::{AbortReason, TxManager, TxResult};
    use std::sync::Arc;

    fn setup() -> (Arc<TxManager>, SplitOrderedMap<u64>) {
        (TxManager::new(), SplitOrderedMap::new())
    }

    #[test]
    fn split_order_math() {
        // Bit reversal is an involution; sentinel keys are even, regular
        // keys odd; parents strictly decrease to zero.
        for x in [0u64, 1, 2, 0xdead_beef, u64::MAX, 1 << 63] {
            assert_eq!(x.reverse_bits().reverse_bits(), x);
        }
        for b in 1..512u64 {
            assert_eq!(so_sentinel_key(b) & 1, 0);
            assert!(parent_bucket(b) < b);
            let mut a = b;
            let mut hops = 0;
            while a > 0 {
                a = parent_bucket(a);
                hops += 1;
            }
            assert!(hops <= 64);
        }
        for k in 0..512u64 {
            assert_eq!(so_regular_key(key_hash(k)) & 1, 1);
        }
    }

    #[test]
    fn crud_roundtrip_from_minimum_size() {
        let (mgr, map) = setup();
        let mut h = mgr.register();
        assert_eq!(map.buckets(), 2);
        assert_eq!(map.get(&mut h.nontx(), 1), None);
        assert!(map.insert(&mut h.nontx(), 1, 10));
        assert!(!map.insert(&mut h.nontx(), 1, 11));
        assert_eq!(map.get(&mut h.nontx(), 1), Some(10));
        assert!(map.contains(&mut h.nontx(), 1));
        assert_eq!(map.put(&mut h.nontx(), 1, 12), Some(10));
        assert_eq!(map.put(&mut h.nontx(), 2, 20), None);
        assert_eq!(map.remove(&mut h.nontx(), 1), Some(12));
        assert_eq!(map.remove(&mut h.nontx(), 1), None);
        assert_eq!(map.len(), 1);
        assert_eq!(map.len_quiescent(), 1);
        map.check_integrity_quiescent().unwrap();
    }

    #[test]
    fn grows_under_load_and_stays_correct() {
        let (mgr, map) = setup();
        let mut h = mgr.register();
        const N: u64 = 5_000;
        for k in 0..N {
            assert!(map.insert(&mut h.nontx(), k, k * 3));
        }
        assert!(
            map.grow_events() > 0,
            "5k inserts from 2 buckets must trigger growth (size={})",
            map.buckets()
        );
        assert!(map.buckets() >= 256);
        assert_eq!(map.len(), N);
        for k in 0..N {
            assert_eq!(map.get(&mut h.nontx(), k), Some(k * 3));
        }
        let (items, _) = map.check_integrity_quiescent().unwrap();
        assert_eq!(items, N);
        for k in (0..N).step_by(2) {
            assert_eq!(map.remove(&mut h.nontx(), k), Some(k * 3));
        }
        assert_eq!(map.len(), N / 2);
        map.check_integrity_quiescent().unwrap();
    }

    #[test]
    fn force_grow_is_transparent() {
        let (mgr, map) = setup();
        let mut h = mgr.register();
        for k in 0..64u64 {
            assert!(map.insert(&mut h.nontx(), k, k));
        }
        for _ in 0..6 {
            map.force_grow();
            for k in 0..64u64 {
                assert_eq!(map.get(&mut h.nontx(), k), Some(k));
            }
        }
        assert!(map.buckets() >= 128);
        // Touch every key once more so lazy buckets initialize, then check.
        for k in 0..64u64 {
            assert!(map.contains(&mut h.nontx(), k));
        }
        map.check_integrity_quiescent().unwrap();
    }

    #[test]
    fn transactional_ops_are_atomic_and_abortable() {
        let (mgr, map) = setup();
        let mut h = mgr.register();
        assert!(map.insert(&mut h.nontx(), 1, 10));
        let res: TxResult<()> = h.run(|t| {
            let v = map.remove(t, 1).unwrap();
            assert!(map.insert(t, 2, v));
            assert_eq!(map.get(t, 2), Some(10), "read-your-own-write");
            Ok(())
        });
        assert!(res.is_ok());
        assert_eq!(map.get(&mut h.nontx(), 1), None);
        assert_eq!(map.get(&mut h.nontx(), 2), Some(10));
        assert_eq!(map.len(), 1, "move is count-neutral");

        let res: TxResult<()> = h.run(|t| {
            assert_eq!(map.remove(t, 2), Some(10));
            assert!(map.insert(t, 3, 30));
            Err(t.abort(AbortReason::Explicit))
        });
        assert!(res.is_err());
        assert_eq!(map.get(&mut h.nontx(), 2), Some(10), "rolled back");
        assert_eq!(map.get(&mut h.nontx(), 3), None, "rolled back");
        assert_eq!(map.len(), 1, "aborts leave the counter untouched");
        map.check_integrity_quiescent().unwrap();
    }

    #[test]
    fn single_op_transactions_keep_fast_paths_mid_grow() {
        let (mgr, map) = setup();
        let mut h = mgr.register();
        for k in 0..32u64 {
            assert!(map.insert(&mut h.nontx(), k, k));
        }
        map.force_grow();
        map.force_grow();
        // One update per transaction → single-CAS direct commit; lookups →
        // descriptor-free read-only commit.  Growth must not break either.
        let r: TxResult<()> = h.run(|t| {
            assert!(map.insert(t, 100, 100));
            Ok(())
        });
        assert!(r.is_ok());
        let r: TxResult<bool> = h.run(|t| Ok(map.contains(t, 100)));
        assert_eq!(r, Ok(true));
        h.flush_stats();
        let snap = mgr.stats_snapshot();
        assert!(
            snap.fast_commits >= 1,
            "insert must direct-commit: {snap:?}"
        );
        assert!(
            snap.ro_commits >= 1,
            "lookup must commit read-only: {snap:?}"
        );
    }

    #[test]
    fn concurrent_inserts_while_growing() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 2_000;
        let mgr = TxManager::new();
        let map = Arc::new(SplitOrderedMap::<u64>::new());
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let mgr = Arc::clone(&mgr);
            let map = Arc::clone(&map);
            joins.push(std::thread::spawn(move || {
                let mut h = mgr.register();
                for i in 0..PER_THREAD {
                    let k = t * PER_THREAD + i;
                    assert!(map.insert(&mut h.nontx(), k, k));
                    if i % 512 == 0 {
                        map.force_grow();
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(map.len(), THREADS * PER_THREAD);
        let mut h = mgr.register();
        for k in 0..THREADS * PER_THREAD {
            assert_eq!(map.get(&mut h.nontx(), k), Some(k));
        }
        let (items, _) = map.check_integrity_quiescent().unwrap();
        assert_eq!(items, THREADS * PER_THREAD);
    }
}
