//! A striped, relaxed item counter for the map containers.
//!
//! Maintaining an exact size on a nonblocking map would serialize every
//! insert/remove on one cache line — the opposite of what the containers are
//! for.  `LenCounter` instead keeps one padded stripe per thread slot
//! (indexed by `tid % STRIPES`, the same slot id the persistence arenas use)
//! and sums the stripes on read.  Updates are relaxed atomics on a
//! thread-mostly-private line, so the common case costs one uncontended
//! `fetch_add`; reads are O(STRIPES) and observe some linearization-
//! consistent value, which is all a load-factor trigger or a `STATS` report
//! needs.
//!
//! The flushing discipline matches `TxStats`: deltas are applied when the
//! operation's outcome is decided (immediately in a standalone context,
//! from the post-commit cleanup phase in a transaction), never
//! speculatively — an aborted transaction leaves the counter untouched.

use std::sync::atomic::{AtomicI64, Ordering};

/// Number of counter stripes.  Matches the padding granularity rather than a
/// thread cap: slot ids above it wrap and share a stripe, which only costs
/// occasional contention on that stripe, never correctness.
const STRIPES: usize = 64;

/// One cache-line-padded stripe.
#[repr(align(64))]
struct Stripe(AtomicI64);

/// A relaxed item counter: per-thread-slot stripes summed on read.
pub struct LenCounter {
    stripes: Box<[Stripe; STRIPES]>,
}

impl LenCounter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self {
            stripes: Box::new(std::array::from_fn(|_| Stripe(AtomicI64::new(0)))),
        }
    }

    /// Applies a delta on the stripe of thread slot `tid`.
    #[inline]
    pub fn add(&self, tid: usize, delta: i64) {
        self.stripes[tid % STRIPES]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Sums all stripes.  Clamped at zero: concurrent in-flight deltas can
    /// transiently make the raw sum negative (a remove's decrement may land
    /// on one stripe before the matching insert's increment lands on
    /// another).
    pub fn len(&self) -> u64 {
        let sum: i64 = self
            .stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum();
        sum.max(0) as u64
    }

    /// Whether the counter currently sums to zero (see [`LenCounter::len`]
    /// for the consistency caveats).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for LenCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LenCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LenCounter")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripes_sum_and_clamp() {
        let c = LenCounter::new();
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
        c.add(0, 5);
        c.add(1, 3);
        c.add(65, -2); // wraps onto stripe 1
        assert_eq!(c.len(), 6);
        c.add(2, -100);
        assert_eq!(c.len(), 0, "transient negative sums clamp to zero");
        c.add(2, 100);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn concurrent_adds_are_conserved() {
        use std::sync::Arc;
        let c = Arc::new(LenCounter::new());
        let mut joins = Vec::new();
        for t in 0..8 {
            let c = Arc::clone(&c);
            joins.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.add(t, 1);
                    c.add(t + 3, -1);
                    c.add(t, 1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(c.len(), 8 * 10_000);
    }
}
