//! NBTC-transformed Michael–Scott queue.
//!
//! The MS queue is the canonical example of a structure that transactional
//! boosting *cannot* handle (a single-linked FIFO queue has no obvious
//! inverse operation) but NBTC can: the linearizing CAS of an enqueue is the
//! link of the new node at the tail, and the linearizing CAS of a dequeue is
//! the swing of the head pointer.  Everything else (advancing the tail,
//! retiring the old dummy) is helping or cleanup.
//!
//! Both `enqueue` and a successful `dequeue` therefore contribute exactly
//! one critical CAS: a transaction containing a single queue operation takes
//! the runtime's single-CAS direct-commit path, and an empty `dequeue` (or
//! `is_empty`) registers one counted load and commits descriptor-free.
//! Multi-operation transactions (e.g. an atomic move between two queues)
//! buffer both critical CASes thread-locally and publish a descriptor only
//! at commit, so the queues stay descriptor-free for the whole execution
//! phase.

use crate::tag;
use medley::{CasWord, Ctx};
use std::marker::PhantomData;

struct Node<V> {
    /// `None` only for the initial dummy node.
    val: Option<V>,
    next: CasWord,
}

/// A lock-free, NBTC-composable FIFO queue.
pub struct MsQueue<V> {
    head: CasWord,
    tail: CasWord,
    _marker: PhantomData<V>,
}

// SAFETY: standard shared concurrent container; nodes reclaimed through EBR.
unsafe impl<V: Send + Sync> Send for MsQueue<V> {}
unsafe impl<V: Send + Sync> Sync for MsQueue<V> {}

impl<V> MsQueue<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty queue.
    pub fn new() -> Self {
        let dummy = Box::into_raw(Box::new(Node::<V> {
            val: None,
            next: CasWord::new(0),
        }));
        Self {
            head: CasWord::new(tag::from_ptr(dummy)),
            tail: CasWord::new(tag::from_ptr(dummy)),
            _marker: PhantomData,
        }
    }

    /// Appends `val` at the tail of the queue.
    pub fn enqueue<C: Ctx>(&self, cx: &mut C, val: V) {
        cx.with_op(|cx| {
            let node = cx.tnew(Node {
                val: Some(val),
                next: CasWord::new(0),
            });
            loop {
                let tail_bits = cx.nbtc_load(&self.tail);
                let tail_ptr = tag::as_ptr::<Node<V>>(tail_bits);
                // SAFETY: `tail_ptr` is protected by the operation's EBR pin.
                let next_bits = cx.nbtc_load(unsafe { &(*tail_ptr).next });
                if next_bits != 0 {
                    // Tail is lagging; help advance it (the enqueue that
                    // linked `next` has already linearized, so this is not a
                    // publication point of our operation).
                    cx.nbtc_cas(&self.tail, tail_bits, next_bits, false, false);
                    continue;
                }
                // Linearization (and publication) point of enqueue: linking
                // the new node after the current last node.
                if cx.nbtc_cas(
                    unsafe { &(*tail_ptr).next },
                    0,
                    tag::from_ptr(node),
                    true,
                    true,
                ) {
                    // Post-linearization cleanup: swing the tail pointer.
                    let tail_addr = &self.tail as *const CasWord as usize;
                    let node_bits = tag::from_ptr(node);
                    cx.add_cleanup(move |_h| {
                        let tail = tail_addr as *const CasWord;
                        // SAFETY: the queue outlives the transaction (caller
                        // contract).  Failure means someone already advanced
                        // the tail further, which is fine.
                        let _ = unsafe { &*tail }.cas_value(tail_bits, node_bits);
                    });
                    return;
                }
            }
        })
    }

    /// Removes and returns the value at the head of the queue, or `None` if
    /// the queue is empty.
    pub fn dequeue<C: Ctx>(&self, cx: &mut C) -> Option<V> {
        cx.with_op(|cx| {
            loop {
                let head_bits = cx.nbtc_load(&self.head);
                let head_ptr = tag::as_ptr::<Node<V>>(head_bits);
                // SAFETY: pinned.
                let (next_bits, next_cnt) = cx.nbtc_load_counted(unsafe { &(*head_ptr).next });
                if next_bits == 0 {
                    // Empty: the linearizing load of this read-only outcome is
                    // the observation that the dummy has no successor.
                    cx.add_read_with_counter(unsafe { &(*head_ptr).next }, 0, next_cnt);
                    return None;
                }
                let tail_bits = cx.nbtc_load(&self.tail);
                if head_bits == tail_bits {
                    // Tail is lagging behind a non-empty queue; help.
                    cx.nbtc_cas(&self.tail, tail_bits, next_bits, false, false);
                    continue;
                }
                let next_ptr = tag::as_ptr::<Node<V>>(next_bits);
                // SAFETY: pinned; `next_ptr` stays valid until retired+freed.
                let val = unsafe { (*next_ptr).val.clone() };
                // Linearization point of dequeue: swinging the head pointer.
                if cx.nbtc_cas(&self.head, head_bits, next_bits, true, true) {
                    // Cleanup: retire the old dummy node.
                    // SAFETY: the old dummy is unreachable once the head has
                    // moved past it; we won the CAS, so we are its unique
                    // retirer.
                    unsafe { cx.tretire(head_ptr) };
                    return val;
                }
            }
        })
    }

    /// Whether the queue is currently empty (single observation; not a
    /// linearizable compound check unless called inside a transaction).
    pub fn is_empty<C: Ctx>(&self, cx: &mut C) -> bool {
        cx.with_op(|cx| {
            let head_bits = cx.nbtc_load(&self.head);
            let head_ptr = tag::as_ptr::<Node<V>>(head_bits);
            // SAFETY: pinned.
            let (next_bits, next_cnt) = cx.nbtc_load_counted(unsafe { &(*head_ptr).next });
            if next_bits == 0 {
                cx.add_read_with_counter(unsafe { &(*head_ptr).next }, 0, next_cnt);
                true
            } else {
                false
            }
        })
    }

    /// Quiescent count of elements (test/diagnostic helper).
    pub fn len_quiescent(&self) -> usize {
        let mut n = 0;
        let mut bits = self.head.load_value_spin();
        let head = tag::as_ptr::<Node<V>>(bits);
        // SAFETY: quiescence is the caller's contract.
        bits = unsafe { (*head).next.load_value_spin() };
        while !tag::as_ptr::<Node<V>>(bits).is_null() {
            n += 1;
            let node = tag::as_ptr::<Node<V>>(bits);
            bits = unsafe { (*node).next.load_value_spin() };
        }
        n
    }
}

impl<V> Default for MsQueue<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Drop for MsQueue<V> {
    fn drop(&mut self) {
        let mut bits = self.head.load_value_spin();
        while !tag::as_ptr::<Node<V>>(bits).is_null() {
            let node = tag::as_ptr::<Node<V>>(bits);
            // SAFETY: exclusive access in Drop; every node from the dummy
            // onwards is owned by the queue.
            let next = unsafe { (*node).next.load_value_spin() };
            unsafe { drop(Box::from_raw(node)) };
            bits = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medley::{AbortReason, TxManager, TxResult};
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let q = MsQueue::new();
        assert!(q.is_empty(&mut h.nontx()));
        assert_eq!(q.dequeue(&mut h.nontx()), None);
        for i in 0..100u64 {
            q.enqueue(&mut h.nontx(), i);
        }
        assert_eq!(q.len_quiescent(), 100);
        for i in 0..100u64 {
            assert_eq!(q.dequeue(&mut h.nontx()), Some(i));
        }
        assert_eq!(q.dequeue(&mut h.nontx()), None);
        assert!(q.is_empty(&mut h.nontx()));
    }

    #[test]
    fn transactional_move_between_queues() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let q1 = MsQueue::new();
        let q2 = MsQueue::new();
        q1.enqueue(&mut h.nontx(), 7u64);
        // Atomically move the head of q1 to q2.
        let res: TxResult<()> = h.run(|h| {
            let v = q1.dequeue(h).expect("q1 is non-empty");
            q2.enqueue(h, v);
            Ok(())
        });
        assert!(res.is_ok());
        assert_eq!(q1.len_quiescent(), 0);
        assert_eq!(q2.dequeue(&mut h.nontx()), Some(7));
    }

    #[test]
    fn aborted_dequeue_enqueue_rolls_back() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let q1 = MsQueue::new();
        let q2 = MsQueue::new();
        q1.enqueue(&mut h.nontx(), 1u64);
        q1.enqueue(&mut h.nontx(), 2u64);
        let res: TxResult<()> = h.run(|h| {
            assert_eq!(q1.dequeue(h), Some(1));
            q2.enqueue(h, 1);
            Err(h.abort(AbortReason::Explicit))
        });
        assert!(res.is_err());
        assert_eq!(q1.len_quiescent(), 2, "dequeue must be rolled back");
        assert_eq!(q2.len_quiescent(), 0, "enqueue must be rolled back");
        assert_eq!(q1.dequeue(&mut h.nontx()), Some(1));
        assert_eq!(q1.dequeue(&mut h.nontx()), Some(2));
    }

    #[test]
    fn tx_sees_own_enqueue() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let q = MsQueue::new();
        let res: TxResult<u64> = h.run(|h| {
            q.enqueue(h, 42u64);
            Ok(q.dequeue(h).expect("own enqueue must be visible"))
        });
        assert_eq!(res, Ok(42));
        assert_eq!(q.len_quiescent(), 0);
    }

    #[test]
    fn concurrent_enqueue_dequeue_no_loss_no_dup() {
        const PRODUCERS: u64 = 2;
        const CONSUMERS: usize = 2;
        const PER_PRODUCER: u64 = 2_000;
        let mgr = TxManager::new();
        let q = Arc::new(MsQueue::<u64>::new());
        let mut joins = Vec::new();
        for p in 0..PRODUCERS {
            let mgr = Arc::clone(&mgr);
            let q = Arc::clone(&q);
            joins.push(std::thread::spawn(move || {
                let mut h = mgr.register();
                for i in 0..PER_PRODUCER {
                    q.enqueue(&mut h.nontx(), p * PER_PRODUCER + i);
                }
                Vec::new()
            }));
        }
        for _ in 0..CONSUMERS {
            let mgr = Arc::clone(&mgr);
            let q = Arc::clone(&q);
            joins.push(std::thread::spawn(move || {
                let mut h = mgr.register();
                let mut got = Vec::new();
                let target = (PRODUCERS * PER_PRODUCER) as usize / CONSUMERS;
                while got.len() < target {
                    if let Some(v) = q.dequeue(&mut h.nontx()) {
                        got.push(v);
                    } else {
                        std::thread::yield_now();
                    }
                }
                got
            }));
        }
        let mut all = Vec::new();
        for j in joins {
            all.extend(j.join().unwrap());
        }
        assert_eq!(all.len(), (PRODUCERS * PER_PRODUCER) as usize);
        let set: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "every element dequeued exactly once");
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // FIFO per producer: elements from one producer must be dequeued in
        // the order they were enqueued.
        const PER_PRODUCER: u64 = 1_000;
        let mgr = TxManager::new();
        let q = Arc::new(MsQueue::<u64>::new());
        let producer = {
            let mgr = Arc::clone(&mgr);
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut h = mgr.register();
                for i in 0..PER_PRODUCER {
                    q.enqueue(&mut h.nontx(), i);
                }
            })
        };
        let consumer = {
            let mgr = Arc::clone(&mgr);
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut h = mgr.register();
                let mut last = None;
                let mut count = 0;
                while count < PER_PRODUCER {
                    if let Some(v) = q.dequeue(&mut h.nontx()) {
                        if let Some(prev) = last {
                            assert!(v > prev, "FIFO violated: {v} after {prev}");
                        }
                        last = Some(v);
                        count += 1;
                    }
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
    }
}
