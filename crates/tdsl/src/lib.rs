//! # tdsl — a TDSL-style blocking transactional map baseline
//!
//! TDSL (Spiegelman, Golan-Gueta, Keidar; PLDI'16) provides *blocking*
//! transactions over hand-modified concurrent data structures.  Its defining
//! properties, which this baseline preserves, are:
//!
//! * read sets contain only **semantically critical** items (here: one
//!   versioned cell per key touched), not every memory word;
//! * commit is **blocking**: the write set is locked (in a canonical order),
//!   the read set is validated against per-cell versions, writes are applied,
//!   versions are bumped, locks are released;
//! * conflicting transactions abort and retry.
//!
//! The implementation is a per-key versioned-cell store (TL2 applied at node
//! granularity), which is how TDSL's maps behave for the get/insert/remove
//! workloads of the paper's Figs. 8–9.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use medley::util::sync::Mutex;
use std::collections::btree_map::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A per-key cell: a version counter, a lock bit (the mutex), and the value
/// (`None` = key absent).
struct Cell {
    version: AtomicU64,
    lock: Mutex<()>,
    value: Mutex<Option<u64>>,
}

impl Cell {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            version: AtomicU64::new(0),
            lock: Mutex::new(()),
            value: Mutex::new(None),
        })
    }
}

/// One shard of the key → cell index.
type Shard = Mutex<HashMap<u64, Arc<Cell>>>;

/// A TDSL-style transactional map from `u64` keys to `u64` values.
pub struct TdslMap {
    /// Sharded index from key to its cell; cells are created on first touch
    /// and live for the lifetime of the map.
    shards: Box<[Shard]>,
    commits: AtomicU64,
    aborts: AtomicU64,
}

/// Error indicating the transaction must be retried (validation/lock
/// conflict) or was explicitly aborted by the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TdslAbort {
    /// Commit-time validation failed; retrying may succeed.
    Conflict,
    /// The program requested the abort; `run` does not retry.
    Explicit,
}

/// A transaction over one or more [`TdslMap`]s.
pub struct TdslTx {
    /// Read set: cell -> version observed.
    reads: Vec<(Arc<Cell>, u64)>,
    /// Write set: cell -> new value (`None` = remove), deduplicated by
    /// address and applied in address order to avoid deadlock.
    writes: BTreeMap<usize, (Arc<Cell>, Option<u64>)>,
}

impl TdslTx {
    fn new() -> Self {
        Self {
            reads: Vec::new(),
            writes: BTreeMap::new(),
        }
    }
}

impl Default for TdslMap {
    fn default() -> Self {
        Self::new()
    }
}

impl TdslMap {
    const SHARDS: usize = 256;

    /// Creates an empty map.
    pub fn new() -> Self {
        Self {
            shards: (0..Self::SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        }
    }

    /// `(commits, aborts)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.commits.load(Ordering::Relaxed),
            self.aborts.load(Ordering::Relaxed),
        )
    }

    fn cell(&self, key: u64) -> Arc<Cell> {
        let shard = &self.shards[(key as usize) & (Self::SHARDS - 1)];
        let mut guard = shard.lock();
        Arc::clone(guard.entry(key).or_insert_with(Cell::new))
    }

    /// Transactional read of `key`.
    pub fn get_tx(&self, tx: &mut TdslTx, key: u64) -> Option<u64> {
        let cell = self.cell(key);
        let addr = Arc::as_ptr(&cell) as usize;
        if let Some((_, v)) = tx.writes.get(&addr) {
            return *v;
        }
        let version = cell.version.load(Ordering::Acquire);
        let value = *cell.value.lock();
        tx.reads.push((Arc::clone(&cell), version));
        value
    }

    /// Transactional insert-or-replace; returns the previous value.
    pub fn put_tx(&self, tx: &mut TdslTx, key: u64, val: u64) -> Option<u64> {
        let old = self.get_tx(tx, key);
        let cell = self.cell(key);
        tx.writes
            .insert(Arc::as_ptr(&cell) as usize, (cell, Some(val)));
        old
    }

    /// Transactional insert-if-absent.
    pub fn insert_tx(&self, tx: &mut TdslTx, key: u64, val: u64) -> bool {
        if self.get_tx(tx, key).is_some() {
            return false;
        }
        let cell = self.cell(key);
        tx.writes
            .insert(Arc::as_ptr(&cell) as usize, (cell, Some(val)));
        true
    }

    /// Transactional remove; returns the previous value.
    pub fn remove_tx(&self, tx: &mut TdslTx, key: u64) -> Option<u64> {
        let old = self.get_tx(tx, key);
        if old.is_some() {
            let cell = self.cell(key);
            tx.writes.insert(Arc::as_ptr(&cell) as usize, (cell, None));
        }
        old
    }

    /// Attempts to commit `tx` (commit-time locking + read validation).
    fn commit(tx: TdslTx) -> Result<(), TdslAbort> {
        // Lock the write set in address order.
        let mut guards = Vec::with_capacity(tx.writes.len());
        for (_, (cell, _)) in tx.writes.iter() {
            guards.push(cell.lock.lock());
        }
        // Validate the read set: versions unchanged (unless we own the cell).
        for (cell, version) in tx.reads.iter() {
            let owned = tx.writes.contains_key(&(Arc::as_ptr(cell) as usize));
            let cur = cell.version.load(Ordering::Acquire);
            if cur != *version && !owned {
                return Err(TdslAbort::Conflict);
            }
            if owned && cur != *version {
                return Err(TdslAbort::Conflict);
            }
        }
        // Apply writes and bump versions.
        for (_, (cell, val)) in tx.writes.iter() {
            *cell.value.lock() = *val;
            cell.version.fetch_add(1, Ordering::Release);
        }
        drop(guards);
        Ok(())
    }

    /// Runs a transaction body over this map (and, via the same `TdslTx`,
    /// over other maps as well), retrying on conflicts.
    pub fn run<R>(
        &self,
        mut body: impl FnMut(&mut TdslTx) -> Result<R, TdslAbort>,
    ) -> Result<R, TdslAbort> {
        loop {
            let mut tx = TdslTx::new();
            match body(&mut tx) {
                Ok(r) => match Self::commit(tx) {
                    Ok(()) => {
                        self.commits.fetch_add(1, Ordering::Relaxed);
                        return Ok(r);
                    }
                    Err(TdslAbort::Conflict) => {
                        self.aborts.fetch_add(1, Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                    Err(e) => return Err(e),
                },
                Err(TdslAbort::Conflict) => {
                    self.aborts.fetch_add(1, Ordering::Relaxed);
                    std::thread::yield_now();
                }
                Err(e) => {
                    self.aborts.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
            }
        }
    }

    /// Non-transactional lookup (single-op transaction).
    pub fn get(&self, key: u64) -> Option<u64> {
        self.run(|tx| Ok(self.get_tx(tx, key))).unwrap()
    }

    /// Non-transactional insert-or-replace.
    pub fn put(&self, key: u64, val: u64) -> Option<u64> {
        self.run(|tx| Ok(self.put_tx(tx, key, val))).unwrap()
    }

    /// Non-transactional insert-if-absent.
    pub fn insert(&self, key: u64, val: u64) -> bool {
        self.run(|tx| Ok(self.insert_tx(tx, key, val))).unwrap()
    }

    /// Non-transactional remove.
    pub fn remove(&self, key: u64) -> Option<u64> {
        self.run(|tx| Ok(self.remove_tx(tx, key))).unwrap()
    }

    /// Quiescent count of live keys.
    pub fn len_quiescent(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .values()
                    .filter(|c| c.value.lock().is_some())
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_crud() {
        let m = TdslMap::new();
        assert_eq!(m.get(1), None);
        assert!(m.insert(1, 10));
        assert!(!m.insert(1, 11));
        assert_eq!(m.get(1), Some(10));
        assert_eq!(m.put(1, 12), Some(10));
        assert_eq!(m.remove(1), Some(12));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.len_quiescent(), 0);
    }

    #[test]
    fn explicit_abort_rolls_back() {
        let m = TdslMap::new();
        assert!(m.insert(1, 100));
        let r: Result<(), TdslAbort> = m.run(|tx| {
            m.put_tx(tx, 1, 0);
            Err(TdslAbort::Explicit)
        });
        assert_eq!(r, Err(TdslAbort::Explicit));
        assert_eq!(m.get(1), Some(100));
    }

    #[test]
    fn cross_map_transaction() {
        let a = TdslMap::new();
        let b = TdslMap::new();
        assert!(a.insert(1, 50));
        let r = a.run(|tx| {
            let v = a.get_tx(tx, 1).unwrap();
            a.put_tx(tx, 1, v - 20);
            b.put_tx(tx, 1, 20);
            Ok(())
        });
        assert!(r.is_ok());
        assert_eq!(a.get(1), Some(30));
        assert_eq!(b.get(1), Some(20));
    }

    #[test]
    fn concurrent_transfers_preserve_sum() {
        const THREADS: usize = 4;
        const OPS: usize = 400;
        const KEYS: u64 = 8;
        let m = Arc::new(TdslMap::new());
        for k in 0..KEYS {
            m.insert(k, 100);
        }
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let m = Arc::clone(&m);
            joins.push(std::thread::spawn(move || {
                let mut rng = medley::util::FastRng::new(t as u64 + 1);
                for _ in 0..OPS {
                    let from = rng.next_below(KEYS);
                    let to = rng.next_below(KEYS);
                    if from == to {
                        continue;
                    }
                    let _ = m.run(|tx| {
                        let a = m.get_tx(tx, from).unwrap();
                        let b = m.get_tx(tx, to).unwrap();
                        if a == 0 {
                            return Err(TdslAbort::Explicit);
                        }
                        m.put_tx(tx, from, a - 1);
                        m.put_tx(tx, to, b + 1);
                        Ok(())
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let total: u64 = (0..KEYS).map(|k| m.get(k).unwrap()).sum();
        assert_eq!(total, KEYS * 100);
    }
}
