//! # txMontage — persistent ACID transactions = Medley ⊕ nbMontage
//!
//! txMontage (paper Sec. 4) grafts the nbMontage epoch system onto Medley:
//! the persistence epoch is read at `tx_begin` and validated as part of the
//! M-compare-N-swap commit, so all operations of a transaction linearize in
//! the same epoch and are therefore recovered — or lost — together.  On top
//! of the isolation and consistency Medley already provides, this yields
//! failure atomicity and (buffered) durability: full ACID transactions with
//! *buffered durable strict serializability*.
//!
//! This crate provides [`Durable`], a wrapper that turns any Medley map from
//! `nbds` into its persistent counterpart by pairing every live key with a
//! payload record in a [`pmem::PersistenceDomain`]:
//!
//! * the transient index (hash table / skiplist) stays in DRAM, exactly as
//!   nbMontage keeps indices transient;
//! * every update allocates or retires payload records in the calling
//!   thread's arena, tagged with the operation's epoch;
//! * payload bookkeeping for committed updates runs in the post-commit
//!   cleanup phase, and payloads of aborted transactions are abandoned via
//!   Medley's abort actions;
//! * [`Durable::recover`] rebuilds the key/value mapping as of the nbMontage
//!   recovery point (end of epoch `e − 2`).
//!
//! In production the epoch clock is driven by a background
//! [`pmem::EpochAdvancer`], which periodically advances the epoch and writes
//! back the dirty payloads of the epochs crossing the durability horizon —
//! without it, nothing ever becomes durable on its own and only explicit
//! [`Durable::sync`] calls move the horizon:
//!
//! ## Known simulation limitation: pre-linearization payload visibility
//!
//! A payload record is allocated in the domain *before* the index update
//! that publishes it linearizes (both standalone and transactional paths;
//! the Mutex-slab design of earlier revisions had the same window).  If the
//! updating thread stalls for two or more epoch advances inside that
//! microseconds-wide window, a concurrent [`Durable::recover`] can include
//! the pending key/value even though the operation has not happened (and may
//! yet fail or abort, abandoning the payload).  Real nbMontage closes this
//! with its epoch-participation protocol — the advancer waits for the
//! operations of an epoch to retire before persisting it — which this
//! simulation does not model.  The post-linearization tag race, by
//! contrast, *is* handled: standalone operations re-validate the epoch
//! after their update and re-tag conservatively.
//!
//! ```
//! use medley::TxManager;
//! use nbds::MichaelHashMap;
//! use pmem::{EpochAdvancer, NvmCostModel, PersistenceDomain};
//! use std::time::Duration;
//! use txmontage::Durable;
//!
//! let mgr = TxManager::new();
//! let domain = PersistenceDomain::new(mgr.clone(), NvmCostModel::ZERO);
//! let map = Durable::new(MichaelHashMap::with_buckets(64), domain.clone());
//! // The advancer ticks the epoch clock in the background, like
//! // nbMontage's; completed operations become durable within two periods.
//! let advancer = EpochAdvancer::spawn(domain.clone(), Duration::from_millis(1));
//! let mut h = mgr.register();
//!
//! // Standalone (uninstrumented) update through the NonTx context...
//! map.put(&mut h.nontx(), 1, 100u64);
//! // ...or a failure-atomic transactional one through the Txn context.
//! let _ = h.run(|t| {
//!     map.put(t, 2, 200);
//!     map.put(t, 3, 300);
//!     Ok(())
//! });
//! domain.sync();                       // force durability now (don't wait)
//! assert_eq!(map.recover().get(&1), Some(&100));
//! assert_eq!(map.recover().get(&2), Some(&200));
//! drop(advancer);                      // stops and joins the ticker
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use medley::Ctx;
use nbds::{MichaelHashMap, SkipList, SplitOrderedMap, TxMap, TxOrderedMap};
use pmem::{PayloadId, PersistenceDomain, Value};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

/// A user value type that can flow through a [`Durable`] map: it converts
/// to/from the payload store's [`pmem::Value`] representation.
///
/// `u64` is the historical fixed-width value (and the default type
/// parameter of every alias below); [`pmem::Value`] itself is the
/// variable-length value the KV service stores.
pub trait DurableValue: Clone + Send + Sync + 'static {
    /// The payload-store representation of this value.
    fn to_value(&self) -> Value;
    /// Rebuilds the value from its payload-store representation (recovery
    /// path).
    fn from_value(v: Value) -> Self;
}

impl DurableValue for u64 {
    fn to_value(&self) -> Value {
        Value::U64(*self)
    }
    fn from_value(v: Value) -> Self {
        v.as_u64()
            .expect("u64-typed durable map recovered a blob value")
    }
}

impl DurableValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
    fn from_value(v: Value) -> Self {
        v
    }
}

/// A persistent (buffered-durably strictly serializable) map built from a
/// transient Medley map `M` and an nbMontage persistence domain.  The
/// transient index stores `(V, payload id)` pairs; `V` defaults to the
/// historical fixed-width `u64` and may be [`pmem::Value`] for
/// variable-length values.
pub struct Durable<M, V = u64> {
    inner: M,
    domain: Arc<PersistenceDomain>,
    _marker: PhantomData<V>,
}

/// Persistent hash map (txMontage counterpart of the paper's Michael hash
/// table experiments, Fig. 7).
pub type DurableHashMap<V = u64> = Durable<MichaelHashMap<(V, u64)>, V>;
/// Persistent skiplist (txMontage counterpart of the skiplist experiments,
/// Figs. 8–10).
pub type DurableSkipList<V = u64> = Durable<SkipList<(V, u64)>, V>;
/// Persistent **elastic** hash map: a split-ordered-list index whose bucket
/// directory grows on-line, wrapped with the same payload discipline as
/// [`DurableHashMap`].  Directory doubling is transient-index infrastructure
/// — it touches no payloads and plays no part in recovery.
pub type DurableSplitOrderedMap<V = u64> = Durable<SplitOrderedMap<(V, u64)>, V>;

impl<V: DurableValue> DurableHashMap<V> {
    /// Creates a persistent hash map with `buckets` buckets.
    pub fn hash_map(buckets: usize, domain: Arc<PersistenceDomain>) -> Self {
        Durable::new(MichaelHashMap::with_buckets(buckets), domain)
    }
}

impl<V: DurableValue> DurableSkipList<V> {
    /// Creates a persistent skiplist.
    pub fn skip_list(domain: Arc<PersistenceDomain>) -> Self {
        Durable::new(SkipList::new(), domain)
    }
}

impl<V: DurableValue> DurableSplitOrderedMap<V> {
    /// Creates a persistent elastic hash map starting at `buckets` buckets
    /// (a warm-start hint; the directory grows on its own).
    pub fn split_ordered(buckets: usize, domain: Arc<PersistenceDomain>) -> Self {
        Durable::new(SplitOrderedMap::with_buckets(buckets), domain)
    }
}

impl<M, V> Durable<M, V>
where
    M: TxMap<(V, u64)>,
    V: DurableValue,
{
    /// Wraps a transient Medley map.  The domain must be bound to the same
    /// `TxManager` as the handles that will operate on the map (payload
    /// arenas are indexed by the manager's thread slots).
    pub fn new(inner: M, domain: Arc<PersistenceDomain>) -> Self {
        Self {
            inner,
            domain,
            _marker: PhantomData,
        }
    }

    /// The persistence domain backing this map.
    pub fn domain(&self) -> &Arc<PersistenceDomain> {
        &self.domain
    }

    /// The transient index, for structure-level introspection (bucket
    /// counts, item counters, grow events) that the payload layer does not
    /// see.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The epoch to tag payloads of the current operation with: inside a
    /// transaction, the epoch validated by the MCNS commit; outside, the
    /// current epoch.
    fn op_epoch<C: Ctx>(&self, cx: &C) -> u64 {
        cx.snapshot_epoch()
            .unwrap_or_else(|| self.domain.current_epoch())
    }

    /// Closes the standalone-update epoch race: a `NonTx` operation reads
    /// the epoch once *before* its index update, so the clock may advance
    /// before the update linearizes — the payload would then be tagged one
    /// epoch early and claimed durable (recovered) at a horizon the
    /// operation is not part of, losing or resurrecting it across a crash.
    /// Transactions are immune (the MCNS commit validates the snapshot
    /// epoch), so for standalone operations we re-read the epoch *after* the
    /// update and, on a change, conservatively re-tag the touched payloads
    /// with the later epoch: the operation linearized no later than the
    /// re-read, so the new tag can delay durability by one horizon but never
    /// claim it early.
    fn revalidate_standalone_epoch(
        &self,
        tagged: u64,
        birth: Option<PayloadId>,
        retired: Option<PayloadId>,
    ) {
        let now = self.domain.current_epoch();
        if now != tagged {
            if let Some(id) = birth {
                self.domain.retag_birth(id, tagged, now);
            }
            if let Some(id) = retired {
                self.domain.retag_retire(id, tagged, now);
            }
        }
    }

    /// Looks up `key`.
    pub fn get<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        self.inner.get(cx, key).map(|(v, _)| v)
    }

    /// Whether `key` is present (no payload or value is cloned).
    pub fn contains<C: Ctx>(&self, cx: &mut C, key: u64) -> bool {
        self.inner.contains(cx, key)
    }

    /// Inserts `key -> val` if absent; returns `true` on success.
    pub fn insert<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> bool {
        let epoch = self.op_epoch(cx);
        let payload = self
            .domain
            .alloc_value(cx.tid(), key, &val.to_value(), epoch);
        if self.inner.insert(cx, key, (val, payload.0)) {
            let domain = Arc::clone(&self.domain);
            cx.add_abort_action(move |_| domain.abandon_payload(payload));
            if !cx.is_transactional() {
                self.revalidate_standalone_epoch(epoch, Some(payload), None);
            }
            true
        } else {
            self.domain.abandon_payload(payload);
            false
        }
    }

    /// Inserts or replaces; returns the previous value if any.
    pub fn put<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> Option<V> {
        let epoch = self.op_epoch(cx);
        let payload = self
            .domain
            .alloc_value(cx.tid(), key, &val.to_value(), epoch);
        let prev = self.inner.put(cx, key, (val, payload.0));
        let domain = Arc::clone(&self.domain);
        cx.add_abort_action(move |_| domain.abandon_payload(payload));
        let retired = prev
            .as_ref()
            .map(|(_, old_payload)| PayloadId(*old_payload));
        if let Some(old) = retired {
            let domain = Arc::clone(&self.domain);
            cx.add_cleanup(move |_| domain.retire_payload(old, epoch));
        }
        if !cx.is_transactional() {
            self.revalidate_standalone_epoch(epoch, Some(payload), retired);
        }
        prev.map(|(old_val, _)| old_val)
    }

    /// Removes `key`; returns its value if present.
    pub fn remove<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        let epoch = self.op_epoch(cx);
        match self.inner.remove(cx, key) {
            Some((old_val, old_payload)) => {
                let old = PayloadId(old_payload);
                let domain = Arc::clone(&self.domain);
                cx.add_cleanup(move |_| domain.retire_payload(old, epoch));
                if !cx.is_transactional() {
                    self.revalidate_standalone_epoch(epoch, None, Some(old));
                }
                Some(old_val)
            }
            None => None,
        }
    }

    /// Ordered range cursor over the durable map (available when the
    /// transient index is ordered, i.e. for [`DurableSkipList`]).
    ///
    /// The cursor runs entirely against the transient index — payload ids
    /// are stripped from the collected pairs — so it inherits the index's
    /// atomic-snapshot guarantee: under a transactional context the
    /// linearizing loads join the read set and a committed scan is an
    /// atomic ordered page.  Durability is untouched (a scan writes
    /// nothing), and because recovery rebuilds the same index from the
    /// payload records, a scan after [`Durable::recover`]-driven reload
    /// sees exactly the recovered cut.
    pub fn range<C: Ctx>(
        &self,
        cx: &mut C,
        bounds: std::ops::Range<u64>,
        limit: usize,
    ) -> Vec<(u64, V)>
    where
        M: TxOrderedMap<(V, u64)>,
    {
        self.inner
            .range(cx, bounds, limit)
            .into_iter()
            .map(|(k, (v, _payload))| (k, v))
            .collect()
    }

    /// Makes all completed operations durable (nbMontage `sync`).
    pub fn sync(&self) {
        self.domain.sync();
    }

    /// Simulated post-crash recovery: the key/value mapping as of the
    /// nbMontage recovery point (end of epoch `current − 2`).
    pub fn recover(&self) -> HashMap<u64, V> {
        self.recover_with_horizon().0
    }

    /// Recovery that also reports the epoch horizon of the returned cut (see
    /// [`PersistenceDomain::recover_with_horizon`]).
    pub fn recover_with_horizon(&self) -> (HashMap<u64, V>, u64) {
        let (rec, horizon) = self.domain.recover_with_horizon();
        (
            rec.into_iter()
                .map(|(k, v)| (k, V::from_value(v)))
                .collect(),
            horizon,
        )
    }
}

impl<M, V> TxMap<V> for Durable<M, V>
where
    M: TxMap<(V, u64)>,
    V: DurableValue,
{
    fn get<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        Durable::get(self, cx, key)
    }
    fn insert<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> bool {
        Durable::insert(self, cx, key, val)
    }
    fn put<C: Ctx>(&self, cx: &mut C, key: u64, val: V) -> Option<V> {
        Durable::put(self, cx, key, val)
    }
    fn remove<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<V> {
        Durable::remove(self, cx, key)
    }
    fn contains<C: Ctx>(&self, cx: &mut C, key: u64) -> bool {
        Durable::contains(self, cx, key)
    }
}

impl<M, V> TxOrderedMap<V> for Durable<M, V>
where
    M: TxOrderedMap<(V, u64)>,
    V: DurableValue,
{
    fn range<C: Ctx>(
        &self,
        cx: &mut C,
        bounds: std::ops::Range<u64>,
        limit: usize,
    ) -> Vec<(u64, V)> {
        Durable::range(self, cx, bounds, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medley::{AbortReason, TxManager, TxResult};
    use pmem::{EpochAdvancer, NvmCostModel};

    fn setup() -> (Arc<TxManager>, Arc<PersistenceDomain>, DurableHashMap) {
        let mgr = TxManager::new();
        let domain = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::ZERO);
        let map = DurableHashMap::hash_map(64, Arc::clone(&domain));
        (mgr, domain, map)
    }

    #[test]
    fn basic_persistence_roundtrip() {
        let (mgr, domain, map) = setup();
        let mut h = mgr.register();
        assert!(map.insert(&mut h.nontx(), 1, 10));
        assert_eq!(map.get(&mut h.nontx(), 1), Some(10));
        // Not yet durable.
        assert!(map.recover().is_empty());
        domain.sync();
        assert_eq!(map.recover().get(&1), Some(&10));
        // Remove, then make the removal durable.
        assert_eq!(map.remove(&mut h.nontx(), 1), Some(10));
        domain.sync();
        assert!(!map.recover().contains_key(&1));
    }

    #[test]
    fn replace_retires_old_payload() {
        let (mgr, domain, map) = setup();
        let mut h = mgr.register();
        assert_eq!(map.put(&mut h.nontx(), 5, 50), None);
        assert_eq!(map.put(&mut h.nontx(), 5, 51), Some(50));
        domain.sync();
        let rec = map.recover();
        assert_eq!(rec.get(&5), Some(&51));
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn transactional_updates_recover_atomically() {
        let (mgr, domain, map) = setup();
        let mut h = mgr.register();
        // Two keys updated in one transaction are recovered together.
        let res: TxResult<()> = h.run(|h| {
            map.put(h, 1, 100);
            map.put(h, 2, 200);
            Ok(())
        });
        assert!(res.is_ok());
        domain.sync();
        let rec = map.recover();
        assert_eq!(rec.get(&1), Some(&100));
        assert_eq!(rec.get(&2), Some(&200));
    }

    #[test]
    fn aborted_transactions_leave_no_payloads() {
        let (mgr, domain, map) = setup();
        let mut h = mgr.register();
        let res: TxResult<()> = h.run(|h| {
            map.put(h, 7, 70);
            map.put(h, 8, 80);
            Err(h.abort(AbortReason::Explicit))
        });
        assert!(res.is_err());
        domain.sync();
        let rec = map.recover();
        assert!(
            rec.is_empty(),
            "aborted transaction must not be recovered: {rec:?}"
        );
        assert_eq!(domain.stats().live_payloads, 0);
    }

    #[test]
    fn cross_epoch_transactions_are_aborted_and_retried() {
        let (mgr, domain, map) = setup();
        let mut h = mgr.register();
        let mut first_attempt = true;
        let res: TxResult<()> = h.run(|h| {
            map.put(h, 3, 30);
            if first_attempt {
                first_attempt = false;
                // The epoch advances mid-transaction; the MCNS epoch check
                // must abort and the retry must succeed in the new epoch.
                domain.advance_epoch();
            }
            Ok(())
        });
        assert!(res.is_ok());
        assert!(!first_attempt);
        domain.sync();
        assert_eq!(map.recover().get(&3), Some(&30));
    }

    #[test]
    fn skiplist_variant_works_too() {
        let mgr = TxManager::new();
        let domain = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::ZERO);
        let map = DurableSkipList::skip_list(Arc::clone(&domain));
        let mut h = mgr.register();
        for k in 0..50u64 {
            assert!(map.insert(&mut h.nontx(), k, k * 2));
        }
        for k in (0..50u64).step_by(2) {
            assert_eq!(map.remove(&mut h.nontx(), k), Some(k * 2));
        }
        domain.sync();
        let rec = map.recover();
        assert_eq!(rec.len(), 25);
        for k in (1..50u64).step_by(2) {
            assert_eq!(rec.get(&k), Some(&(k * 2)));
        }
    }

    #[test]
    fn durable_skiplist_range_scans_and_survives_recovery() {
        let mgr = TxManager::new();
        let domain = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::ZERO);
        let map = DurableSkipList::skip_list(Arc::clone(&domain));
        let mut h = mgr.register();
        for k in 0..100u64 {
            assert!(map.insert(&mut h.nontx(), k * 2, k));
        }
        // Transactional ordered page, payload ids stripped.
        let res: TxResult<Vec<(u64, u64)>> = h.run(|t| Ok(map.range(t, 10..30, usize::MAX)));
        let page = res.unwrap();
        assert_eq!(
            page,
            (5..15).map(|k| (k * 2, k)).collect::<Vec<_>>(),
            "ordered page over the durable index"
        );
        // A scan after recovery-driven reload sees exactly the cut.
        domain.sync();
        let rec = map.recover();
        let domain2 = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::ZERO);
        let map2 = DurableSkipList::skip_list(Arc::clone(&domain2));
        for (k, v) in rec {
            assert!(map2.insert(&mut h.nontx(), k, v));
        }
        assert_eq!(
            map2.range(&mut h.nontx(), 10..30, usize::MAX),
            page,
            "scan over the reloaded cut must reproduce the page"
        );
        assert_eq!(map2.range(&mut h.nontx(), 10..30, 3).len(), 3);
    }

    #[test]
    fn split_ordered_variant_grows_and_recovers() {
        let mgr = TxManager::new();
        let domain = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::ZERO);
        let map = DurableSplitOrderedMap::split_ordered(2, Arc::clone(&domain));
        let mut h = mgr.register();
        const N: u64 = 2_000;
        for k in 0..N {
            assert!(map.insert(&mut h.nontx(), k, k * 2));
        }
        assert!(
            map.inner().grow_events() > 0,
            "the durable index must grow like the transient one"
        );
        for k in (0..N).step_by(2) {
            assert_eq!(map.remove(&mut h.nontx(), k), Some(k * 2));
        }
        // Transactional move across the grown table.
        let res: TxResult<()> = h.run(|h| {
            let v = map.remove(h, 1).unwrap();
            assert!(map.insert(h, N + 1, v));
            Ok(())
        });
        assert!(res.is_ok());
        domain.sync();
        let rec = map.recover();
        assert_eq!(rec.len() as u64, N / 2);
        assert_eq!(rec.get(&(N + 1)), Some(&2));
        assert!(!rec.contains_key(&1));
        for k in (3..N).step_by(2) {
            assert_eq!(rec.get(&k), Some(&(k * 2)));
        }
    }

    #[test]
    fn blob_values_flow_through_transactions_and_recovery() {
        use pmem::Value;
        let mgr = TxManager::new();
        let domain = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::ZERO);
        let map: DurableHashMap<Value> = DurableHashMap::hash_map(64, Arc::clone(&domain));
        let mut h = mgr.register();
        let small = Value::from_bytes(b"hello");
        let big = Value::from_bytes(&vec![7u8; 4096]);
        assert!(map.insert(&mut h.nontx(), 1, small.clone()));
        let res: TxResult<()> = h.run(|t| {
            map.put(t, 2, big.clone());
            map.put(t, 3, Value::U64(33));
            Ok(())
        });
        assert!(res.is_ok());
        domain.sync();
        let rec = map.recover();
        assert_eq!(rec.get(&1), Some(&small));
        assert_eq!(rec.get(&2), Some(&big));
        assert_eq!(rec.get(&3), Some(&Value::U64(33)));
        // Replacement retires the old blob's payload (and, in the arena
        // store, its overflow chain).
        assert_eq!(map.put(&mut h.nontx(), 2, Value::U64(2)), Some(big));
        domain.sync();
        assert_eq!(map.recover().get(&2), Some(&Value::U64(2)));
        assert_eq!(domain.stats().live_payloads, 3);
    }

    #[test]
    fn recovery_is_prefix_consistent_across_epochs() {
        // Operations in later epochs may be lost, but never operations from
        // an epoch at or before the recovery horizon.
        let (mgr, domain, map) = setup();
        let mut h = mgr.register();
        map.put(&mut h.nontx(), 1, 11);
        domain.advance_epoch(); // epoch 1
        map.put(&mut h.nontx(), 2, 22);
        domain.advance_epoch(); // epoch 2: epoch-0 work durable
        map.put(&mut h.nontx(), 3, 33);
        let rec = map.recover();
        assert_eq!(rec.get(&1), Some(&11), "epoch-0 update must be durable");
        assert!(!rec.contains_key(&3), "current-epoch update may be lost");
    }

    #[test]
    fn standalone_ops_under_microsecond_advancer_recover_exactly() {
        // Satellite-2 regression: 8 threads of standalone (NonTx) puts and
        // removes race a ~µs-period advancer, so the epoch clock routinely
        // moves between an operation's epoch read and its index update —
        // the window in which payloads used to keep a one-epoch-early tag.
        // Each thread owns a disjoint key range with monotonically
        // increasing values; concurrent recoveries must always be
        // consistent cuts (monotone per key), and the final recovery after
        // a quiescent sync must equal the live contents exactly.
        const THREADS: usize = 8;
        const KEYS_PER_THREAD: u64 = 16;
        const ROUNDS: u64 = 400;
        let mgr = TxManager::with_max_threads(THREADS + 1);
        let domain = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::ZERO);
        let map = Arc::new(DurableHashMap::hash_map(256, Arc::clone(&domain)));
        let advancer =
            EpochAdvancer::spawn(Arc::clone(&domain), std::time::Duration::from_micros(1));
        std::thread::scope(|s| {
            for t in 0..THREADS as u64 {
                let mgr = Arc::clone(&mgr);
                let map = Arc::clone(&map);
                s.spawn(move || {
                    let mut h = mgr.register();
                    for i in 1..=ROUNDS {
                        let k = t * KEYS_PER_THREAD + (i % KEYS_PER_THREAD);
                        if i % 7 == 0 {
                            map.remove(&mut h.nontx(), k);
                        } else {
                            map.put(&mut h.nontx(), k, i);
                        }
                    }
                });
            }
            // Concurrent recoveries: every cut must be per-key monotone
            // (values only grow within a thread's range).
            let mut floors: HashMap<u64, u64> = HashMap::new();
            for _ in 0..200 {
                let (rec, _) = map.recover_with_horizon();
                for (k, v) in rec {
                    let f = floors.entry(k).or_insert(0);
                    assert!(v >= *f, "key {k} went backwards: recovered {v} after {f}");
                    *f = v;
                }
            }
        });
        drop(advancer);
        // Quiesce: after two syncs everything completed is durable, so the
        // recovery must equal the live map exactly — a stale early tag (or a
        // lost retirement) would surface as a missing/resurrected key here.
        domain.sync();
        domain.sync();
        let rec = map.recover();
        let mut h = mgr.register();
        let mut cx = h.nontx();
        let mut live = 0;
        for t in 0..THREADS as u64 {
            for j in 0..KEYS_PER_THREAD {
                let k = t * KEYS_PER_THREAD + j;
                let in_map = map.get(&mut cx, k);
                assert_eq!(
                    rec.get(&k).copied(),
                    in_map,
                    "recovery and live map disagree on key {k}"
                );
                if in_map.is_some() {
                    live += 1;
                }
            }
        }
        assert_eq!(rec.len(), live);
        assert_eq!(domain.stats().live_payloads, live);
    }
}
