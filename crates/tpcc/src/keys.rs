//! Key encoding: every TPC-C table field used by `newOrder` / `payment` maps
//! to one `u64` key in the backing transactional map.
//!
//! Layout: `| table:8 | field:8 | warehouse:8 | district:8 | entity:32 |`.

/// Table identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Table {
    /// WAREHOUSE
    Warehouse = 1,
    /// DISTRICT
    District = 2,
    /// CUSTOMER
    Customer = 3,
    /// ITEM
    Item = 4,
    /// STOCK
    Stock = 5,
    /// ORDER
    Order = 6,
    /// NEW-ORDER
    NewOrder = 7,
    /// ORDER-LINE
    OrderLine = 8,
    /// HISTORY
    History = 9,
}

/// Field identifiers within a table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Field {
    /// W_YTD / D_YTD / S_YTD ...
    Ytd = 1,
    /// W_TAX / D_TAX
    Tax = 2,
    /// D_NEXT_O_ID
    NextOrderId = 3,
    /// C_BALANCE
    Balance = 4,
    /// C_YTD_PAYMENT
    YtdPayment = 5,
    /// C_PAYMENT_CNT
    PaymentCnt = 6,
    /// I_PRICE
    Price = 7,
    /// S_QUANTITY
    Quantity = 8,
    /// S_ORDER_CNT
    OrderCnt = 9,
    /// Order header / order-line / history record
    Record = 10,
    /// O_OL_CNT (number of lines in an order)
    LineCount = 11,
}

/// Encodes a field key.
#[inline]
pub fn key(table: Table, field: Field, warehouse: u64, district: u64, entity: u64) -> u64 {
    debug_assert!(warehouse < 256 && district < 256 && entity < (1 << 32));
    ((table as u64) << 56) | ((field as u64) << 48) | (warehouse << 40) | (district << 32) | entity
}

/// Key of a warehouse-level field.
pub fn warehouse_key(field: Field, w: u64) -> u64 {
    key(Table::Warehouse, field, w, 0, 0)
}

/// Key of a district-level field.
pub fn district_key(field: Field, w: u64, d: u64) -> u64 {
    key(Table::District, field, w, d, 0)
}

/// Key of a customer-level field.
pub fn customer_key(field: Field, w: u64, d: u64, c: u64) -> u64 {
    key(Table::Customer, field, w, d, c)
}

/// Key of an item-level field.
pub fn item_key(field: Field, i: u64) -> u64 {
    key(Table::Item, field, 0, 0, i)
}

/// Key of a stock-level field.
pub fn stock_key(field: Field, w: u64, i: u64) -> u64 {
    key(Table::Stock, field, w, 0, i)
}

/// Key of an order header record (order id within a district).
pub fn order_key(field: Field, w: u64, d: u64, o: u64) -> u64 {
    key(Table::Order, field, w, d, o)
}

/// Key of a NEW-ORDER record.
pub fn new_order_key(w: u64, d: u64, o: u64) -> u64 {
    key(Table::NewOrder, Field::Record, w, d, o)
}

/// Key of an order line (order id and line number packed into the entity).
pub fn order_line_key(w: u64, d: u64, o: u64, line: u64) -> u64 {
    debug_assert!(line < 16 && o < (1 << 28));
    key(Table::OrderLine, Field::Record, w, d, (o << 4) | line)
}

/// Key of a history record (per customer, sequence-numbered).
pub fn history_key(w: u64, d: u64, c: u64, seq: u64) -> u64 {
    debug_assert!(seq < 256 && c < (1 << 24));
    key(Table::History, Field::Record, w, d, (c << 8) | seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique_across_tables_and_fields() {
        let ks = vec![
            warehouse_key(Field::Ytd, 1),
            warehouse_key(Field::Tax, 1),
            warehouse_key(Field::Ytd, 2),
            district_key(Field::Ytd, 1, 1),
            district_key(Field::NextOrderId, 1, 1),
            customer_key(Field::Balance, 1, 1, 42),
            customer_key(Field::YtdPayment, 1, 1, 42),
            item_key(Field::Price, 42),
            stock_key(Field::Quantity, 1, 42),
            order_key(Field::Record, 1, 1, 7),
            new_order_key(1, 1, 7),
            order_line_key(1, 1, 7, 3),
            history_key(1, 1, 42, 0),
        ];
        let mut dedup = ks.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ks.len(), "key encoding collided");
    }

    #[test]
    fn order_line_keys_distinct_per_line() {
        let a = order_line_key(1, 2, 100, 0);
        let b = order_line_key(1, 2, 100, 1);
        let c = order_line_key(1, 2, 101, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
