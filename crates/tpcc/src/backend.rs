//! Backends: adapters that let the TPC-C transactions run on each of the
//! transactional systems compared in the paper's Fig. 9.

use crate::{KvTx, TpccAbort, TpccBackend};
use medley::{AbortReason, Ctx, ThreadHandle, TxManager, TxResult};
use nbds::TxMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Medley / txMontage backend (any nbds::TxMap, including txmontage::Durable)
// ---------------------------------------------------------------------------

/// Backend running TPC-C over a Medley-composable map (a `SkipList`, a
/// `MichaelHashMap`, or a txMontage `Durable` wrapper).
pub struct MedleyBackend<M> {
    mgr: Arc<TxManager>,
    map: Arc<M>,
}

impl<M: TxMap<u64>> MedleyBackend<M> {
    /// Creates the backend.
    pub fn new(mgr: Arc<TxManager>, map: Arc<M>) -> Self {
        Self { mgr, map }
    }

    /// The underlying map.
    pub fn map(&self) -> &Arc<M> {
        &self.map
    }

    /// The transaction manager.
    pub fn manager(&self) -> &Arc<TxManager> {
        &self.mgr
    }
}

/// [`KvTx`] adapter over any Medley execution context: the same adapter
/// serves transactional bodies (`C = Txn`) and, if a caller ever wants raw
/// standalone access, `C = NonTx`.
struct MedleyKv<'a, C, M> {
    cx: &'a mut C,
    map: &'a M,
}

impl<C: Ctx, M: TxMap<u64>> KvTx for MedleyKv<'_, C, M> {
    fn get(&mut self, key: u64) -> Option<u64> {
        self.map.get(self.cx, key)
    }
    fn put(&mut self, key: u64, val: u64) {
        self.map.put(self.cx, key, val);
    }
    fn insert(&mut self, key: u64, val: u64) -> bool {
        self.map.insert(self.cx, key, val)
    }
}

impl<M: TxMap<u64> + 'static> TpccBackend for MedleyBackend<M> {
    type Session = ThreadHandle;

    fn session(&self) -> ThreadHandle {
        self.mgr.register()
    }

    fn run_tx(
        &self,
        session: &mut ThreadHandle,
        body: &mut dyn FnMut(&mut dyn KvTx) -> Result<(), TpccAbort>,
    ) -> bool {
        let map = &*self.map;
        let res: TxResult<bool> = session.run(|t| {
            let mut kv = MedleyKv { cx: t, map };
            match body(&mut kv) {
                Ok(()) => Ok(true),
                Err(TpccAbort) => Err(kv.cx.abort(AbortReason::Explicit)),
            }
        });
        matches!(res, Ok(true))
    }
}

// ---------------------------------------------------------------------------
// OneFile backend
// ---------------------------------------------------------------------------

/// Backend running TPC-C over the OneFile-style STM hash map.
pub struct OneFileBackend {
    stm: Arc<onefile::OneFileStm>,
    map: Arc<onefile::OneFileMap>,
}

impl OneFileBackend {
    /// Creates the backend (`buckets` for the underlying hash table).
    pub fn new(stm: Arc<onefile::OneFileStm>, buckets: usize) -> Self {
        let map = Arc::new(onefile::OneFileMap::new(Arc::clone(&stm), buckets));
        Self { stm, map }
    }

    /// The underlying map.
    pub fn map(&self) -> &Arc<onefile::OneFileMap> {
        &self.map
    }
}

struct OneFileKv<'a> {
    tx: &'a mut onefile::WriteTx,
    map: &'a onefile::OneFileMap,
}

impl<'a> KvTx for OneFileKv<'a> {
    fn get(&mut self, key: u64) -> Option<u64> {
        self.map.get_w(self.tx, key)
    }
    fn put(&mut self, key: u64, val: u64) {
        self.map.put_w(self.tx, key, val);
    }
    fn insert(&mut self, key: u64, val: u64) -> bool {
        self.map.insert_w(self.tx, key, val)
    }
}

impl TpccBackend for OneFileBackend {
    type Session = ();

    fn session(&self) {}

    fn run_tx(
        &self,
        _session: &mut (),
        body: &mut dyn FnMut(&mut dyn KvTx) -> Result<(), TpccAbort>,
    ) -> bool {
        let map = &*self.map;
        let res = self.stm.write_tx(|tx| {
            let mut kv = OneFileKv { tx, map };
            body(&mut kv).map_err(|_| onefile::OfAbort)
        });
        res.is_ok()
    }
}

// ---------------------------------------------------------------------------
// TDSL backend
// ---------------------------------------------------------------------------

/// Backend running TPC-C over the TDSL-style blocking transactional map.
pub struct TdslBackend {
    map: Arc<tdsl::TdslMap>,
}

impl TdslBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        Self {
            map: Arc::new(tdsl::TdslMap::new()),
        }
    }

    /// The underlying map.
    pub fn map(&self) -> &Arc<tdsl::TdslMap> {
        &self.map
    }
}

impl Default for TdslBackend {
    fn default() -> Self {
        Self::new()
    }
}

struct TdslKv<'a> {
    tx: &'a mut tdsl::TdslTx,
    map: &'a tdsl::TdslMap,
}

impl<'a> KvTx for TdslKv<'a> {
    fn get(&mut self, key: u64) -> Option<u64> {
        self.map.get_tx(self.tx, key)
    }
    fn put(&mut self, key: u64, val: u64) {
        self.map.put_tx(self.tx, key, val);
    }
    fn insert(&mut self, key: u64, val: u64) -> bool {
        self.map.insert_tx(self.tx, key, val)
    }
}

impl TpccBackend for TdslBackend {
    type Session = ();

    fn session(&self) {}

    fn run_tx(
        &self,
        _session: &mut (),
        body: &mut dyn FnMut(&mut dyn KvTx) -> Result<(), TpccAbort>,
    ) -> bool {
        let map = &*self.map;
        let res = map.run(|tx| {
            let mut kv = TdslKv { tx, map };
            body(&mut kv).map_err(|_| tdsl::TdslAbort::Explicit)
        });
        res.is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::*;
    use crate::workload::{execute_input, load_initial_data, random_input, Scale};

    fn check_backend<B: TpccBackend>(backend: &B) {
        let scale = Scale::default();
        let mut session = backend.session();
        // Load.
        assert!(backend.run_tx(&mut session, &mut |kv| {
            load_initial_data(kv, &scale);
            Ok(())
        }));
        // Run a deterministic mix and track expected aggregates.
        let mut rng = medley::util::FastRng::new(42);
        let mut expected_payments = 0u64;
        let mut orders = 0u64;
        for _ in 0..200 {
            let input = random_input(&mut rng, &scale);
            if let crate::TxInput::Payment { amount, .. } = &input {
                expected_payments += *amount;
            }
            if matches!(input, crate::TxInput::NewOrder { .. }) {
                orders += 1;
            }
            assert!(backend.run_tx(&mut session, &mut |kv| execute_input(kv, &input)));
        }
        // Sum of warehouse YTDs equals the sum of all payment amounts.
        let mut w_ytd_total = 0u64;
        let mut next_oid_total = 0u64;
        assert!(backend.run_tx(&mut session, &mut |kv| {
            for w in 0..scale.warehouses {
                w_ytd_total += kv.get(warehouse_key(Field::Ytd, w)).unwrap();
                for d in 0..scale.districts_per_warehouse {
                    next_oid_total += kv.get(district_key(Field::NextOrderId, w, d)).unwrap() - 1;
                }
            }
            Ok(())
        }));
        assert_eq!(w_ytd_total, expected_payments);
        assert_eq!(next_oid_total, orders);
    }

    #[test]
    fn medley_backend_passes_consistency_checks() {
        let mgr = TxManager::new();
        let map = Arc::new(nbds::SkipList::<u64>::new());
        let backend = MedleyBackend::new(mgr, map);
        check_backend(&backend);
    }

    #[test]
    fn onefile_backend_passes_consistency_checks() {
        let backend = OneFileBackend::new(onefile::OneFileStm::new(), 1 << 12);
        check_backend(&backend);
    }

    #[test]
    fn tdsl_backend_passes_consistency_checks() {
        let backend = TdslBackend::new();
        check_backend(&backend);
    }

    #[test]
    fn txmontage_backend_passes_consistency_checks() {
        let mgr = TxManager::new();
        let domain = pmem::PersistenceDomain::new(Arc::clone(&mgr), pmem::NvmCostModel::ZERO);
        let map = Arc::new(txmontage::DurableSkipList::skip_list(domain));
        let backend = MedleyBackend::new(mgr, map);
        check_backend(&backend);
    }
}
