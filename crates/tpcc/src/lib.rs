//! # tpcc — a TPC-C subset (newOrder + payment) over transactional maps
//!
//! The paper's "somewhat more realistic" benchmark (Fig. 9) runs the
//! `newOrder` and `payment` transactions of TPC-C, in a 1:1 mix, over
//! transactional skiplists (following DBx1000's configuration; neither
//! transaction needs range queries).  This crate reproduces that workload:
//!
//! * every table **field** used by the two transactions is one key/value pair
//!   in a transactional map (`u64` keys encode table / warehouse / district /
//!   customer / item ids; `u64` values hold balances, quantities, counters);
//! * the transactions are written once against the [`KvTx`] trait and run on
//!   any backend: Medley maps, txMontage persistent maps, the OneFile STM
//!   baseline, or the TDSL baseline;
//! * the loader populates warehouses, districts, customers, items and stock
//!   at a configurable (scaled-down) size.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backend;
pub mod keys;
pub mod workload;

pub use backend::{MedleyBackend, OneFileBackend, TdslBackend};
pub use keys::*;
pub use workload::{
    execute_input, load_chunked, load_initial_data, new_order, payment, random_input, Scale,
    TxInput,
};

/// Abort signal returned by transaction bodies (business-logic rollback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpccAbort;

/// The key/value operations a TPC-C transaction needs, independent of which
/// transactional system executes it.
pub trait KvTx {
    /// Reads the value of `key`, if present.
    fn get(&mut self, key: u64) -> Option<u64>;
    /// Inserts or replaces `key -> val`.
    fn put(&mut self, key: u64, val: u64);
    /// Inserts `key -> val`; returns `false` if the key already exists.
    fn insert(&mut self, key: u64, val: u64) -> bool;
}

/// A transactional system on which the TPC-C subset can run.
pub trait TpccBackend: Send + Sync {
    /// Per-thread session state (thread handles, etc.).
    type Session;

    /// Creates a session for the calling thread.
    fn session(&self) -> Self::Session;

    /// Runs `body` as one atomic transaction, retrying system-level conflicts
    /// internally.  Returns `false` only if the body requested an abort.
    fn run_tx(
        &self,
        session: &mut Self::Session,
        body: &mut dyn FnMut(&mut dyn KvTx) -> Result<(), TpccAbort>,
    ) -> bool;
}
