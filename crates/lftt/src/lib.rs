//! # lftt — an LFTT-style lock-free transactional map baseline
//!
//! The Lock-Free Transactional Transform (Zhang & Dechev, SPAA'16) composes
//! operations on nonblocking set/map structures by publishing, **on every
//! critical node**, a descriptor of the whole (static) transaction, so that
//! conflicting transactions can detect and resolve each other.  Its
//! performance-defining properties, which this baseline preserves, are:
//!
//! * transactions are **static**: the full list of operations must be known
//!   up front (which is why the paper cannot run LFTT on TPC-C);
//! * **readers are visible**: even a `get` publishes the transaction on the
//!   node it reads, so read-mostly workloads still write shared metadata;
//! * a node's *logical* presence is interpreted from the publishing
//!   transaction's status (committed / aborted) and the operation it
//!   performed, so physical list surgery is off the critical path.
//!
//! Simplifications relative to the original (documented in DESIGN.md): the
//! index is a hashed set of sorted lists rather than a skiplist, conflicts
//! are resolved by aborting the encountered in-flight transaction after a
//! bounded help-wait (the original re-executes the other transaction's
//! remaining operations), and physically removed nodes are reclaimed only at
//! drop time.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Status of an LFTT transaction descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TxStatus {
    /// Still executing.
    Active = 0,
    /// Committed: the "after" state of each published operation is current.
    Committed = 1,
    /// Aborted: the "before" state of each published operation is current.
    Aborted = 2,
}

/// One operation of a static LFTT transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LfttOp {
    /// Insert `key -> value` (fails if the key is logically present).
    Insert(u64, u64),
    /// Remove `key` (fails if absent).
    Remove(u64),
    /// Look up `key` (made visible on the node, as LFTT requires).
    Get(u64),
}

impl LfttOp {
    fn key(&self) -> u64 {
        match self {
            LfttOp::Insert(k, _) | LfttOp::Remove(k) | LfttOp::Get(k) => *k,
        }
    }
}

/// A transaction descriptor shared by all nodes the transaction touches.
#[derive(Debug)]
pub struct LfttDesc {
    status: AtomicU8,
    ops: Vec<LfttOp>,
}

impl LfttDesc {
    fn new(ops: Vec<LfttOp>) -> Arc<Self> {
        Arc::new(Self {
            status: AtomicU8::new(TxStatus::Active as u8),
            ops,
        })
    }

    /// Current status.
    pub fn status(&self) -> TxStatus {
        match self.status.load(Ordering::Acquire) {
            0 => TxStatus::Active,
            1 => TxStatus::Committed,
            _ => TxStatus::Aborted,
        }
    }

    fn try_set(&self, from: TxStatus, to: TxStatus) -> bool {
        self.status
            .compare_exchange(from as u8, to as u8, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// The adoption record installed on a node: which transaction touched it
/// last, and the logical state before/after that transaction.
struct NodeInfo {
    desc: Arc<LfttDesc>,
    present_before: bool,
    present_after: bool,
    value_before: u64,
    value_after: u64,
}

impl NodeInfo {
    /// The node's current logical `(present, value)` given the descriptor's
    /// status.
    fn logical(&self) -> (bool, u64) {
        match self.desc.status() {
            TxStatus::Committed => (self.present_after, self.value_after),
            TxStatus::Aborted => (self.present_before, self.value_before),
            TxStatus::Active => (self.present_before, self.value_before),
        }
    }
}

struct Node {
    key: u64,
    info: AtomicPtr<NodeInfo>,
    next: AtomicU64, // *mut Node bits; insertion-only list
}

/// An LFTT-style transactional map (hashed sorted lists, static transactions).
pub struct LfttMap {
    buckets: Box<[AtomicU64]>,
    mask: u64,
    commits: AtomicU64,
    aborts: AtomicU64,
}

// SAFETY: nodes and NodeInfo records are shared read-mostly; all mutation is
// via atomics; reclamation happens only at drop.
unsafe impl Send for LfttMap {}
unsafe impl Sync for LfttMap {}

const HELP_SPINS: usize = 128;

impl LfttMap {
    /// Creates a map with `buckets` buckets (rounded up to a power of two).
    pub fn new(buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(1);
        Self {
            buckets: (0..n)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            mask: (n - 1) as u64,
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        }
    }

    /// `(commits, aborts)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.commits.load(Ordering::Relaxed),
            self.aborts.load(Ordering::Relaxed),
        )
    }

    #[inline]
    fn bucket(&self, key: u64) -> &AtomicU64 {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.buckets[(h & self.mask) as usize]
    }

    /// Finds the node with `key`, or returns the predecessor link to insert
    /// after.
    fn find(&self, key: u64) -> Result<*mut Node, (&AtomicU64, u64)> {
        let mut prev: &AtomicU64 = self.bucket(key);
        loop {
            let bits = prev.load(Ordering::Acquire);
            let node = bits as usize as *mut Node;
            if node.is_null() {
                return Err((prev, bits));
            }
            // SAFETY: nodes live until drop.
            let nkey = unsafe { (*node).key };
            if nkey == key {
                return Ok(node);
            }
            if nkey > key {
                return Err((prev, bits));
            }
            prev = unsafe { &(*node).next };
        }
    }

    /// Publishes `desc` on the node for op `op`, resolving any in-flight
    /// transaction already published there.  Returns `Ok(op_succeeded)` or
    /// `Err(())` if our own transaction was aborted in the meantime.
    fn adopt(&self, desc: &Arc<LfttDesc>, op: LfttOp) -> Result<bool, ()> {
        let key = op.key();
        loop {
            if desc.status() == TxStatus::Aborted {
                return Err(());
            }
            match self.find(key) {
                Ok(node) => {
                    // SAFETY: node lives until drop; info pointers are only
                    // replaced, never freed before drop.
                    let info_ptr = unsafe { (*node).info.load(Ordering::Acquire) };
                    let info = unsafe { &*info_ptr };
                    if !Arc::ptr_eq(&info.desc, desc) && info.desc.status() == TxStatus::Active {
                        // Conflict with an in-flight transaction: wait briefly
                        // for it to finish, then abort it (bounded helping).
                        for _ in 0..HELP_SPINS {
                            if info.desc.status() != TxStatus::Active {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                        info.desc.try_set(TxStatus::Active, TxStatus::Aborted);
                        continue;
                    }
                    // Compute the state this op observes, and the state to
                    // roll back to if the whole transaction aborts.
                    let (present, value, before) = if Arc::ptr_eq(&info.desc, desc) {
                        // Our own earlier op on this node: chain off its
                        // "after" state, but keep the pre-transaction state as
                        // the rollback point.
                        (
                            info.present_after,
                            info.value_after,
                            (info.present_before, info.value_before),
                        )
                    } else {
                        let cur = info.logical();
                        (cur.0, cur.1, cur)
                    };
                    let (result, present_after, value_after) = match op {
                        LfttOp::Insert(_, v) => {
                            if present {
                                (false, present, value)
                            } else {
                                (true, true, v)
                            }
                        }
                        LfttOp::Remove(_) => {
                            if present {
                                (true, false, value)
                            } else {
                                (false, false, value)
                            }
                        }
                        LfttOp::Get(_) => (present, present, value),
                    };
                    let new_info = Box::into_raw(Box::new(NodeInfo {
                        desc: Arc::clone(desc),
                        present_before: before.0,
                        present_after,
                        value_before: before.1,
                        value_after,
                    }));
                    // SAFETY: CAS on the info pointer; the old record is
                    // leaked until drop (documented simplification).
                    let swapped = unsafe {
                        (*node)
                            .info
                            .compare_exchange(
                                info_ptr,
                                new_info,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                    };
                    if swapped {
                        return Ok(result);
                    }
                    // Lost the race; free our record and retry.
                    unsafe { drop(Box::from_raw(new_info)) };
                }
                Err((prev, expected)) => {
                    match op {
                        LfttOp::Insert(_, v) => {
                            let info = Box::into_raw(Box::new(NodeInfo {
                                desc: Arc::clone(desc),
                                present_before: false,
                                present_after: true,
                                value_before: 0,
                                value_after: v,
                            }));
                            let node = Box::into_raw(Box::new(Node {
                                key,
                                info: AtomicPtr::new(info),
                                next: AtomicU64::new(expected),
                            }));
                            if prev
                                .compare_exchange(
                                    expected,
                                    node as usize as u64,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                )
                                .is_ok()
                            {
                                return Ok(true);
                            }
                            // SAFETY: never published.
                            unsafe {
                                drop(Box::from_raw(node));
                                drop(Box::from_raw(info));
                            }
                        }
                        // Remove / Get of an absent key: the operation simply
                        // reports failure; the transaction can still commit.
                        LfttOp::Remove(_) | LfttOp::Get(_) => return Ok(false),
                    }
                }
            }
        }
    }

    /// Executes a static transaction.  Returns `Some(results)` (one `bool`
    /// per operation: did it succeed / was the key present) if the
    /// transaction committed, `None` if it was aborted by a conflict.
    pub fn execute(&self, ops: &[LfttOp]) -> Option<Vec<bool>> {
        let desc = LfttDesc::new(ops.to_vec());
        let mut results = Vec::with_capacity(ops.len());
        for &op in &desc.ops {
            match self.adopt(&desc, op) {
                Ok(r) => results.push(r),
                Err(()) => {
                    self.aborts.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
        if desc.try_set(TxStatus::Active, TxStatus::Committed) {
            self.commits.fetch_add(1, Ordering::Relaxed);
            Some(results)
        } else {
            self.aborts.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Executes a static transaction, retrying until it commits.
    pub fn execute_retrying(&self, ops: &[LfttOp]) -> Vec<bool> {
        loop {
            if let Some(r) = self.execute(ops) {
                return r;
            }
            std::hint::spin_loop();
        }
    }

    /// Single-operation helpers (one-op transactions).
    pub fn insert(&self, key: u64, val: u64) -> bool {
        self.execute_retrying(&[LfttOp::Insert(key, val)])[0]
    }

    /// Removes `key`; returns whether it was present.
    pub fn remove(&self, key: u64) -> bool {
        self.execute_retrying(&[LfttOp::Remove(key)])[0]
    }

    /// Whether `key` is logically present.
    pub fn contains(&self, key: u64) -> bool {
        self.execute_retrying(&[LfttOp::Get(key)])[0]
    }

    /// Quiescent count of logically present keys.
    pub fn len_quiescent(&self) -> usize {
        let mut n = 0;
        for b in self.buckets.iter() {
            let mut bits = b.load(Ordering::Acquire);
            while bits != 0 {
                let node = bits as usize as *mut Node;
                // SAFETY: quiescent access.
                let info = unsafe { &*(*node).info.load(Ordering::Acquire) };
                if info.logical().0 {
                    n += 1;
                }
                bits = unsafe { (*node).next.load(Ordering::Acquire) };
            }
        }
        n
    }
}

impl Drop for LfttMap {
    fn drop(&mut self) {
        for b in self.buckets.iter() {
            let mut bits = b.load(Ordering::Acquire);
            while bits != 0 {
                let node = bits as usize as *mut Node;
                // SAFETY: exclusive access in Drop.
                unsafe {
                    bits = (*node).next.load(Ordering::Acquire);
                    drop(Box::from_raw((*node).info.load(Ordering::Acquire)));
                    drop(Box::from_raw(node));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_op_semantics() {
        let m = LfttMap::new(64);
        assert!(!m.contains(1));
        assert!(m.insert(1, 10));
        assert!(!m.insert(1, 11), "duplicate insert fails");
        assert!(m.contains(1));
        assert!(m.remove(1));
        assert!(!m.remove(1));
        assert!(!m.contains(1));
        assert_eq!(m.len_quiescent(), 0);
    }

    #[test]
    fn static_transaction_is_atomic() {
        let m = LfttMap::new(64);
        let res = m
            .execute(&[LfttOp::Insert(1, 10), LfttOp::Insert(2, 20), LfttOp::Get(1)])
            .unwrap();
        assert_eq!(res, vec![true, true, true]);
        assert_eq!(m.len_quiescent(), 2);
        // Remove both in one transaction.
        let res = m.execute(&[LfttOp::Remove(1), LfttOp::Remove(2)]).unwrap();
        assert_eq!(res, vec![true, true]);
        assert_eq!(m.len_quiescent(), 0);
    }

    #[test]
    fn aborted_transactions_leave_state_unchanged() {
        let m = Arc::new(LfttMap::new(64));
        m.insert(5, 50);
        // Start a transaction, publish on key 5, then force-abort it by
        // having a competitor adopt the node.
        let desc = LfttDesc::new(vec![LfttOp::Remove(5)]);
        assert_eq!(m.adopt(&desc, LfttOp::Remove(5)), Ok(true));
        // Competitor aborts the active transaction and proceeds.
        assert!(
            m.contains(5),
            "active (not committed) remove must not be visible"
        );
        assert_eq!(desc.status(), TxStatus::Aborted);
    }

    #[test]
    fn concurrent_remove_insert_pairs_preserve_presence() {
        // Every committed transaction removes and immediately re-inserts the
        // same contended key, so at quiescence the key must still be present
        // and the total key count unchanged — a direct test of transactional
        // atomicity under contention.
        const THREADS: usize = 4;
        const OPS: usize = 300;
        const HOT_KEY: u64 = 7;
        let m = Arc::new(LfttMap::new(64));
        for k in 0..16u64 {
            assert!(m.insert(k, k));
        }
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let m = Arc::clone(&m);
            joins.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    let res = m.execute_retrying(&[
                        LfttOp::Remove(HOT_KEY),
                        LfttOp::Insert(HOT_KEY, HOT_KEY),
                    ]);
                    assert_eq!(res, vec![true, true], "pair must observe its own remove");
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(m.contains(HOT_KEY));
        assert_eq!(m.len_quiescent(), 16);
    }

    #[test]
    fn disjoint_concurrent_transactions_all_commit() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 200;
        let m = Arc::new(LfttMap::new(64));
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let m = Arc::clone(&m);
            joins.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let a = t * 10_000 + i * 2;
                    let b = a + 1;
                    let res = m.execute_retrying(&[LfttOp::Insert(a, a), LfttOp::Insert(b, b)]);
                    assert_eq!(res, vec![true, true]);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(m.len_quiescent(), (THREADS * PER_THREAD * 2) as usize);
    }
}
