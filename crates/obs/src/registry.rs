//! Per-worker, allocation-free metrics registry.
//!
//! The registry is built once at server start: every per-operation
//! histogram, abort-reason counter, retry counter, and phase accumulator
//! is a pre-sized atomic slot.  Recording on the request path is a
//! relaxed fetch-add into a fixed index — no allocation, no lock, no
//! contended cache line between workers (each worker owns its
//! [`WorkerMetrics`] block).  Aggregation (the cold path: a `METRICS`
//! request or a scrape) sums across workers into plain
//! [`LatencyHistogram`]s and counter vectors.

use crate::hist::{LatencyHistogram, BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};

/// The label tables a registry is laid out over.  The embedding service
/// supplies its operation, abort-reason, and event-loop phase names;
/// indices into these slices are the only identifiers the hot path uses.
#[derive(Debug, Clone, Copy)]
pub struct RegistrySpec {
    /// Operation labels (one latency histogram + retry counter each).
    pub ops: &'static [&'static str],
    /// Abort/error reason labels (one counter per op × reason).
    pub errors: &'static [&'static str],
    /// Event-loop phase labels (one ns accumulator per worker × phase).
    pub phases: &'static [&'static str],
}

/// A histogram whose buckets are relaxed atomics, recordable from the
/// owning worker without synchronization beyond the increment itself.
struct AtomicHistogram {
    counts: Box<[AtomicU64]>, // BUCKETS entries
    max_ns: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        Self {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            max_ns: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record_ns(&self, ns: u64) {
        let bucket = 63 - (ns | 1).leading_zeros() as usize;
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn merge_into(&self, out: &mut LatencyHistogram) {
        let mut counts = [0u64; BUCKETS];
        for (c, a) in counts.iter_mut().zip(self.counts.iter()) {
            *c = a.load(Ordering::Relaxed);
        }
        out.merge(&LatencyHistogram::from_parts(
            counts,
            self.max_ns.load(Ordering::Relaxed),
        ));
    }
}

/// One worker's pre-allocated metrics block.  All slots are plain atomic
/// words; the worker records with relaxed ordering and a reader thread
/// aggregates whenever asked (counts may trail by an increment — that is
/// the contract of monitoring, not of correctness).
pub struct WorkerMetrics {
    op_hists: Box<[AtomicHistogram]>, // ops
    op_errors: Box<[AtomicU64]>,      // ops × errors, row-major by op
    op_retries: Box<[AtomicU64]>,     // ops
    phase_ns: Box<[AtomicU64]>,       // phases
    n_errors: usize,
}

impl WorkerMetrics {
    fn new(spec: &RegistrySpec) -> Self {
        Self {
            op_hists: (0..spec.ops.len())
                .map(|_| AtomicHistogram::new())
                .collect(),
            op_errors: (0..spec.ops.len() * spec.errors.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            op_retries: (0..spec.ops.len()).map(|_| AtomicU64::new(0)).collect(),
            phase_ns: (0..spec.phases.len()).map(|_| AtomicU64::new(0)).collect(),
            n_errors: spec.errors.len(),
        }
    }

    /// Records one served request of operation `op`: end-to-end latency
    /// plus however many transactional attempts beyond the first it took.
    #[inline]
    pub fn record_op(&self, op: usize, latency_ns: u64, retries: u64) {
        self.op_hists[op].record_ns(latency_ns);
        if retries > 0 {
            self.op_retries[op].fetch_add(retries, Ordering::Relaxed);
        }
    }

    /// Counts one aborted/failed request of operation `op` with reason
    /// index `error` (indices into [`RegistrySpec::errors`]).
    #[inline]
    pub fn record_error(&self, op: usize, error: usize) {
        self.op_errors[op * self.n_errors + error].fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `ns` nanoseconds to phase `phase` (indices into
    /// [`RegistrySpec::phases`]).  Workers batch their phase time locally
    /// per event-loop pass and flush once, so this is not per-request.
    #[inline]
    pub fn add_phase_ns(&self, phase: usize, ns: u64) {
        if ns > 0 {
            self.phase_ns[phase].fetch_add(ns, Ordering::Relaxed);
        }
    }
}

/// Aggregated view of one operation across all workers.
#[derive(Debug, Clone)]
pub struct OpSnapshot {
    /// Index into [`RegistrySpec::ops`].
    pub op: usize,
    /// Merged end-to-end latency histogram.
    pub hist: LatencyHistogram,
    /// Total transactional retries (attempts beyond the first) attributed
    /// to this operation.
    pub retries: u64,
    /// Abort/error counts, indexed like [`RegistrySpec::errors`].
    pub errors: Vec<u64>,
}

impl OpSnapshot {
    /// True if this operation recorded any sample, retry, or error.
    pub fn is_active(&self) -> bool {
        self.hist.total() > 0 || self.retries > 0 || self.errors.iter().any(|&e| e > 0)
    }
}

/// Point-in-time aggregation of a [`MetricsRegistry`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// One entry per operation (same order as [`RegistrySpec::ops`]).
    pub ops: Vec<OpSnapshot>,
    /// `phase_ns[worker][phase]` nanoseconds, indexed like
    /// [`RegistrySpec::phases`].
    pub phase_ns: Vec<Vec<u64>>,
}

/// The registry: one [`WorkerMetrics`] block per worker, aggregated on
/// demand.  Workers index their own block; nothing on the record path is
/// shared between workers.
pub struct MetricsRegistry {
    spec: RegistrySpec,
    workers: Box<[WorkerMetrics]>,
}

impl MetricsRegistry {
    /// Builds a registry for `workers` workers over the given label
    /// tables.  All storage is allocated here, up front.
    pub fn new(spec: RegistrySpec, workers: usize) -> Self {
        Self {
            spec,
            workers: (0..workers).map(|_| WorkerMetrics::new(&spec)).collect(),
        }
    }

    /// The label tables this registry was laid out over.
    pub fn spec(&self) -> &RegistrySpec {
        &self.spec
    }

    /// Number of worker blocks.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Worker `i`'s metrics block (the worker holds on to this reference
    /// for its lifetime; no bounds work on the record path).
    pub fn worker(&self, i: usize) -> &WorkerMetrics {
        &self.workers[i]
    }

    /// Aggregates every worker block into plain histograms and counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let n_errors = self.spec.errors.len();
        let ops = (0..self.spec.ops.len())
            .map(|op| {
                let mut hist = LatencyHistogram::new();
                let mut retries = 0u64;
                let mut errors = vec![0u64; n_errors];
                for w in self.workers.iter() {
                    w.op_hists[op].merge_into(&mut hist);
                    retries += w.op_retries[op].load(Ordering::Relaxed);
                    for (e, slot) in errors.iter_mut().enumerate() {
                        *slot += w.op_errors[op * n_errors + e].load(Ordering::Relaxed);
                    }
                }
                OpSnapshot {
                    op,
                    hist,
                    retries,
                    errors,
                }
            })
            .collect();
        let phase_ns = self
            .workers
            .iter()
            .map(|w| {
                w.phase_ns
                    .iter()
                    .map(|p| p.load(Ordering::Relaxed))
                    .collect()
            })
            .collect();
        MetricsSnapshot { ops, phase_ns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: RegistrySpec = RegistrySpec {
        ops: &["get", "put", "transfer"],
        errors: &["retry", "capacity"],
        phases: &["wait", "exec"],
    };

    #[test]
    fn records_aggregate_across_workers() {
        let reg = MetricsRegistry::new(SPEC, 2);
        reg.worker(0).record_op(0, 1_000, 0);
        reg.worker(1).record_op(0, 3_000, 2);
        reg.worker(1).record_op(2, 50_000, 1);
        reg.worker(0).record_error(0, 1);
        reg.worker(1).record_error(0, 1);
        reg.worker(0).add_phase_ns(1, 500);
        reg.worker(1).add_phase_ns(0, 700);

        let snap = reg.snapshot();
        assert_eq!(snap.ops[0].hist.total(), 2);
        assert_eq!(snap.ops[0].hist.max_ns(), 3_000);
        assert_eq!(snap.ops[0].retries, 2);
        assert_eq!(snap.ops[0].errors, vec![0, 2]);
        assert!(snap.ops[0].is_active());
        assert_eq!(snap.ops[1].hist.total(), 0);
        assert!(!snap.ops[1].is_active());
        assert_eq!(snap.ops[2].hist.total(), 1);
        assert_eq!(snap.ops[2].retries, 1);
        assert_eq!(snap.phase_ns, vec![vec![0, 500], vec![700, 0]]);
    }

    #[test]
    fn atomic_histogram_matches_plain_histogram() {
        let reg = MetricsRegistry::new(SPEC, 1);
        let mut plain = LatencyHistogram::new();
        let mut seed = 0xDEADBEEFu64;
        for _ in 0..5_000 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let ns = seed >> (seed % 50);
            reg.worker(0).record_op(1, ns, 0);
            plain.record_ns(ns);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.ops[1].hist.counts(), plain.counts());
        assert_eq!(snap.ops[1].hist.max_ns(), plain.max_ns());
        assert_eq!(snap.ops[1].hist.percentiles_ns(), plain.percentiles_ns());
    }
}
