//! Bounded slow-request trace ring.
//!
//! Each worker owns one ring; a request whose end-to-end time crosses the
//! configured threshold pushes one fixed-size lifecycle record.  The ring
//! is a mutex around a `VecDeque` — fine because the mutex is taken only
//! for requests that already blew the threshold (and by the rare `TRACE`
//! reader), never on the fast path.  When full, the oldest record is
//! evicted and counted, so the ring reports both "the most recent N slow
//! requests" and "how many more there were".

use std::collections::VecDeque;
use std::sync::Mutex;

/// One slow request's lifecycle, in raw protocol terms (`obs` does not
/// interpret opcodes or status bytes — the embedding service does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Wire opcode of the request.
    pub opcode: u8,
    /// Request id echoed on the wire (correlates with client logs).
    pub req_id: u64,
    /// Approximate time from the bytes arriving off the socket to
    /// execution starting, in nanoseconds.
    pub queue_ns: u64,
    /// Execution time (decode through response encode), in nanoseconds.
    pub exec_ns: u64,
    /// Transactional attempts beyond the first.
    pub retries: u64,
    /// Wire status byte of the response.
    pub status: u8,
}

struct Inner {
    buf: VecDeque<TraceRecord>,
    evicted: u64,
}

/// A bounded ring of [`TraceRecord`]s with an eviction counter.
pub struct TraceRing {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` records (capacity 0 keeps
    /// only the eviction counter — every push evicts immediately).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(capacity),
                evicted: 0,
            }),
            capacity,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes one record, evicting the oldest if the ring is full.
    pub fn push(&self, rec: TraceRecord) {
        let mut g = self.inner.lock().unwrap();
        if g.buf.len() >= self.capacity {
            if g.buf.pop_front().is_none() {
                // capacity 0: the record itself is the eviction
                g.evicted += 1;
                return;
            }
            g.evicted += 1;
        }
        g.buf.push_back(rec);
    }

    /// Copies out the current records (oldest first) and the eviction
    /// count, leaving the ring intact so repeated dumps are idempotent.
    pub fn snapshot(&self) -> (Vec<TraceRecord>, u64) {
        let g = self.inner.lock().unwrap();
        (g.buf.iter().copied().collect(), g.evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> TraceRecord {
        TraceRecord {
            opcode: 0x01,
            req_id: id,
            queue_ns: 10,
            exec_ns: 20,
            retries: 0,
            status: 0,
        }
    }

    #[test]
    fn ring_keeps_the_newest_and_counts_evictions() {
        let ring = TraceRing::new(3);
        for id in 0..10 {
            ring.push(rec(id));
        }
        let (records, evicted) = ring.snapshot();
        assert_eq!(evicted, 7);
        assert_eq!(
            records.iter().map(|r| r.req_id).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        // Idempotent: snapshot again, same view.
        let (again, evicted2) = ring.snapshot();
        assert_eq!(again.len(), 3);
        assert_eq!(evicted2, 7);
    }

    #[test]
    fn under_capacity_nothing_is_evicted() {
        let ring = TraceRing::new(8);
        ring.push(rec(1));
        ring.push(rec(2));
        let (records, evicted) = ring.snapshot();
        assert_eq!(records.len(), 2);
        assert_eq!(evicted, 0);
    }
}
