//! Log-bucketed latency histogram.
//!
//! Promoted out of `bench::report` so the server's metrics registry and
//! the load generators share one implementation — a server-side
//! histogram shipped over the wire as raw bucket counts reconstructs on
//! the client as exactly this type, which is what makes client-observed
//! vs. server-observed quantile comparisons meaningful.

use std::time::Duration;

/// Number of buckets in a [`LatencyHistogram`] (covers 1 ns to ~2^63 ns).
pub const BUCKETS: usize = 64;

/// A log-bucketed latency histogram: bucket `i` counts samples whose
/// nanosecond value has its highest set bit at position `i` (i.e. samples in
/// `[2^i, 2^(i+1))`).  Recording is O(1) with no allocation, so it can sit
/// on a load generator's per-request path; percentiles are reconstructed
/// from the bucket counts with sub-bucket linear interpolation, which keeps
/// the error well under the factor-of-two bucket width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
            max_ns: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one sample given directly in nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        let bucket = 63 - (ns | 1).leading_zeros() as usize;
        self.counts[bucket] += 1;
        self.total += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merges another histogram into this one (per-thread histograms are
    /// merged after a run).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The raw bucket counts — the wire/exposition representation.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Reconstructs a histogram from raw bucket counts and the recorded
    /// maximum (the inverse of [`counts`](Self::counts) +
    /// [`max_ns`](Self::max_ns); used when a histogram arrives over the
    /// wire).  The total is recomputed from the counts.
    pub fn from_parts(counts: [u64; BUCKETS], max_ns: u64) -> Self {
        let total = counts.iter().sum();
        Self {
            counts,
            total,
            max_ns,
        }
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The approximate `q`-quantile (`0.0..=1.0`) in nanoseconds, linearly
    /// interpolated inside the containing bucket.  Returns 0 on an empty
    /// histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = 1u64 << i;
                let width = lo; // bucket spans [2^i, 2^(i+1))
                let into = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + into * width as f64;
                return (est as u64).min(self.max_ns.max(lo));
            }
            seen += c;
        }
        self.max_ns
    }

    /// `(p50, p90, p99)` in nanoseconds.
    pub fn percentiles_ns(&self) -> (u64, u64, u64) {
        (
            self.quantile_ns(0.50),
            self.quantile_ns(0.90),
            self.quantile_ns(0.99),
        )
    }

    /// The p99.9 in nanoseconds — the tail the overload harness watches,
    /// since saturation shows up there long before it reaches the median.
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_known_distributions() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record(Duration::from_nanos(ns));
        }
        assert_eq!(h.total(), 1000);
        let (p50, p90, p99) = h.percentiles_ns();
        // Log buckets are coarse: allow a factor-of-two envelope.
        assert!((250..=1000).contains(&p50), "p50 {p50}");
        assert!((450..=1024).contains(&p90), "p90 {p90}");
        assert!((700..=1024).contains(&p99), "p99 {p99}");
        assert!(p50 <= p90 && p90 <= p99);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for i in 0..500u64 {
            let d = Duration::from_nanos(100 + i * 7);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            c.record(d);
        }
        a.merge(&b);
        assert_eq!(a.total(), c.total());
        assert_eq!(a.percentiles_ns(), c.percentiles_ns());
        assert_eq!(a.max_ns(), c.max_ns());
    }

    #[test]
    fn merge_is_associative() {
        // Property: merging per-thread (or per-worker) histograms must not
        // depend on merge order — ((a+b)+c) == (a+(b+c)) bucket for bucket.
        // Exercised over pseudo-random sample sets spanning many buckets.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _case in 0..50 {
            let mut parts = [
                LatencyHistogram::new(),
                LatencyHistogram::new(),
                LatencyHistogram::new(),
            ];
            for part in parts.iter_mut() {
                let n = next() % 200;
                for _ in 0..n {
                    // Spread across the whole bucket range.
                    part.record_ns(next() >> (next() % 56));
                }
            }
            let [a, b, c] = parts;

            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);

            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);

            assert_eq!(left.counts(), right.counts());
            assert_eq!(left.total(), right.total());
            assert_eq!(left.max_ns(), right.max_ns());
            assert_eq!(left.percentiles_ns(), right.percentiles_ns());
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentiles_ns(), (0, 0, 0));
        assert_eq!(h.p999_ns(), 0);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn p999_sits_in_the_tail() {
        let mut h = LatencyHistogram::new();
        // 0.2% of samples are 100µs stragglers: p99.9 must see the tail.
        for _ in 0..9980 {
            h.record(Duration::from_nanos(100));
        }
        for _ in 0..20 {
            h.record(Duration::from_micros(100));
        }
        let p999 = h.p999_ns();
        assert!(p999 >= 50_000, "p99.9 {p999} must reach the straggler");
        assert!(h.percentiles_ns().0 < 1000, "p50 stays fast");
    }

    #[test]
    fn parts_roundtrip_reconstructs_the_histogram() {
        let mut h = LatencyHistogram::new();
        for ns in [3u64, 900, 17_000, 250_000, 1 << 33] {
            h.record_ns(ns);
        }
        let back = LatencyHistogram::from_parts(*h.counts(), h.max_ns());
        assert_eq!(back.counts(), h.counts());
        assert_eq!(back.total(), h.total());
        assert_eq!(back.max_ns(), h.max_ns());
        assert_eq!(back.percentiles_ns(), h.percentiles_ns());
    }
}
