//! Prometheus-style text exposition.
//!
//! Renders a [`MetricsSnapshot`] as the plain-text
//! format every scraper understands (`# TYPE` headers, `name{label="v"} N`
//! samples), so a registry can be served off a bare `TcpListener` with no
//! HTTP framework.  Latency appears twice per operation: as a cumulative
//! `le`-labelled bucket family (the raw log buckets, for scrapers that
//! aggregate server-side) and as pre-computed quantile gauges (for humans
//! and smoke tests).  Inactive operations are omitted — a scrape reflects
//! the traffic the server actually saw.

use crate::registry::{MetricsSnapshot, RegistrySpec};
use std::fmt::Write as _;

/// Renders the full exposition.  `prefix` namespaces every family (e.g.
/// `"kv"` yields `kv_op_latency_ns_bucket`), `uptime_secs` is the
/// process uptime reported as `<prefix>_uptime_seconds`.
pub fn render(
    spec: &RegistrySpec,
    snap: &MetricsSnapshot,
    uptime_secs: f64,
    prefix: &str,
) -> String {
    let mut out = String::with_capacity(4096);
    let _ = writeln!(out, "# TYPE {prefix}_uptime_seconds gauge");
    let _ = writeln!(out, "{prefix}_uptime_seconds {uptime_secs:.3}");

    let active: Vec<_> = snap.ops.iter().filter(|o| o.is_active()).collect();

    let _ = writeln!(out, "# TYPE {prefix}_op_latency_ns histogram");
    for o in &active {
        let op = spec.ops[o.op];
        let mut cum = 0u64;
        for (i, &c) in o.hist.counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            // Bucket i holds samples in [2^i, 2^(i+1)): the upper bound is
            // the next power of two.
            let le = 1u128 << (i + 1);
            let _ = writeln!(
                out,
                "{prefix}_op_latency_ns_bucket{{op=\"{op}\",le=\"{le}\"}} {cum}"
            );
        }
        let _ = writeln!(
            out,
            "{prefix}_op_latency_ns_bucket{{op=\"{op}\",le=\"+Inf\"}} {cum}"
        );
        let _ = writeln!(
            out,
            "{prefix}_op_latency_ns_count{{op=\"{op}\"}} {}",
            o.hist.total()
        );
        let _ = writeln!(
            out,
            "{prefix}_op_latency_ns_max{{op=\"{op}\"}} {}",
            o.hist.max_ns()
        );
    }

    let _ = writeln!(out, "# TYPE {prefix}_op_latency_quantile_ns gauge");
    for o in &active {
        let op = spec.ops[o.op];
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")] {
            let _ = writeln!(
                out,
                "{prefix}_op_latency_quantile_ns{{op=\"{op}\",quantile=\"{label}\"}} {}",
                o.hist.quantile_ns(q)
            );
        }
    }

    let _ = writeln!(out, "# TYPE {prefix}_op_aborts_total counter");
    for o in &active {
        let op = spec.ops[o.op];
        for (e, &n) in o.errors.iter().enumerate() {
            if n > 0 {
                let reason = spec.errors[e];
                let _ = writeln!(
                    out,
                    "{prefix}_op_aborts_total{{op=\"{op}\",reason=\"{reason}\"}} {n}"
                );
            }
        }
    }

    let _ = writeln!(out, "# TYPE {prefix}_op_retries_total counter");
    for o in &active {
        if o.retries > 0 {
            let op = spec.ops[o.op];
            let _ = writeln!(
                out,
                "{prefix}_op_retries_total{{op=\"{op}\"}} {}",
                o.retries
            );
        }
    }

    let _ = writeln!(out, "# TYPE {prefix}_worker_phase_ns_total counter");
    for (w, phases) in snap.phase_ns.iter().enumerate() {
        for (p, &ns) in phases.iter().enumerate() {
            let phase = spec.phases[p];
            let _ = writeln!(
                out,
                "{prefix}_worker_phase_ns_total{{worker=\"{w}\",phase=\"{phase}\"}} {ns}"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    const SPEC: RegistrySpec = RegistrySpec {
        ops: &["get", "put"],
        errors: &["retry"],
        phases: &["wait"],
    };

    #[test]
    fn exposition_contains_every_active_family() {
        let reg = MetricsRegistry::new(SPEC, 1);
        reg.worker(0).record_op(0, 2_000, 3);
        reg.worker(0).record_op(0, 9_000, 0);
        reg.worker(0).record_error(0, 0);
        reg.worker(0).add_phase_ns(0, 12_345);
        let text = render(reg.spec(), &reg.snapshot(), 4.5, "kv");

        assert!(text.contains("kv_uptime_seconds 4.500"));
        assert!(text.contains("kv_op_latency_ns_count{op=\"get\"} 2"));
        assert!(text.contains("kv_op_latency_ns_bucket{op=\"get\",le=\"+Inf\"} 2"));
        assert!(text.contains("kv_op_latency_quantile_ns{op=\"get\",quantile=\"0.99\"}"));
        assert!(text.contains("kv_op_aborts_total{op=\"get\",reason=\"retry\"} 1"));
        assert!(text.contains("kv_op_retries_total{op=\"get\"} 3"));
        assert!(text.contains("kv_worker_phase_ns_total{worker=\"0\",phase=\"wait\"} 12345"));
        // Inactive op omitted entirely.
        assert!(!text.contains("op=\"put\""));
    }

    #[test]
    fn bucket_counts_are_cumulative() {
        let reg = MetricsRegistry::new(SPEC, 1);
        // Two samples in bucket 1 ([2,4)), one in bucket 3 ([8,16)).
        reg.worker(0).record_op(1, 2, 0);
        reg.worker(0).record_op(1, 3, 0);
        reg.worker(0).record_op(1, 9, 0);
        let text = render(reg.spec(), &reg.snapshot(), 0.0, "kv");
        assert!(text.contains("kv_op_latency_ns_bucket{op=\"put\",le=\"4\"} 2"));
        assert!(text.contains("kv_op_latency_ns_bucket{op=\"put\",le=\"16\"} 3"));
        assert!(text.contains("kv_op_latency_ns_bucket{op=\"put\",le=\"+Inf\"} 3"));
    }
}
