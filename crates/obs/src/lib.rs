//! # obs — shared observability primitives
//!
//! One home for the measurement machinery both the load generators
//! (`bench`) and the service (`kvstore`) need, so client-observed and
//! server-observed numbers come from the *same* histogram implementation
//! and can be compared bucket for bucket:
//!
//! - [`LatencyHistogram`] — the log-bucketed, allocation-free histogram
//!   (promoted from `bench::report`, which now re-exports it).
//! - [`MetricsRegistry`] — a per-worker, relaxed-atomic registry of
//!   per-operation latency histograms, abort-reason counters, retry
//!   counts, and event-loop phase accounting.  The hot path pays a clock
//!   read and an array increment; no allocation, no locks.
//! - [`TraceRing`] — a bounded ring of slow-request lifecycle records.
//! - [`prom`] — Prometheus-style text exposition over a registry
//!   snapshot, servable from a plain TCP listener.
//!
//! The crate is deliberately label-generic: the service supplies its
//! operation / abort-reason / phase names as `&'static str` tables via
//! [`RegistrySpec`], so `obs` knows nothing about any particular wire
//! protocol.

mod hist;
pub mod prom;
mod registry;
mod trace;

pub use hist::{LatencyHistogram, BUCKETS};
pub use registry::{MetricsRegistry, MetricsSnapshot, OpSnapshot, RegistrySpec, WorkerMetrics};
pub use trace::{TraceRecord, TraceRing};
