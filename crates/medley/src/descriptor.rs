//! Transaction descriptors and the status-word protocol of M-compare-N-swap.
//!
//! Each thread owns one [`Desc`] (pre-allocated inside the `TxManager` and
//! reused across transactions, as in the paper).  A descriptor packs a
//! `tid | serial | status` triple into a single 64-bit status word (Fig. 4)
//! and carries a read set and a write set.
//!
//! ## Cross-thread access
//!
//! Other threads ("helpers") read a descriptor's sets while finalizing a
//! stalled transaction, so every entry field is an atomic and every entry is
//! stamped with the serial number of the transaction it belongs to.  The
//! owner invalidates the stamp, rewrites the fields, and then re-stamps, so a
//! helper that observes the expected serial both before and after reading the
//! fields is guaranteed a consistent snapshot (a per-entry seqlock).  This is
//! the part of the paper where shared mutable descriptors collide with Rust's
//! ownership model; the atomic-field + stamp discipline keeps the
//! implementation free of undefined behaviour without a global lock.

use crate::atomic128::pack;
use crate::casobj::CasWord;
use crate::util::CachePadded;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Maximum number of read-set and write-set entries per transaction.
///
/// TPC-C `newOrder` touches on the order of a hundred words; 4096 leaves
/// ample headroom while keeping a descriptor around 256 KiB.
pub const MAX_ENTRIES: usize = 4096;

/// Transaction status values (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Initial state; the transaction is still executing operations.
    InPrep = 0,
    /// `tx_end` has been called; the transaction is ready to commit and may be
    /// helped to completion by any thread.
    InProg = 1,
    /// The transaction committed; speculative values become real.
    Committed = 2,
    /// The transaction aborted; speculative values are rolled back.
    Aborted = 3,
}

impl Status {
    fn from_bits(bits: u64) -> Self {
        match bits & 3 {
            0 => Status::InPrep,
            1 => Status::InProg,
            2 => Status::Committed,
            _ => Status::Aborted,
        }
    }
}

const STATUS_MASK: u64 = 0b11;
const SERIAL_SHIFT: u32 = 2;
const SERIAL_BITS: u32 = 48;
const SERIAL_MASK: u64 = ((1 << SERIAL_BITS) - 1) << SERIAL_SHIFT;
const TID_SHIFT: u32 = 50;

/// Packs a `(tid, serial, status)` triple into a status word.
#[inline]
pub fn pack_status(tid: u64, serial: u64, status: Status) -> u64 {
    (tid << TID_SHIFT) | ((serial << SERIAL_SHIFT) & SERIAL_MASK) | status as u64
}

/// Extracts the thread id from a status word.
#[inline]
pub fn tid_of(word: u64) -> u64 {
    word >> TID_SHIFT
}

/// Extracts the serial number from a status word.
#[inline]
pub fn serial_of(word: u64) -> u64 {
    (word & SERIAL_MASK) >> SERIAL_SHIFT
}

/// Extracts the status from a status word.
#[inline]
pub fn status_of(word: u64) -> Status {
    Status::from_bits(word)
}

/// One read-set entry: an address and the `(value, counter)` pair observed by
/// the linearizing load of a read-only operation.
#[derive(Debug, Default)]
pub(crate) struct ReadEntry {
    stamp: AtomicU64,
    addr: AtomicUsize,
    val: AtomicU64,
    cnt: AtomicU64,
}

/// One write-set entry: the address, the pre-image `(old value, counter)` and
/// the speculative new value of a critical CAS.
#[derive(Debug, Default)]
pub(crate) struct WriteEntry {
    stamp: AtomicU64,
    addr: AtomicUsize,
    old_val: AtomicU64,
    cnt: AtomicU64,
    new_val: AtomicU64,
}

/// A per-thread transaction descriptor.
///
/// Reused across transactions; the serial number embedded in the status word
/// distinguishes incarnations.
pub struct Desc {
    status: CachePadded<AtomicU64>,
    rcount: AtomicUsize,
    wcount: AtomicUsize,
    reads: Box<[ReadEntry]>,
    writes: Box<[WriteEntry]>,
}

impl std::fmt::Debug for Desc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.status.load(Ordering::Relaxed);
        f.debug_struct("Desc")
            .field("tid", &tid_of(s))
            .field("serial", &serial_of(s))
            .field("status", &status_of(s))
            .field("reads", &self.rcount.load(Ordering::Relaxed))
            .field("writes", &self.wcount.load(Ordering::Relaxed))
            .finish()
    }
}

impl Desc {
    /// Creates a descriptor for thread `tid` with its read/write sets
    /// pre-allocated.
    pub fn new(tid: u64) -> Self {
        let reads = (0..MAX_ENTRIES).map(|_| ReadEntry::default()).collect();
        let writes = (0..MAX_ENTRIES).map(|_| WriteEntry::default()).collect();
        Self {
            status: CachePadded::new(AtomicU64::new(pack_status(tid, 0, Status::InPrep))),
            rcount: AtomicUsize::new(0),
            wcount: AtomicUsize::new(0),
            reads,
            writes,
        }
    }

    /// The raw status word.
    #[inline]
    pub fn status_word(&self) -> u64 {
        self.status.load(Ordering::SeqCst)
    }

    /// Current serial number.
    #[inline]
    pub fn serial(&self) -> u64 {
        serial_of(self.status_word())
    }

    /// Current status.
    #[inline]
    pub fn status(&self) -> Status {
        status_of(self.status_word())
    }

    /// This descriptor's address encoded as the 64-bit payload stored in a
    /// [`CasWord`] while the descriptor is installed.
    #[inline]
    pub fn as_payload(&self) -> u64 {
        self as *const Desc as u64
    }

    /// Begins a new transaction: clears both sets and advances the serial
    /// number, resetting the status to `InPrep` (paper `txBegin`).
    ///
    /// Only the owning thread calls this.
    pub fn begin(&self) {
        self.rcount.store(0, Ordering::SeqCst);
        self.wcount.store(0, Ordering::SeqCst);
        let cur = self.status.load(Ordering::SeqCst);
        let next = pack_status(tid_of(cur), serial_of(cur).wrapping_add(1), Status::InPrep);
        self.status.store(next, Ordering::SeqCst);
    }

    /// CAS on the status word that preserves `tid | serial` and moves
    /// `expected_full`'s status to `to` (paper `stsCAS`).
    #[inline]
    pub fn status_cas(&self, expected_full: u64, to: Status) -> bool {
        let desired = (expected_full & !STATUS_MASK) | to as u64;
        self.status
            .compare_exchange(expected_full, desired, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Transitions `InPrep -> InProg` for the current serial (paper
    /// `setReady`).  Fails if the transaction has already been aborted.
    pub fn set_ready(&self) -> bool {
        let cur = self.status.load(Ordering::SeqCst);
        if status_of(cur) != Status::InPrep {
            return false;
        }
        self.status_cas(cur, Status::InProg)
    }

    // ------------------------------------------------------------------
    // Owner-side set maintenance
    // ------------------------------------------------------------------

    /// Appends an entry to the read set.  Returns `false` when capacity is
    /// exhausted (the transaction must then abort with `CapacityExceeded`).
    pub fn push_read(&self, serial: u64, addr: *const CasWord, val: u64, cnt: u64) -> bool {
        let idx = self.rcount.load(Ordering::Relaxed);
        if idx >= MAX_ENTRIES {
            return false;
        }
        let e = &self.reads[idx];
        e.stamp.store(0, Ordering::SeqCst);
        e.addr.store(addr as usize, Ordering::SeqCst);
        e.val.store(val, Ordering::SeqCst);
        e.cnt.store(cnt, Ordering::SeqCst);
        e.stamp.store(serial, Ordering::SeqCst);
        self.rcount.store(idx + 1, Ordering::SeqCst);
        true
    }

    /// Appends an entry to the write set.  Returns the entry index, or `None`
    /// when capacity is exhausted.
    pub fn push_write(
        &self,
        serial: u64,
        addr: *const CasWord,
        old_val: u64,
        cnt: u64,
        new_val: u64,
    ) -> Option<usize> {
        let idx = self.wcount.load(Ordering::Relaxed);
        if idx >= MAX_ENTRIES {
            return None;
        }
        let e = &self.writes[idx];
        e.stamp.store(0, Ordering::SeqCst);
        e.addr.store(addr as usize, Ordering::SeqCst);
        e.old_val.store(old_val, Ordering::SeqCst);
        e.cnt.store(cnt, Ordering::SeqCst);
        e.new_val.store(new_val, Ordering::SeqCst);
        e.stamp.store(serial, Ordering::SeqCst);
        self.wcount.store(idx + 1, Ordering::SeqCst);
        Some(idx)
    }

    /// Marks a write entry dead (its install CAS failed); helpers will skip it
    /// and the slot is simply not reused within this transaction.
    pub fn kill_write(&self, idx: usize) {
        self.writes[idx].stamp.store(0, Ordering::SeqCst);
    }

    /// Looks up the speculative value this transaction has written to `addr`,
    /// if any (owner-only; used when an operation reads a word the same
    /// transaction already wrote).
    pub fn speculative_value(&self, serial: u64, addr: *const CasWord) -> Option<(usize, u64)> {
        let n = self.wcount.load(Ordering::Relaxed).min(MAX_ENTRIES);
        // Scan backwards so the most recent write to the address wins.
        for idx in (0..n).rev() {
            let e = &self.writes[idx];
            if e.stamp.load(Ordering::SeqCst) == serial
                && e.addr.load(Ordering::SeqCst) == addr as usize
            {
                return Some((idx, e.new_val.load(Ordering::SeqCst)));
            }
        }
        None
    }

    /// Owner-only: replaces the speculative new value of write entry `idx`.
    pub fn update_new_val(&self, idx: usize, new_val: u64) {
        self.writes[idx].new_val.store(new_val, Ordering::SeqCst);
    }

    /// Owner-only: current number of live write entries (diagnostics).
    pub fn write_count(&self) -> usize {
        self.wcount.load(Ordering::Relaxed)
    }

    /// Owner-only: current number of read entries (diagnostics).
    pub fn read_count(&self) -> usize {
        self.rcount.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // Commit/abort machinery (callable by owner and helpers)
    // ------------------------------------------------------------------

    /// Validates every read entry stamped with `serial`: the addressed word
    /// must still hold exactly the recorded `(value, counter)` pair — or
    /// hold **this transaction's own descriptor**, installed by a later
    /// write of the same transaction over exactly that `(value, counter)`
    /// pre-image (installation bumps the counter by one).
    ///
    /// The own-write tolerance is essential, not cosmetic: a transaction
    /// that reads a word and later writes it (for instance a transfer whose
    /// source node is the list predecessor of its destination) would
    /// otherwise invalidate its own read, abort, and — because the retry
    /// deterministically reproduces the same read-then-write pattern —
    /// livelock forever.
    pub fn validate_reads(&self, serial: u64) -> bool {
        let n = self.rcount.load(Ordering::SeqCst).min(MAX_ENTRIES);
        for idx in 0..n {
            let e = &self.reads[idx];
            if e.stamp.load(Ordering::SeqCst) != serial {
                continue;
            }
            let addr = e.addr.load(Ordering::SeqCst);
            let val = e.val.load(Ordering::SeqCst);
            let cnt = e.cnt.load(Ordering::SeqCst);
            if e.stamp.load(Ordering::SeqCst) != serial {
                continue; // entry was recycled mid-read; it belongs to another serial
            }
            // SAFETY: the CasWord lives inside a data-structure node that is
            // protected by the owner's EBR pin for the duration of the
            // transaction, and helpers only run `validate_reads` while the
            // owner's transaction (hence its pin) is still live.
            let obj = unsafe { &*(addr as *const CasWord) };
            let (cur_val, cur_cnt) = obj.load_parts();
            if cur_val == val && cur_cnt == cnt {
                continue;
            }
            if CasWord::counter_is_descriptor(cur_cnt)
                && cur_val == self.as_payload()
                && cur_cnt == cnt.wrapping_add(1)
            {
                // Own write installed over the observed pre-image: the read
                // is still valid (the write takes effect atomically with the
                // commit; counters advance on every change, so a matching
                // `cnt` pins the exact incarnation that was read).
                continue;
            }
            return false;
        }
        true
    }

    /// Uninstalls this descriptor from every write-set entry stamped with
    /// `serial`, writing back the new value on commit or the old value on
    /// abort (paper `uninstall`).  Idempotent and safe to run concurrently
    /// from several threads: each per-word CAS expects the installed
    /// descriptor with the exact counter, so at most one uninstaller wins per
    /// word and all of them write the same value.
    pub fn uninstall(&self, serial: u64, outcome: Status) {
        debug_assert!(outcome == Status::Committed || outcome == Status::Aborted);
        let n = self.wcount.load(Ordering::SeqCst).min(MAX_ENTRIES);
        let me = self.as_payload();
        for idx in 0..n {
            let e = &self.writes[idx];
            if e.stamp.load(Ordering::SeqCst) != serial {
                continue;
            }
            let addr = e.addr.load(Ordering::SeqCst);
            let old_val = e.old_val.load(Ordering::SeqCst);
            let cnt = e.cnt.load(Ordering::SeqCst);
            let new_val = e.new_val.load(Ordering::SeqCst);
            if e.stamp.load(Ordering::SeqCst) != serial {
                continue; // recycled; not ours to touch
            }
            let write_back = if outcome == Status::Committed {
                new_val
            } else {
                old_val
            };
            // SAFETY: same argument as in `validate_reads`.
            let obj = unsafe { &*(addr as *const CasWord) };
            let installed = pack(me, cnt.wrapping_add(1));
            let replacement = pack(write_back, cnt.wrapping_add(2));
            let _ = obj.raw().cas(installed, replacement);
        }
    }

    /// Finalizes this descriptor on behalf of another thread that found it
    /// installed in `obj` holding the raw 128-bit value `observed`
    /// (paper `tryFinalize`, with additional serial re-validation so that a
    /// lagging helper can never interfere with a *newer* transaction of the
    /// same owner thread).
    pub fn try_finalize(&self, obj: &CasWord, observed: u128) {
        let d = self.status.load(Ordering::SeqCst);
        // Ensure the status word we read describes the transaction that is
        // actually installed in `obj`; otherwise the owner has already moved
        // on and there is nothing for us to do.
        if obj.raw().load() != observed {
            return;
        }
        let serial = serial_of(d);
        let mut cur = d;
        if status_of(cur) == Status::InPrep {
            // Eager contention management: abort the in-preparation owner.
            let _ = self.status_cas(cur, Status::Aborted);
            cur = self.status.load(Ordering::SeqCst);
            if serial_of(cur) != serial {
                return;
            }
        }
        if status_of(cur) == Status::InProg {
            // Help the owner finish its commit.
            if self.validate_reads(serial) {
                let _ = self.status_cas(cur, Status::Committed);
            } else {
                let _ = self.status_cas(cur, Status::Aborted);
            }
            cur = self.status.load(Ordering::SeqCst);
            if serial_of(cur) != serial {
                return;
            }
        }
        match status_of(cur) {
            Status::Committed => self.uninstall(serial, Status::Committed),
            Status::Aborted => self.uninstall(serial, Status::Aborted),
            // The owner raced ahead (new serial, or still somehow InPrep /
            // InProg for a different incarnation): leave it alone.
            _ => {}
        }
    }

    /// Directly resolves the final outcome of the current serial from the
    /// owner's side at commit time.  Returns the final status.
    pub fn finalize_own(&self, serial: u64) -> Status {
        let cur = self.status.load(Ordering::SeqCst);
        if serial_of(cur) != serial {
            // Should not happen for the owner; treat as aborted.
            return Status::Aborted;
        }
        if status_of(cur) == Status::InProg {
            if self.validate_reads(serial) {
                let _ = self.status_cas(cur, Status::Committed);
            } else {
                let _ = self.status_cas(cur, Status::Aborted);
            }
        }
        status_of(self.status.load(Ordering::SeqCst))
    }

    /// Owner-side abort of the current serial regardless of state (used by
    /// `tx_abort`).  Returns the final status (a helper may have already
    /// committed an `InProg` transaction, in which case the commit wins).
    pub fn abort_own(&self, serial: u64) -> Status {
        loop {
            let cur = self.status.load(Ordering::SeqCst);
            if serial_of(cur) != serial {
                return Status::Aborted;
            }
            match status_of(cur) {
                Status::Committed => return Status::Committed,
                Status::Aborted => return Status::Aborted,
                Status::InPrep | Status::InProg => {
                    if self.status_cas(cur, Status::Aborted) {
                        return Status::Aborted;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_word_packing_roundtrip() {
        for tid in [0u64, 1, 511, 16383] {
            for serial in [0u64, 1, 42, (1 << 48) - 1] {
                for st in [
                    Status::InPrep,
                    Status::InProg,
                    Status::Committed,
                    Status::Aborted,
                ] {
                    let w = pack_status(tid, serial, st);
                    assert_eq!(tid_of(w), tid);
                    assert_eq!(serial_of(w), serial);
                    assert_eq!(status_of(w), st);
                }
            }
        }
    }

    #[test]
    fn begin_bumps_serial_and_resets() {
        let d = Desc::new(3);
        assert_eq!(d.serial(), 0);
        d.begin();
        assert_eq!(d.serial(), 1);
        assert_eq!(d.status(), Status::InPrep);
        assert_eq!(d.read_count(), 0);
        assert_eq!(d.write_count(), 0);
        d.begin();
        assert_eq!(d.serial(), 2);
    }

    #[test]
    fn set_ready_then_commit_abort_transitions() {
        let d = Desc::new(1);
        d.begin();
        assert!(d.set_ready());
        assert_eq!(d.status(), Status::InProg);
        assert!(!d.set_ready(), "setReady requires InPrep");
        let cur = d.status_word();
        assert!(d.status_cas(cur, Status::Committed));
        assert_eq!(d.status(), Status::Committed);
    }

    #[test]
    fn speculative_value_finds_latest_write() {
        let d = Desc::new(0);
        d.begin();
        let s = d.serial();
        let a = CasWord::new(10);
        let b = CasWord::new(20);
        let ia = d.push_write(s, &a, 10, 0, 11).unwrap();
        d.push_write(s, &b, 20, 0, 21).unwrap();
        assert_eq!(d.speculative_value(s, &a), Some((ia, 11)));
        d.update_new_val(ia, 99);
        assert_eq!(d.speculative_value(s, &a), Some((ia, 99)));
        assert_eq!(d.speculative_value(s, &CasWord::new(0)), None);
    }

    #[test]
    fn killed_write_is_invisible() {
        let d = Desc::new(0);
        d.begin();
        let s = d.serial();
        let a = CasWord::new(1);
        let idx = d.push_write(s, &a, 1, 0, 2).unwrap();
        d.kill_write(idx);
        assert_eq!(d.speculative_value(s, &a), None);
    }

    #[test]
    fn validate_reads_tolerates_own_installed_write() {
        // A transaction that reads a word and later installs its own write
        // over the observed pre-image must still validate (regression test
        // for the read-your-own-write-set livelock).
        let d = Desc::new(0);
        d.begin();
        let s = d.serial();
        let a = CasWord::new(5);
        let (v, c) = a.load_parts();
        assert!(d.push_read(s, &a, v, c));
        assert!(d.push_write(s, &a, v, c, 6).is_some());
        // Simulate the install: descriptor payload with counter bumped by 1.
        assert!(a
            .raw()
            .cas(pack(v, c), pack(d.as_payload(), c.wrapping_add(1))));
        assert!(
            d.validate_reads(s),
            "own installed write must not invalidate the read"
        );
        // A *foreign* descriptor (different payload) must still fail.
        assert!(a.raw().cas(
            pack(d.as_payload(), c.wrapping_add(1)),
            pack(0xdead_beef, c.wrapping_add(1))
        ));
        assert!(!d.validate_reads(s));
    }

    #[test]
    fn validate_reads_detects_change() {
        let d = Desc::new(0);
        d.begin();
        let s = d.serial();
        let a = CasWord::new(5);
        let (v, c) = a.load_parts();
        assert!(d.push_read(s, &a, v, c));
        assert!(d.validate_reads(s));
        // Any change to the word (value or counter) must fail validation.
        assert!(a.cas_value(5, 6));
        assert!(!d.validate_reads(s));
    }

    #[test]
    fn capacity_is_enforced() {
        let d = Desc::new(0);
        d.begin();
        let s = d.serial();
        let a = CasWord::new(0);
        for _ in 0..MAX_ENTRIES {
            assert!(d.push_read(s, &a, 0, 0));
        }
        assert!(!d.push_read(s, &a, 0, 0));
    }
}
