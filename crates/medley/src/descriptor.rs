//! Transaction descriptors and the status-word protocol of M-compare-N-swap.
//!
//! Each thread owns one [`Desc`] (pre-allocated inside the `TxManager` and
//! reused across transactions, as in the paper).  A descriptor packs a
//! `tid | serial | status` triple into a single 64-bit status word (Fig. 4)
//! and carries a read set and a write set.
//!
//! ## The two-phase (private-then-published) lifecycle
//!
//! Since the lazy-publication refactor the descriptor is **cold for the whole
//! execution phase** of a transaction.  Reads and writes accumulate in plain
//! thread-local buffers owned by the `ThreadHandle` (`local_reads` /
//! `local_writes` in `txmanager.rs`); no shared entry is written and no
//! descriptor is installed in any [`CasWord`] while operations execute.  Only
//! `tx_end` — and only on the general commit path — moves the transaction
//! into its **published** phase:
//!
//! 1. *publish*: every buffered read and write is copied into the
//!    stamp-sealed entries below ([`Desc::push_read`] / [`Desc::push_write`]);
//! 2. *install*: the descriptor is CASed into each written word over its
//!    recorded `(value, counter)` pre-image;
//! 3. *expose*: `setReady` flips the status word `InPrep -> InProg`, after
//!    which any thread may help validate and finalize;
//! 4. *resolve*: validation decides `Committed`/`Aborted` and `uninstall`
//!    replaces the descriptor in each word with the new (or old) value.
//!
//! Helpers can reach the descriptor only through an installed word, so the
//! publish step always happens-before any cross-thread access (the install
//! CAS is a `lock cmpxchg16b`, a full barrier).  Everything before step 1 is
//! invisible to other threads — the price of helping-readiness (shared-memory
//! traffic on every entry) is paid once per *published* transaction instead
//! of once per operation.
//!
//! ## Hot/cold layout
//!
//! Small transactions should never walk cold memory.  The descriptor is
//! split into a **hot header** — the status word, the two set sizes, and
//! `INLINE_READS`/`INLINE_WRITES` (8 + 8) inline entries, all sharing the
//! descriptor's first few cache lines — and a **spill region** holding the
//! remaining capacity (up to [`MAX_ENTRIES`] total per set).  The spill is
//! allocated lazily on first use: a thread that only ever runs small
//! transactions costs ~1 KiB instead of the ~300 KiB a fully pre-allocated
//! descriptor used to occupy (and `TxManager::new` no longer touches ~40 MiB
//! of entry memory up front).
//!
//! ## Cross-thread access and memory ordering
//!
//! Other threads ("helpers") read a descriptor's sets while finalizing a
//! published transaction, so every entry field is an atomic and every entry
//! is stamped with the serial number of the transaction it belongs to.  Each
//! entry is a per-entry seqlock with the serial as the sequence word:
//!
//! * **publish** (owner): `stamp.store(0, Relaxed)`; `fence(Release)`;
//!   field stores (`Relaxed`); `stamp.store(serial, Release)`.
//! * **snapshot** (helper): `stamp.load(Acquire)`; field loads (`Relaxed`);
//!   `fence(Acquire)`; `stamp` re-load — accept only if both loads returned
//!   the expected serial.
//!
//! The correctness argument is the classic seqlock one, with serials in
//! place of sequence numbers (serials are strictly monotonic per descriptor,
//! so the stamp can never ABA):
//!
//! * If the first stamp load returns `serial`, it synchronizes with the
//!   owner's `Release` store of `serial`, so the subsequent field loads see
//!   at least that incarnation's values (field stores precede the stamp
//!   store in the owner's program order).
//! * If any field load observed a *later* incarnation's value, the owner's
//!   `fence(Release)`-after-`stamp = 0` pairs with the helper's
//!   `fence(Acquire)`-before-re-load: the re-load then sees `0` (or the
//!   later serial), never the stale `serial`, and the snapshot is rejected.
//!
//! This replaces the earlier per-field `SeqCst` discipline: on x86 every
//! `SeqCst` store costs a full fence, which the commit path paid five times
//! per entry; the `Release`/`Acquire` pairs compile to plain loads and
//! stores.  The status word keeps `SeqCst` CASes — it is the linearization
//! point of commit/abort and is touched a constant number of times per
//! transaction.

use crate::atomic128::pack;
use crate::casobj::CasWord;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Maximum number of read-set and write-set entries per transaction.
///
/// TPC-C `newOrder` touches on the order of a hundred words; 4096 leaves
/// ample headroom.  Only the first `INLINE_READS`/`INLINE_WRITES` (8 + 8)
/// entries live inside the descriptor; the rest are spilled to a lazily
/// allocated region, so the capacity is effectively free until a transaction
/// actually uses it.
pub const MAX_ENTRIES: usize = 4096;

/// Read-set entries stored inline in the descriptor's hot header.
pub(crate) const INLINE_READS: usize = 8;

/// Write-set entries stored inline in the descriptor's hot header.
pub(crate) const INLINE_WRITES: usize = 8;

/// Transaction status values (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Initial state; the transaction is still executing operations.
    InPrep = 0,
    /// `tx_end` has been called; the transaction is ready to commit and may be
    /// helped to completion by any thread.
    InProg = 1,
    /// The transaction committed; speculative values become real.
    Committed = 2,
    /// The transaction aborted; speculative values are rolled back.
    Aborted = 3,
}

impl Status {
    fn from_bits(bits: u64) -> Self {
        match bits & 3 {
            0 => Status::InPrep,
            1 => Status::InProg,
            2 => Status::Committed,
            _ => Status::Aborted,
        }
    }
}

const STATUS_MASK: u64 = 0b11;
const SERIAL_SHIFT: u32 = 2;
const SERIAL_BITS: u32 = 48;
const SERIAL_MASK: u64 = ((1 << SERIAL_BITS) - 1) << SERIAL_SHIFT;
const TID_SHIFT: u32 = 50;

/// Packs a `(tid, serial, status)` triple into a status word.
#[inline]
pub fn pack_status(tid: u64, serial: u64, status: Status) -> u64 {
    (tid << TID_SHIFT) | ((serial << SERIAL_SHIFT) & SERIAL_MASK) | status as u64
}

/// Extracts the thread id from a status word.
#[inline]
pub fn tid_of(word: u64) -> u64 {
    word >> TID_SHIFT
}

/// Extracts the serial number from a status word.
#[inline]
pub fn serial_of(word: u64) -> u64 {
    (word & SERIAL_MASK) >> SERIAL_SHIFT
}

/// Extracts the status from a status word.
#[inline]
pub fn status_of(word: u64) -> Status {
    Status::from_bits(word)
}

/// One read-set entry: an address and the `(value, counter)` pair observed by
/// the linearizing load of a read-only operation.
#[derive(Debug, Default)]
pub(crate) struct ReadEntry {
    stamp: AtomicU64,
    addr: AtomicUsize,
    val: AtomicU64,
    cnt: AtomicU64,
}

impl ReadEntry {
    /// Owner-side seqlock publish (see the module docs for the ordering
    /// argument).
    #[inline]
    fn publish(&self, serial: u64, addr: usize, val: u64, cnt: u64) {
        self.stamp.store(0, Ordering::Relaxed);
        fence(Ordering::Release);
        self.addr.store(addr, Ordering::Relaxed);
        self.val.store(val, Ordering::Relaxed);
        self.cnt.store(cnt, Ordering::Relaxed);
        self.stamp.store(serial, Ordering::Release);
    }

    /// Helper-side seqlock snapshot: `Some((addr, val, cnt))` iff the entry
    /// consistently belongs to `serial`.
    #[inline]
    fn snapshot(&self, serial: u64) -> Option<(usize, u64, u64)> {
        if self.stamp.load(Ordering::Acquire) != serial {
            return None;
        }
        let addr = self.addr.load(Ordering::Relaxed);
        let val = self.val.load(Ordering::Relaxed);
        let cnt = self.cnt.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if self.stamp.load(Ordering::Relaxed) != serial {
            return None; // recycled mid-read; it belongs to another serial
        }
        Some((addr, val, cnt))
    }
}

/// One write-set entry: the address, the pre-image `(old value, counter)` and
/// the speculative new value of a critical CAS.
#[derive(Debug, Default)]
pub(crate) struct WriteEntry {
    stamp: AtomicU64,
    addr: AtomicUsize,
    old_val: AtomicU64,
    cnt: AtomicU64,
    new_val: AtomicU64,
}

impl WriteEntry {
    #[inline]
    fn publish(&self, serial: u64, addr: usize, old_val: u64, cnt: u64, new_val: u64) {
        self.stamp.store(0, Ordering::Relaxed);
        fence(Ordering::Release);
        self.addr.store(addr, Ordering::Relaxed);
        self.old_val.store(old_val, Ordering::Relaxed);
        self.cnt.store(cnt, Ordering::Relaxed);
        self.new_val.store(new_val, Ordering::Relaxed);
        self.stamp.store(serial, Ordering::Release);
    }

    /// `Some((addr, old_val, cnt, new_val))` iff the entry consistently
    /// belongs to `serial`.
    #[inline]
    fn snapshot(&self, serial: u64) -> Option<(usize, u64, u64, u64)> {
        if self.stamp.load(Ordering::Acquire) != serial {
            return None;
        }
        let addr = self.addr.load(Ordering::Relaxed);
        let old_val = self.old_val.load(Ordering::Relaxed);
        let cnt = self.cnt.load(Ordering::Relaxed);
        let new_val = self.new_val.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if self.stamp.load(Ordering::Relaxed) != serial {
            return None;
        }
        Some((addr, old_val, cnt, new_val))
    }
}

/// A per-thread transaction descriptor.
///
/// Reused across transactions; the serial number embedded in the status word
/// distinguishes incarnations.  The layout is split into a hot header
/// (status, counts, inline entries) and a lazily allocated spill region; see
/// the module docs.
pub struct Desc {
    status: AtomicU64,
    rcount: AtomicUsize,
    wcount: AtomicUsize,
    reads_inline: [ReadEntry; INLINE_READS],
    writes_inline: [WriteEntry; INLINE_WRITES],
    reads_spill: OnceLock<Box<[ReadEntry]>>,
    writes_spill: OnceLock<Box<[WriteEntry]>>,
}

impl std::fmt::Debug for Desc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.status.load(Ordering::Relaxed);
        f.debug_struct("Desc")
            .field("tid", &tid_of(s))
            .field("serial", &serial_of(s))
            .field("status", &status_of(s))
            .field("reads", &self.rcount.load(Ordering::Relaxed))
            .field("writes", &self.wcount.load(Ordering::Relaxed))
            .finish()
    }
}

impl Desc {
    /// Creates a descriptor for thread `tid`.  Only the hot header is
    /// allocated; the spill region materializes on first use.
    pub fn new(tid: u64) -> Self {
        Self {
            status: AtomicU64::new(pack_status(tid, 0, Status::InPrep)),
            rcount: AtomicUsize::new(0),
            wcount: AtomicUsize::new(0),
            reads_inline: std::array::from_fn(|_| ReadEntry::default()),
            writes_inline: std::array::from_fn(|_| WriteEntry::default()),
            reads_spill: OnceLock::new(),
            writes_spill: OnceLock::new(),
        }
    }

    /// The raw status word.
    #[inline]
    pub fn status_word(&self) -> u64 {
        self.status.load(Ordering::SeqCst)
    }

    /// Current serial number.
    #[inline]
    pub fn serial(&self) -> u64 {
        serial_of(self.status_word())
    }

    /// Current status.
    #[inline]
    pub fn status(&self) -> Status {
        status_of(self.status_word())
    }

    /// This descriptor's address encoded as the 64-bit payload stored in a
    /// [`CasWord`] while the descriptor is installed.
    #[inline]
    pub fn as_payload(&self) -> u64 {
        self as *const Desc as u64
    }

    /// Entry `idx` of the read set (inline or spill).  The spill half is only
    /// reachable once the owner has pushed past the inline capacity, which
    /// initializes it first.
    #[inline]
    fn read_entry(&self, idx: usize) -> &ReadEntry {
        if idx < INLINE_READS {
            &self.reads_inline[idx]
        } else {
            &self.reads_spill.get().expect("spill read published")[idx - INLINE_READS]
        }
    }

    #[inline]
    fn write_entry(&self, idx: usize) -> &WriteEntry {
        if idx < INLINE_WRITES {
            &self.writes_inline[idx]
        } else {
            &self.writes_spill.get().expect("spill write published")[idx - INLINE_WRITES]
        }
    }

    /// Begins a new transaction: clears both sets and advances the serial
    /// number, resetting the status to `InPrep` (paper `txBegin`).
    ///
    /// Only the owning thread calls this, and with lazy publication the
    /// descriptor is guaranteed uninstalled everywhere by the time it runs,
    /// so plain (`Relaxed`/`Release`) stores suffice: stale helpers of the
    /// previous serial are fenced off by the entry stamps and the serial
    /// check in every status CAS.
    pub fn begin(&self) {
        self.rcount.store(0, Ordering::Relaxed);
        self.wcount.store(0, Ordering::Relaxed);
        let cur = self.status.load(Ordering::Relaxed);
        let next = pack_status(tid_of(cur), serial_of(cur).wrapping_add(1), Status::InPrep);
        self.status.store(next, Ordering::Release);
    }

    /// CAS on the status word that preserves `tid | serial` and moves
    /// `expected_full`'s status to `to` (paper `stsCAS`).
    #[inline]
    pub fn status_cas(&self, expected_full: u64, to: Status) -> bool {
        let desired = (expected_full & !STATUS_MASK) | to as u64;
        self.status
            .compare_exchange(expected_full, desired, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Transitions `InPrep -> InProg` for the current serial (paper
    /// `setReady`).  Fails if the transaction has already been aborted.
    pub fn set_ready(&self) -> bool {
        let cur = self.status.load(Ordering::SeqCst);
        if status_of(cur) != Status::InPrep {
            return false;
        }
        self.status_cas(cur, Status::InProg)
    }

    // ------------------------------------------------------------------
    // Owner-side publication (the "publish" step of the lifecycle)
    // ------------------------------------------------------------------

    /// Appends an entry to the read set.  Returns `false` when capacity is
    /// exhausted (the transaction must then abort with `CapacityExceeded`).
    pub fn push_read(&self, serial: u64, addr: *const CasWord, val: u64, cnt: u64) -> bool {
        let idx = self.rcount.load(Ordering::Relaxed);
        if idx >= MAX_ENTRIES {
            return false;
        }
        let e = if idx < INLINE_READS {
            &self.reads_inline[idx]
        } else {
            &self.reads_spill.get_or_init(|| {
                (0..MAX_ENTRIES - INLINE_READS)
                    .map(|_| ReadEntry::default())
                    .collect()
            })[idx - INLINE_READS]
        };
        e.publish(serial, addr as usize, val, cnt);
        self.rcount.store(idx + 1, Ordering::Release);
        true
    }

    /// Appends an entry to the write set.  Returns `false` when capacity is
    /// exhausted.
    pub fn push_write(
        &self,
        serial: u64,
        addr: *const CasWord,
        old_val: u64,
        cnt: u64,
        new_val: u64,
    ) -> bool {
        let idx = self.wcount.load(Ordering::Relaxed);
        if idx >= MAX_ENTRIES {
            return false;
        }
        let e = if idx < INLINE_WRITES {
            &self.writes_inline[idx]
        } else {
            &self.writes_spill.get_or_init(|| {
                (0..MAX_ENTRIES - INLINE_WRITES)
                    .map(|_| WriteEntry::default())
                    .collect()
            })[idx - INLINE_WRITES]
        };
        e.publish(serial, addr as usize, old_val, cnt, new_val);
        self.wcount.store(idx + 1, Ordering::Release);
        true
    }

    /// Owner-only: current number of write entries (diagnostics).
    pub fn write_count(&self) -> usize {
        self.wcount.load(Ordering::Relaxed)
    }

    /// Owner-only: current number of read entries (diagnostics).
    pub fn read_count(&self) -> usize {
        self.rcount.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // Commit/abort machinery (callable by owner and helpers)
    // ------------------------------------------------------------------

    /// Validates every read entry stamped with `serial`: the addressed word
    /// must still hold exactly the recorded `(value, counter)` pair — or
    /// hold **this transaction's own descriptor**, installed by a write of
    /// the same transaction over exactly that `(value, counter)` pre-image
    /// (installation bumps the counter by one).
    ///
    /// The own-write tolerance is essential, not cosmetic: a transaction
    /// that reads a word and also writes it (for instance a transfer whose
    /// source node is the list predecessor of its destination) installs its
    /// descriptor over the very pre-image the read recorded; without the
    /// tolerance it would invalidate its own read, abort, and — because the
    /// retry deterministically reproduces the same read-then-write pattern —
    /// livelock forever.
    pub fn validate_reads(&self, serial: u64) -> bool {
        let n = self.rcount.load(Ordering::Acquire).min(MAX_ENTRIES);
        for idx in 0..n {
            let Some((addr, val, cnt)) = self.read_entry(idx).snapshot(serial) else {
                continue; // stale or recycled entry of another serial
            };
            // SAFETY: the CasWord lives inside a data-structure node that is
            // protected by the owner's EBR pin for the duration of the
            // transaction, and helpers only run `validate_reads` while the
            // owner's transaction (hence its pin) is still live.
            let obj = unsafe { &*(addr as *const CasWord) };
            let (cur_val, cur_cnt) = obj.load_parts();
            if cur_val == val && cur_cnt == cnt {
                continue;
            }
            if CasWord::counter_is_descriptor(cur_cnt)
                && cur_val == self.as_payload()
                && cur_cnt == cnt.wrapping_add(1)
            {
                // Own write installed over the observed pre-image: the read
                // is still valid (the write takes effect atomically with the
                // commit; counters advance on every change, so a matching
                // `cnt` pins the exact incarnation that was read).
                continue;
            }
            return false;
        }
        true
    }

    /// Uninstalls this descriptor from every write-set entry stamped with
    /// `serial`, writing back the new value on commit or the old value on
    /// abort (paper `uninstall`).  Idempotent and safe to run concurrently
    /// from several threads: each per-word CAS expects the installed
    /// descriptor with the exact counter, so at most one uninstaller wins per
    /// word and all of them write the same value.  Entries whose install CAS
    /// never ran (commit lost a conflict mid-install) fail the expected-value
    /// check and are skipped harmlessly.
    pub fn uninstall(&self, serial: u64, outcome: Status) {
        debug_assert!(outcome == Status::Committed || outcome == Status::Aborted);
        let n = self.wcount.load(Ordering::Acquire).min(MAX_ENTRIES);
        let me = self.as_payload();
        for idx in 0..n {
            let Some((addr, old_val, cnt, new_val)) = self.write_entry(idx).snapshot(serial) else {
                continue; // recycled; not ours to touch
            };
            let write_back = if outcome == Status::Committed {
                new_val
            } else {
                old_val
            };
            // SAFETY: same argument as in `validate_reads`.
            let obj = unsafe { &*(addr as *const CasWord) };
            let installed = pack(me, cnt.wrapping_add(1));
            let replacement = pack(write_back, cnt.wrapping_add(2));
            let _ = obj.raw().cas(installed, replacement);
        }
    }

    /// Finalizes this descriptor on behalf of another thread that found it
    /// installed in `obj` holding the raw 128-bit value `observed`
    /// (paper `tryFinalize`, with additional serial re-validation so that a
    /// lagging helper can never interfere with a *newer* transaction of the
    /// same owner thread).
    ///
    /// With lazy publication a helper can only get here during the install
    /// window of `tx_end` (status `InPrep`, entries already published) or
    /// after `setReady` (`InProg`), so the entries it needs are always
    /// visible: the install CAS that exposed the descriptor is a full
    /// barrier ordered after the publish stores.
    pub fn try_finalize(&self, obj: &CasWord, observed: u128) {
        let d = self.status.load(Ordering::SeqCst);
        // Ensure the status word we read describes the transaction that is
        // actually installed in `obj`; otherwise the owner has already moved
        // on and there is nothing for us to do.
        if obj.raw().load() != observed {
            return;
        }
        let serial = serial_of(d);
        let mut cur = d;
        if status_of(cur) == Status::InPrep {
            // Eager contention management: abort the owner caught between
            // install and `setReady`.
            let _ = self.status_cas(cur, Status::Aborted);
            cur = self.status.load(Ordering::SeqCst);
            if serial_of(cur) != serial {
                return;
            }
        }
        if status_of(cur) == Status::InProg {
            // Help the owner finish its commit.
            if self.validate_reads(serial) {
                let _ = self.status_cas(cur, Status::Committed);
            } else {
                let _ = self.status_cas(cur, Status::Aborted);
            }
            cur = self.status.load(Ordering::SeqCst);
            if serial_of(cur) != serial {
                return;
            }
        }
        match status_of(cur) {
            Status::Committed => self.uninstall(serial, Status::Committed),
            Status::Aborted => self.uninstall(serial, Status::Aborted),
            // The owner raced ahead (new serial, or still somehow InPrep /
            // InProg for a different incarnation): leave it alone.
            _ => {}
        }
    }

    /// Directly resolves the final outcome of the current serial from the
    /// owner's side at commit time.  Returns the final status.
    pub fn finalize_own(&self, serial: u64) -> Status {
        let cur = self.status.load(Ordering::SeqCst);
        if serial_of(cur) != serial {
            // Should not happen for the owner; treat as aborted.
            return Status::Aborted;
        }
        if status_of(cur) == Status::InProg {
            if self.validate_reads(serial) {
                let _ = self.status_cas(cur, Status::Committed);
            } else {
                let _ = self.status_cas(cur, Status::Aborted);
            }
        }
        status_of(self.status.load(Ordering::SeqCst))
    }

    /// Owner-side abort of the current serial regardless of state (used by
    /// `tx_abort`).  Returns the final status (a helper may have already
    /// committed an `InProg` transaction, in which case the commit wins).
    pub fn abort_own(&self, serial: u64) -> Status {
        loop {
            let cur = self.status.load(Ordering::SeqCst);
            if serial_of(cur) != serial {
                return Status::Aborted;
            }
            match status_of(cur) {
                Status::Committed => return Status::Committed,
                Status::Aborted => return Status::Aborted,
                Status::InPrep | Status::InProg => {
                    if self.status_cas(cur, Status::Aborted) {
                        return Status::Aborted;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_word_packing_roundtrip() {
        for tid in [0u64, 1, 511, 16383] {
            for serial in [0u64, 1, 42, (1 << 48) - 1] {
                for st in [
                    Status::InPrep,
                    Status::InProg,
                    Status::Committed,
                    Status::Aborted,
                ] {
                    let w = pack_status(tid, serial, st);
                    assert_eq!(tid_of(w), tid);
                    assert_eq!(serial_of(w), serial);
                    assert_eq!(status_of(w), st);
                }
            }
        }
    }

    #[test]
    fn begin_bumps_serial_and_resets() {
        let d = Desc::new(3);
        assert_eq!(d.serial(), 0);
        d.begin();
        assert_eq!(d.serial(), 1);
        assert_eq!(d.status(), Status::InPrep);
        assert_eq!(d.read_count(), 0);
        assert_eq!(d.write_count(), 0);
        d.begin();
        assert_eq!(d.serial(), 2);
    }

    #[test]
    fn set_ready_then_commit_abort_transitions() {
        let d = Desc::new(1);
        d.begin();
        assert!(d.set_ready());
        assert_eq!(d.status(), Status::InProg);
        assert!(!d.set_ready(), "setReady requires InPrep");
        let cur = d.status_word();
        assert!(d.status_cas(cur, Status::Committed));
        assert_eq!(d.status(), Status::Committed);
    }

    #[test]
    fn spill_region_is_lazy_and_transparent() {
        let d = Desc::new(0);
        d.begin();
        let s = d.serial();
        let a = CasWord::new(7);
        // Stay within the inline capacity: no spill allocation.
        for _ in 0..INLINE_READS {
            assert!(d.push_read(s, &a, 7, 0));
        }
        assert!(
            d.reads_spill.get().is_none(),
            "inline pushes must not spill"
        );
        // One more read crosses into the spill region.
        assert!(d.push_read(s, &a, 7, 0));
        assert!(d.reads_spill.get().is_some());
        assert_eq!(d.read_count(), INLINE_READS + 1);
        // All entries (inline and spilled) validate against current memory.
        assert!(d.validate_reads(s));
        assert!(a.cas_value(7, 8));
        assert!(
            !d.validate_reads(s),
            "spilled entries must be validated too"
        );
    }

    #[test]
    fn entry_snapshot_rejects_other_serials() {
        let d = Desc::new(0);
        d.begin();
        let s = d.serial();
        let a = CasWord::new(1);
        assert!(d.push_read(s, &a, 1, 0));
        assert!(d.reads_inline[0].snapshot(s).is_some());
        assert!(d.reads_inline[0].snapshot(s + 1).is_none());
        // Recycling the entry for the next serial invalidates the old stamp.
        d.begin();
        let s2 = d.serial();
        assert!(d.push_read(s2, &a, 1, 0));
        assert!(d.reads_inline[0].snapshot(s).is_none());
        assert!(d.reads_inline[0].snapshot(s2).is_some());
    }

    #[test]
    fn validate_reads_tolerates_own_installed_write() {
        // A transaction that reads a word and later installs its own write
        // over the observed pre-image must still validate (regression test
        // for the read-your-own-write-set livelock).
        let d = Desc::new(0);
        d.begin();
        let s = d.serial();
        let a = CasWord::new(5);
        let (v, c) = a.load_parts();
        assert!(d.push_read(s, &a, v, c));
        assert!(d.push_write(s, &a, v, c, 6));
        // Simulate the install: descriptor payload with counter bumped by 1.
        assert!(a
            .raw()
            .cas(pack(v, c), pack(d.as_payload(), c.wrapping_add(1))));
        assert!(
            d.validate_reads(s),
            "own installed write must not invalidate the read"
        );
        // A *foreign* descriptor (different payload) must still fail.
        assert!(a.raw().cas(
            pack(d.as_payload(), c.wrapping_add(1)),
            pack(0xdead_beef, c.wrapping_add(1))
        ));
        assert!(!d.validate_reads(s));
    }

    #[test]
    fn validate_reads_detects_change() {
        let d = Desc::new(0);
        d.begin();
        let s = d.serial();
        let a = CasWord::new(5);
        let (v, c) = a.load_parts();
        assert!(d.push_read(s, &a, v, c));
        assert!(d.validate_reads(s));
        // Any change to the word (value or counter) must fail validation.
        assert!(a.cas_value(5, 6));
        assert!(!d.validate_reads(s));
    }

    #[test]
    fn uninstall_writes_back_and_skips_never_installed_entries() {
        let d = Desc::new(0);
        d.begin();
        let s = d.serial();
        let a = CasWord::new(10);
        let b = CasWord::new(20);
        let (av, ac) = a.load_parts();
        let (bv, bc) = b.load_parts();
        assert!(d.push_write(s, &a, av, ac, 11));
        assert!(d.push_write(s, &b, bv, bc, 21));
        // Install only `a`; `b`'s install never ran (lost conflict).
        assert!(a
            .raw()
            .cas(pack(av, ac), pack(d.as_payload(), ac.wrapping_add(1))));
        d.uninstall(s, Status::Aborted);
        assert_eq!(a.try_load_value(), Some(10), "installed word rolled back");
        assert_eq!(b.load_parts(), (20, 0), "never-installed word untouched");
    }

    #[test]
    fn capacity_is_enforced() {
        let d = Desc::new(0);
        d.begin();
        let s = d.serial();
        let a = CasWord::new(0);
        for _ in 0..MAX_ENTRIES {
            assert!(d.push_read(s, &a, 0, 0));
        }
        assert!(!d.push_read(s, &a, 0, 0));
    }
}
