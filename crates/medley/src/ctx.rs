//! Execution contexts: the typestate layer that makes "standalone" and
//! "inside a transaction" different *types* rather than a runtime branch.
//!
//! NBTC's headline promise (paper Sec. 2) is that a transformed operation
//! runs **uninstrumented** when called outside a transaction and
//! **speculatively** when called inside one.  The original API expressed that
//! distinction with an `in_tx` flag consulted on every critical access; this
//! module expresses it in the type system instead, in the style of kcas's
//! explicit `xt` transaction contexts:
//!
//! * [`NonTx`] is the standalone context.  Its `nbtc_load` / `nbtc_cas`
//!   compile down to the plain loads and CASes of the original nonblocking
//!   algorithm (plus the mandatory helping of encountered descriptors) —
//!   no `in_tx` check, no read-set bookkeeping, no speculative-value lookup.
//!   A container operation monomorphized for `NonTx` *is* the uninstrumented
//!   algorithm.
//! * [`Txn`] is the transactional context: an RAII guard created only by
//!   [`ThreadHandle::run`] / [`ThreadHandle::begin`].  It records reads and
//!   writes for commit-time validation, gives the transaction read-your-own-
//!   write visibility, exposes [`Txn::abort`] for `?`-style early return, and
//!   **aborts the transaction when dropped without commit** — so a panic
//!   unwinding out of a transaction body can no longer leak an installed
//!   descriptor or leave the handle stuck mid-transaction.
//!
//! Containers are written once, generically: `fn get<C: Ctx>(&self, cx: &mut
//! C, ...)`.  Misuse the old API allowed — calling a "transactional" helper
//! with no transaction open, starting a second transaction on a handle whose
//! first is still running, smuggling the transaction token out of its retry
//! closure — is rejected at compile time (see the `compile_fail` examples on
//! [`Txn`]).

use crate::casobj::CasWord;
use crate::errors::{Abort, AbortReason, TxResult};
use crate::txmanager::{AbortKind, ThreadHandle};

mod sealed {
    /// Seals [`super::Ctx`]: the NBTC runtime defines exactly two execution
    /// contexts (standalone and transactional), and the containers'
    /// correctness argument — critical accesses are either all plain or all
    /// speculative within one operation — relies on there being no third.
    pub trait Sealed {}
    impl Sealed for super::NonTx<'_> {}
    impl Sealed for super::Txn<'_> {}
}

/// An execution context for NBTC-transformed operations.
///
/// This trait is **sealed**: its only implementations are [`NonTx`]
/// (standalone execution — instrumentation compiled away) and [`Txn`]
/// (transactional execution — critical accesses run speculatively and take
/// effect atomically at commit).  Data structures written against `Ctx`
/// therefore get the paper's NBTC contract for free:
///
/// * **Standalone** (`NonTx`): `nbtc_load` and `nbtc_cas` are the plain
///   atomic load / value-CAS of the original nonblocking algorithm, with the
///   single addition that an encountered transaction descriptor is finalized
///   (helped or aborted) so a stalled transaction can never block a
///   non-transactional operation.  `add_read_with_counter` is a no-op;
///   `add_cleanup` runs its closure immediately; `tnew`/`tretire` allocate
///   and retire directly.
/// * **Transactional** (`Txn`): every critical CAS is buffered in plain
///   thread-local memory (lazy publication — nothing is visible to other
///   threads until commit); loads see the transaction's own buffered values;
///   registered reads are validated at commit; the commit itself picks the
///   cheapest sufficient path (descriptor-free read-only, single plain CAS,
///   or publish-install-resolve through the descriptor); cleanup closures
///   run only after a successful commit, and `tnew`ed blocks are freed on
///   abort.
///
/// The methods mirror the paper's `Composable` support surface; see
/// [`ThreadHandle`] for the underlying semantics of each.
pub trait Ctx: sealed::Sealed + Sized {
    /// Brackets one data-structure operation: pins the SMR epoch for its
    /// duration and (in a transaction) resets the speculation interval,
    /// exactly as the paper's `OpStarter` does at the top of every operation.
    fn with_op<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R;

    /// Transactional load of a [`CasWord`] (paper `nbtcLoad`); plain
    /// descriptor-finalizing load in a [`NonTx`] context.
    fn nbtc_load(&mut self, obj: &CasWord) -> u64 {
        self.nbtc_load_counted(obj).0
    }

    /// Like [`Ctx::nbtc_load`], but also returns the counter token observed
    /// by the load, for exact read registration via
    /// [`Ctx::add_read_with_counter`].
    fn nbtc_load_counted(&mut self, obj: &CasWord) -> (u64, u64);

    /// Transactional CAS (paper `nbtcCAS`); plain descriptor-finalizing CAS
    /// in a [`NonTx`] context.  `lin_pt` / `pub_pt` declare whether this CAS,
    /// if successful, is the linearization and/or publication point of the
    /// current operation.
    fn nbtc_cas(
        &mut self,
        obj: &CasWord,
        expected: u64,
        desired: u64,
        lin_pt: bool,
        pub_pt: bool,
    ) -> bool;

    /// Registers the linearizing load of a read-only outcome for commit-time
    /// validation (`val`/`cnt` as returned by [`Ctx::nbtc_load_counted`]).
    /// No-op in a [`NonTx`] context — standalone operations have nothing to
    /// validate.
    fn add_read_with_counter(&mut self, obj: &CasWord, val: u64, cnt: u64);

    /// Registers post-critical ("cleanup") work: deferred to after commit in
    /// a transaction, run immediately in a [`NonTx`] context.
    fn add_cleanup(&mut self, f: impl FnOnce(&mut ThreadHandle) + 'static);

    /// Registers compensation work that runs only if the transaction aborts;
    /// dropped without running in a [`NonTx`] context (a standalone operation
    /// cannot abort).
    fn add_abort_action(&mut self, f: impl FnOnce(&mut ThreadHandle) + 'static);

    /// Allocates a block whose ownership is tied to the transaction (paper
    /// `tNew`): freed automatically on abort; plain allocation in a
    /// [`NonTx`] context.
    fn tnew<T>(&mut self, value: T) -> *mut T;

    /// Frees a block previously produced by [`Ctx::tnew`] that was never
    /// published (paper `tDelete`).
    ///
    /// # Safety
    /// `ptr` must have been returned by `tnew::<T>` on this context's handle
    /// and must not be reachable from any shared structure.
    unsafe fn tdelete<T>(&mut self, ptr: *mut T);

    /// Retires a node through epoch-based reclamation (paper `tRetire`):
    /// deferred to commit in a transaction, immediate in a [`NonTx`] context.
    ///
    /// # Safety
    /// `ptr` must have been allocated via `Box` (directly or through `tnew`)
    /// and must be unlinked from the structure by the time the retirement
    /// takes effect, with no other thread retiring it as well.
    unsafe fn tretire<T: Send + 'static>(&mut self, ptr: *mut T);

    /// Immediate retirement regardless of context (used by cleanup closures
    /// and cleanup-phase helpers).
    ///
    /// # Safety
    /// Same contract as [`Ctx::tretire`].
    unsafe fn retire_now<T: Send + 'static>(&mut self, ptr: *mut T);

    /// Whether this context executes transactionally.  `const`-foldable after
    /// monomorphization: `false` for [`NonTx`], `true` for an open [`Txn`].
    fn is_transactional(&self) -> bool;

    /// The thread-slot id of the underlying [`ThreadHandle`] (always below
    /// [`TxManager::max_threads`](crate::TxManager::max_threads) of the
    /// manager the handle is registered with).
    ///
    /// This is the per-slot arena hook: side structures that keep per-thread
    /// state — such as the payload arenas of a persistence domain — index it
    /// by this id, relying on the manager's guarantee that at most one live
    /// handle owns a slot at a time.
    fn tid(&self) -> usize;

    /// The persistence epoch the open transaction snapshotted at begin
    /// (txMontage hook), or `None` in a standalone context.
    fn snapshot_epoch(&self) -> Option<u64>;

    /// Plain descriptor-finalizing load that **never joins a transaction's
    /// read set**, even in a [`Txn`] context.
    ///
    /// This is the hook for *infrastructure* actions inside a container
    /// operation — work that maintains the container's physical layout
    /// (e.g. publishing a bucket sentinel or doubling a directory in a
    /// split-ordered hash table) rather than its abstract state.  Such
    /// actions must take effect immediately and must not be validated,
    /// buffered, or rolled back with the enclosing transaction: two
    /// transactions touching disjoint keys may both trigger the same bucket
    /// initialization, and neither should conflict-abort over it.
    fn untracked_load(&mut self, obj: &CasWord) -> u64;

    /// Plain descriptor-finalizing CAS that **never joins a transaction's
    /// write set** — the effect is immediately visible to all threads and is
    /// not undone if the enclosing transaction aborts.
    ///
    /// See [`Ctx::untracked_load`] for the intended use (container
    /// infrastructure actions).  Callers must ensure the CAS is harmless to
    /// the transaction's atomicity argument: it may only install state that
    /// is semantically a no-op at the abstract level (sentinels, directory
    /// slots, unlinking already-deleted nodes).
    fn untracked_cas(&mut self, obj: &CasWord, expected: u64, desired: u64) -> bool;
}

// ---------------------------------------------------------------------------
// NonTx
// ---------------------------------------------------------------------------

/// The standalone execution context: operations run **uninstrumented**, as
/// the original nonblocking algorithms.
///
/// `NonTx` is a zero-cost wrapper around `&mut ThreadHandle` (obtained from
/// [`ThreadHandle::nontx`]); monomorphizing a container operation for it
/// compiles the transactional machinery away entirely — no `in_tx` branch is
/// ever evaluated, no read set is kept, and `tnew`/`tretire`/`add_cleanup`
/// reduce to plain allocation, immediate retirement, and immediate cleanup.
///
/// ```
/// use medley::{Ctx, TxManager};
///
/// let mgr = TxManager::new();
/// let mut h = mgr.register();
/// let w = medley::CasWord::new(3);
/// // A lone CAS through the standalone context: one plain counted CAS.
/// assert!(h.nontx().nbtc_cas(&w, 3, 4, true, true));
/// assert_eq!(w.try_load_value(), Some(4));
/// ```
pub struct NonTx<'h> {
    h: &'h mut ThreadHandle,
}

impl<'h> NonTx<'h> {
    /// Wraps a thread handle as a standalone execution context
    /// (equivalent to [`ThreadHandle::nontx`]).
    /// # Panics
    /// Panics if a low-level transaction (`tx_begin`) is open on the handle:
    /// running a standalone operation in the middle of a transaction would
    /// silently bypass its atomicity, so the misuse the borrow checker
    /// cannot see (the primitive layer is not guard-based) is rejected at
    /// runtime in every build.
    #[inline]
    pub fn new(h: &'h mut ThreadHandle) -> Self {
        assert!(
            !h.in_tx(),
            "standalone context over a handle with an open low-level transaction"
        );
        Self { h }
    }

    // Note: deliberately no `handle()` escape hatch — handing the raw
    // `&mut ThreadHandle` back out would let callers open a low-level
    // transaction behind the wrapper and bypass the invariant asserted in
    // `new`.  Drop the context to get the handle back.
}

impl Ctx for NonTx<'_> {
    fn with_op<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        // Unwind-safe bracket: the guard owns the context borrow and the
        // body runs on a reborrow through it, so the unpin in `Drop` runs
        // even when the body panics (a leaked pin would stall epoch
        // reclamation process-wide), without any raw-pointer aliasing.
        struct Guard<'a, 'h>(&'a mut NonTx<'h>);
        impl Drop for Guard<'_, '_> {
            fn drop(&mut self) {
                self.0.h.unpin_op();
            }
        }
        self.h.pin_op();
        let guard = Guard(self);
        f(&mut *guard.0)
    }

    #[inline]
    fn nbtc_load_counted(&mut self, obj: &CasWord) -> (u64, u64) {
        self.h.untracked_load_counted(obj)
    }

    #[inline]
    fn nbtc_cas(
        &mut self,
        obj: &CasWord,
        expected: u64,
        desired: u64,
        _lin_pt: bool,
        _pub_pt: bool,
    ) -> bool {
        self.h.untracked_cas(obj, expected, desired)
    }

    #[inline]
    fn add_read_with_counter(&mut self, _obj: &CasWord, _val: u64, _cnt: u64) {}

    fn add_cleanup(&mut self, f: impl FnOnce(&mut ThreadHandle) + 'static) {
        f(self.h);
    }

    fn add_abort_action(&mut self, _f: impl FnOnce(&mut ThreadHandle) + 'static) {}

    #[inline]
    fn tnew<T>(&mut self, value: T) -> *mut T {
        Box::into_raw(Box::new(value))
    }

    unsafe fn tdelete<T>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded from the caller's contract.
        drop(unsafe { Box::from_raw(ptr) });
    }

    unsafe fn tretire<T: Send + 'static>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.h.retire_now(ptr) };
    }

    unsafe fn retire_now<T: Send + 'static>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.h.retire_now(ptr) };
    }

    #[inline]
    fn is_transactional(&self) -> bool {
        false
    }

    #[inline]
    fn tid(&self) -> usize {
        self.h.tid()
    }

    #[inline]
    fn snapshot_epoch(&self) -> Option<u64> {
        None
    }

    #[inline]
    fn untracked_load(&mut self, obj: &CasWord) -> u64 {
        self.h.untracked_load_counted(obj).0
    }

    #[inline]
    fn untracked_cas(&mut self, obj: &CasWord, expected: u64, desired: u64) -> bool {
        self.h.untracked_cas(obj, expected, desired)
    }
}

impl std::fmt::Debug for NonTx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NonTx").field("tid", &self.h.tid()).finish()
    }
}

impl ThreadHandle {
    /// The standalone execution context of this handle: container operations
    /// called through it run uninstrumented, exactly like the original
    /// nonblocking algorithms.
    #[inline]
    pub fn nontx(&mut self) -> NonTx<'_> {
        NonTx::new(self)
    }
}

// ---------------------------------------------------------------------------
// Txn
// ---------------------------------------------------------------------------

/// The transactional execution context: an RAII guard over an open Medley
/// transaction.
///
/// A `Txn` is created only by [`ThreadHandle::run`] (which owns the retry
/// loop) or [`ThreadHandle::begin`] (manual commit control).  While it is
/// alive it mutably borrows the handle, so the type system enforces the
/// runtime's single-open-transaction rule, and its `Drop` aborts the
/// transaction if it is still open — panics unwinding out of a transaction
/// body roll back instead of leaking an installed descriptor.
///
/// A second `begin` while a transaction is open is rejected at compile time:
///
/// ```compile_fail,E0499
/// use medley::TxManager;
/// let mgr = TxManager::new();
/// let mut h = mgr.register();
/// let t1 = h.begin();
/// let t2 = h.begin(); // ERROR: `h` is already mutably borrowed by `t1`
/// drop(t1);
/// drop(t2);
/// ```
///
/// And the guard cannot be smuggled out of a [`ThreadHandle::run`] closure
/// (its lifetime is higher-ranked, so nothing outside the closure can hold
/// it):
///
/// ```compile_fail
/// use medley::TxManager;
/// let mgr = TxManager::new();
/// let mut h = mgr.register();
/// let mut escaped = None;
/// let _ = h.run(|t| {
///     escaped = Some(t); // ERROR: borrowed data escapes the closure
///     Ok(())
/// });
/// ```
///
/// Standalone calls cannot run concurrently with the transaction either —
/// the handle is mutably borrowed for as long as the guard lives:
///
/// ```compile_fail,E0499
/// use medley::{Ctx, TxManager};
/// let mgr = TxManager::new();
/// let mut h = mgr.register();
/// let t = h.begin();
/// h.nontx(); // ERROR: cannot borrow `h` mutably a second time
/// drop(t);
/// ```
pub struct Txn<'h> {
    h: &'h mut ThreadHandle,
    /// Set by [`Txn::abort`]; lets a later [`Txn::commit`] report the abort
    /// instead of panicking, and lets `run` classify the outcome.
    aborted: Option<AbortReason>,
}

impl<'h> Txn<'h> {
    #[inline]
    pub(crate) fn new(h: &'h mut ThreadHandle) -> Self {
        debug_assert!(h.in_tx());
        Self { h, aborted: None }
    }

    /// Whether the transaction is still open (neither committed nor
    /// aborted).  After [`Txn::abort`] the guard stays usable — operations
    /// simply execute standalone, which keeps retry glue loops live — but
    /// the transaction itself is gone.
    #[inline]
    pub fn is_open(&self) -> bool {
        self.h.in_tx()
    }

    /// Aborts the transaction now and returns the [`Abort`] token to
    /// propagate, so the idiomatic early return from a transaction body is
    ///
    /// ```
    /// use medley::{AbortReason, TxError, TxManager};
    /// let mgr = TxManager::new();
    /// let mut h = mgr.register();
    /// let balance = 3_u64;
    /// let res = h.run(|t| {
    ///     if balance < 10 {
    ///         return Err(t.abort(AbortReason::Explicit));
    ///     }
    ///     Ok(())
    /// });
    /// assert_eq!(res, Err(TxError::Explicit));
    /// ```
    ///
    /// [`AbortReason::Explicit`] is final ([`ThreadHandle::run`] reports
    /// [`TxError::Explicit`](crate::TxError::Explicit) without retrying);
    /// [`AbortReason::Conflict`]
    /// requests a retry.
    pub fn abort(&mut self, reason: AbortReason) -> Abort {
        if self.h.in_tx() {
            self.h.abort_with(match reason {
                AbortReason::Explicit => AbortKind::Explicit,
                AbortReason::Conflict => AbortKind::Conflict,
            });
            self.aborted = Some(reason);
        }
        Abort::new(reason)
    }

    /// Attempts to commit the transaction, consuming the guard (paper
    /// `txEnd`).  Only needed with [`ThreadHandle::begin`];
    /// [`ThreadHandle::run`] commits on its own.
    ///
    /// If the transaction was already closed by [`Txn::abort`], this reports
    /// the abort ([`TxError::Explicit`](crate::TxError::Explicit) or
    /// [`TxError::Conflict`](crate::TxError::Conflict)) instead of
    /// committing.
    #[inline]
    pub fn commit(self) -> TxResult<()> {
        if !self.h.in_tx() {
            // Closed by an earlier `abort` on this guard.
            return Err(match self.aborted {
                Some(AbortReason::Conflict) => crate::TxError::Conflict,
                _ => crate::TxError::Explicit,
            });
        }
        // `tx_end` closes the transaction on every path (commit or abort),
        // so the subsequent guard drop is a no-op.
        self.h.tx_end()
    }

    /// Validates the read set registered so far (paper `validateReads`):
    /// optional opacity check for bodies that cannot tolerate inconsistent
    /// reads.  Reports `false` once the transaction is doomed or aborted.
    pub fn validate_reads(&self) -> bool {
        if !self.h.in_tx() {
            return false;
        }
        self.h.validate_reads()
    }

    // Note: deliberately no `handle()` escape hatch; closing or reopening
    // the low-level transaction behind the guard would desynchronize its
    // bookkeeping.  Commit or drop the guard first, then use the handle.
}

impl Drop for Txn<'_> {
    #[inline]
    fn drop(&mut self) {
        if self.h.in_tx() {
            // Dropped without commit: abort.  This is the unwind path — a
            // panic in a transaction body, or glue code that let the guard
            // fall out of scope — and it must leave the handle reusable with
            // no descriptor installed anywhere.
            self.h.abort_with(AbortKind::Unwind);
        }
    }
}

impl Ctx for Txn<'_> {
    fn with_op<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        // Unwind-safe bracket (see the `NonTx` impl): additionally resets
        // the speculation interval on both entry and exit, as the paper's
        // `OpStarter` does.
        struct Guard<'a, 'h>(&'a mut Txn<'h>);
        impl Drop for Guard<'_, '_> {
            fn drop(&mut self) {
                self.0.h.clear_spec_interval();
                self.0.h.unpin_op();
            }
        }
        self.h.pin_op();
        self.h.clear_spec_interval();
        let guard = Guard(self);
        f(&mut *guard.0)
    }

    #[inline]
    fn nbtc_load_counted(&mut self, obj: &CasWord) -> (u64, u64) {
        if self.h.in_tx() {
            self.h.tx_load_counted(obj)
        } else {
            // Aborted guard: execution continues standalone so glue-code
            // retry loops keep making progress (matches the doomed-
            // transaction discipline of the runtime).
            self.h.untracked_load_counted(obj)
        }
    }

    #[inline]
    fn nbtc_cas(
        &mut self,
        obj: &CasWord,
        expected: u64,
        desired: u64,
        lin_pt: bool,
        pub_pt: bool,
    ) -> bool {
        if self.h.in_tx() {
            self.h.tx_cas(obj, expected, desired, lin_pt, pub_pt)
        } else {
            self.h.untracked_cas(obj, expected, desired)
        }
    }

    #[inline]
    fn add_read_with_counter(&mut self, obj: &CasWord, val: u64, cnt: u64) {
        self.h.add_read_with_counter(obj, val, cnt);
    }

    fn add_cleanup(&mut self, f: impl FnOnce(&mut ThreadHandle) + 'static) {
        self.h.add_cleanup(f);
    }

    fn add_abort_action(&mut self, f: impl FnOnce(&mut ThreadHandle) + 'static) {
        self.h.add_abort_action(f);
    }

    #[inline]
    fn tnew<T>(&mut self, value: T) -> *mut T {
        self.h.tnew(value)
    }

    unsafe fn tdelete<T>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.h.tdelete(ptr) };
    }

    unsafe fn tretire<T: Send + 'static>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.h.tretire(ptr) };
    }

    unsafe fn retire_now<T: Send + 'static>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.h.retire_now(ptr) };
    }

    #[inline]
    fn is_transactional(&self) -> bool {
        self.h.in_tx()
    }

    #[inline]
    fn tid(&self) -> usize {
        self.h.tid()
    }

    #[inline]
    fn snapshot_epoch(&self) -> Option<u64> {
        if self.h.in_tx() {
            Some(self.h.snapshot_epoch())
        } else {
            None
        }
    }

    #[inline]
    fn untracked_load(&mut self, obj: &CasWord) -> u64 {
        // Deliberately bypasses `tx_load_counted`: the value read is
        // infrastructure, not part of the transaction's footprint, so it is
        // neither buffered nor validated.
        self.h.untracked_load_counted(obj).0
    }

    #[inline]
    fn untracked_cas(&mut self, obj: &CasWord, expected: u64, desired: u64) -> bool {
        // Immediate global effect even mid-transaction: infrastructure CASes
        // (sentinel insertion, directory publication) must survive an abort
        // of the enclosing transaction.
        self.h.untracked_cas(obj, expected, desired)
    }
}

impl std::fmt::Debug for Txn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn")
            .field("tid", &self.h.tid())
            .field("open", &self.h.in_tx())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Contention management
// ---------------------------------------------------------------------------

/// How [`ThreadHandle::run_with`] waits between conflict retries — the
/// pluggable contention manager.
///
/// The TM literature (Kuznetsov & Ravi, *Why Transactional Memory Should Not
/// Be Obstruction-Free*; Scherer & Scott's karma/timestamp managers) argues
/// that liveness under contention should come from a deliberate contention
/// *policy*, not from per-operation heroics.  The runtime keeps the commit
/// protocol fixed and exposes the policy here; each variant only changes how
/// long a transaction waits after losing a conflict, so every policy
/// preserves the runtime's safety argument unchanged.
///
/// All three policies are measurable through the contention-manager counters
/// in [`TxStats`](crate::TxStats) (`cm_waits`, `cm_priority_skips`,
/// `cm_escalations`), which is what makes policy A/B runs comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContentionPolicy {
    /// Capped exponential backoff (the historical default): every lost
    /// conflict doubles the wait up to [`RunConfig::backoff_limit`].
    #[default]
    Backoff,
    /// Karma-style seniority: the wait *shrinks* as the transaction invests
    /// more attempts, so long-suffering transactions get priority over fresh
    /// ones instead of being pushed ever further back.  (A local reading of
    /// Scherer & Scott's karma manager — our commit protocol has no channel
    /// for the winner to learn the loser's priority, so priority is spent on
    /// one's own wait rather than on aborting the enemy.)
    Karma,
    /// Adaptive, fed by the per-thread conflict-abort-rate EWMA
    /// ([`ThreadHandle::contention_ewma`]): near-zero waits while the thread
    /// is winning (uncontended keys), the default escalation in the middle,
    /// and an immediate escalation to scheduler yields once the abort rate
    /// says the thread is stuck on a hot key.
    Adaptive,
}

// ---------------------------------------------------------------------------
// RunConfig
// ---------------------------------------------------------------------------

/// Retry policy for [`ThreadHandle::run_with`], built in the builder style.
///
/// The default (used by [`ThreadHandle::run`]) retries conflicts forever
/// with full exponential backoff, which matches the obstruction-free
/// progress argument of the paper: a transaction that keeps losing conflicts
/// eventually runs in isolation long enough to commit.  Latency-sensitive
/// callers can bound the retry count (surfaced as
/// [`TxError::RetriesExhausted`](crate::TxError::RetriesExhausted)), cap
/// how far the backoff escalates, and swap the wait policy itself via
/// [`RunConfig::contention_policy`].
#[derive(Debug, Clone)]
pub struct RunConfig {
    max_retries: Option<u64>,
    backoff_limit: u32,
    policy: ContentionPolicy,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            max_retries: None,
            backoff_limit: u32::MAX,
            policy: ContentionPolicy::Backoff,
        }
    }
}

impl RunConfig {
    /// The default policy: unlimited retries, full exponential backoff.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds the number of *retries* (attempts after the first).  When the
    /// budget is exhausted [`ThreadHandle::run_with`] returns
    /// [`TxError::RetriesExhausted`](crate::TxError::RetriesExhausted)
    /// instead of spinning further; 0 means
    /// one attempt, no retry.
    pub fn max_retries(mut self, retries: u64) -> Self {
        self.max_retries = Some(retries);
        self
    }

    /// Removes the retry bound (the default).
    pub fn unlimited_retries(mut self) -> Self {
        self.max_retries = None;
        self
    }

    /// Caps the exponential-backoff escalation at `limit` doubling steps
    /// (0 = a single spin-loop hint between attempts; the default escalates
    /// all the way to `thread::yield_now`).
    pub fn backoff_limit(mut self, limit: u32) -> Self {
        self.backoff_limit = limit;
        self
    }

    /// Selects the contention manager that paces conflict retries (the
    /// default is [`ContentionPolicy::Backoff`], today's capped exponential
    /// backoff).
    pub fn contention_policy(mut self, policy: ContentionPolicy) -> Self {
        self.policy = policy;
        self
    }

    pub(crate) fn max_retries_value(&self) -> Option<u64> {
        self.max_retries
    }

    pub(crate) fn backoff_limit_value(&self) -> u32 {
        self.backoff_limit
    }

    pub(crate) fn contention_policy_value(&self) -> ContentionPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::TxError;
    use crate::txmanager::TxManager;

    #[test]
    fn nontx_is_uninstrumented() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(1);
        let mut cx = h.nontx();
        assert!(!cx.is_transactional());
        assert_eq!(cx.snapshot_epoch(), None);
        let (v, c) = cx.nbtc_load_counted(&w);
        assert_eq!((v, c), (1, 0));
        // Registration is a no-op; the CAS is a plain counted CAS.
        cx.add_read_with_counter(&w, v, c);
        assert!(cx.nbtc_cas(&w, 1, 2, true, true));
        assert_eq!(w.load_parts(), (2, 2));
    }

    #[test]
    fn nontx_cleanup_runs_immediately_and_abort_action_is_dropped() {
        use std::cell::Cell;
        use std::rc::Rc;
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let ran = Rc::new(Cell::new(0));
        let (r1, r2) = (Rc::clone(&ran), Rc::clone(&ran));
        let mut cx = h.nontx();
        cx.add_cleanup(move |_| r1.set(r1.get() + 1));
        assert_eq!(ran.get(), 1);
        cx.add_abort_action(move |_| r2.set(r2.get() + 100));
        assert_eq!(ran.get(), 1, "standalone abort actions never run");
    }

    #[test]
    fn txn_guard_commits_and_reports_state() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(5);
        let mut t = h.begin();
        assert!(t.is_open());
        assert!(t.is_transactional());
        let v = t.nbtc_load(&w);
        assert!(t.nbtc_cas(&w, v, v + 1, true, true));
        assert!(t.commit().is_ok());
        assert_eq!(w.try_load_value(), Some(6));
        assert!(!h.in_tx());
    }

    #[test]
    fn txn_guard_aborts_on_drop() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(5);
        {
            let mut t = h.begin();
            assert!(t.nbtc_cas(&w, 5, 9, true, true));
            // Guard falls out of scope without commit.
        }
        assert!(!h.in_tx(), "drop must close the transaction");
        assert_eq!(w.try_load_value(), Some(5), "write rolled back");
        h.flush_stats();
        assert_eq!(mgr.stats().snapshot().unwind_aborts, 1);
    }

    #[test]
    fn explicit_abort_returns_token_and_rolls_back() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(5);
        let res: TxResult<()> = h.run(|t| {
            assert!(t.nbtc_cas(&w, 5, 6, true, true));
            Err(t.abort(AbortReason::Explicit))
        });
        assert_eq!(res, Err(TxError::Explicit));
        assert_eq!(w.try_load_value(), Some(5));
        h.flush_stats();
        let snap = mgr.stats().snapshot();
        assert_eq!(snap.explicit_aborts, 1);
        assert_eq!(snap.unwind_aborts, 0, "aborted guard must not double-count");
    }

    #[test]
    fn conflict_abort_retries() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(0);
        let mut attempts = 0;
        let res = h.run(|t| {
            attempts += 1;
            let v = t.nbtc_load(&w);
            if attempts < 3 {
                return Err(t.abort(AbortReason::Conflict));
            }
            assert!(t.nbtc_cas(&w, v, v + 1, true, true));
            Ok(v + 1)
        });
        assert_eq!(res, Ok(1));
        assert_eq!(attempts, 3);
        h.flush_stats();
        assert_eq!(mgr.stats().snapshot().conflict_aborts, 2);
    }

    #[test]
    fn run_with_bounded_retries_exhausts() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let cfg = RunConfig::new().max_retries(3).backoff_limit(0);
        let mut attempts = 0;
        let res: TxResult<()> = h.run_with(&cfg, |t| {
            attempts += 1;
            Err(t.abort(AbortReason::Conflict))
        });
        assert_eq!(res, Err(TxError::RetriesExhausted));
        assert_eq!(attempts, 4, "one initial attempt plus three retries");
        assert!(!h.in_tx());
    }

    #[test]
    fn commit_after_abort_reports_the_abort_instead_of_panicking() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let mut t = h.begin();
        let _ = t.abort(AbortReason::Explicit);
        assert_eq!(t.commit(), Err(TxError::Explicit));
        let mut t = h.begin();
        let _ = t.abort(AbortReason::Conflict);
        assert_eq!(t.commit(), Err(TxError::Conflict));
        assert!(!h.in_tx());
    }

    #[test]
    fn stale_abort_token_still_closes_the_transaction() {
        // A body that smuggles a token from an earlier `run` and returns it
        // without aborting: `run` must close the open transaction under the
        // token's reason (not leave it to the unwind guard).
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(1);
        let mut stale: Option<crate::errors::Abort> = None;
        let _: TxResult<()> = h.run(|t| {
            stale = Some(t.abort(AbortReason::Explicit));
            Err(stale.unwrap())
        });
        let res: TxResult<()> = h.run(|t| {
            assert!(t.nbtc_cas(&w, 1, 2, true, true));
            Err(stale.unwrap()) // transaction still open here
        });
        assert_eq!(res, Err(TxError::Explicit));
        assert!(!h.in_tx());
        assert_eq!(w.try_load_value(), Some(1), "open tx must be rolled back");
        h.flush_stats();
        let snap = mgr.stats().snapshot();
        assert_eq!(
            snap.unwind_aborts, 0,
            "stale token must not be classified as an unwind abort"
        );
        assert_eq!(snap.explicit_aborts, 2);
    }

    #[test]
    fn panic_inside_operation_body_does_not_leak_the_op_pin() {
        // A panicking `V::clone` (or user closure) inside `with_op` must not
        // leave the EBR pin held — a leaked pin stalls epoch reclamation for
        // the whole process.
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut cx = h.nontx();
            cx.with_op(|cx| {
                let _ = cx.nbtc_load(&w);
                panic!("boom inside a standalone operation");
            })
        }));
        assert!(result.is_err());
        assert_eq!(h.pin_depth(), 0, "standalone op pin leaked on unwind");

        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: TxResult<()> = h.run(|t| {
                t.with_op(|t| {
                    let _ = t.nbtc_load(&w);
                    panic!("boom inside a transactional operation");
                })
            });
        }));
        assert!(result.is_err());
        assert!(!h.in_tx());
        assert_eq!(h.pin_depth(), 0, "transactional op pin leaked on unwind");
    }

    #[test]
    #[should_panic(expected = "standalone context")]
    fn nontx_during_low_level_transaction_is_rejected() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        h.tx_begin();
        let _ = NonTx::new(&mut h); // must panic in every build profile
    }

    #[test]
    fn aborted_guard_keeps_executing_standalone() {
        // Matches the doomed-transaction discipline: after an abort the body
        // may keep calling operations; they take effect immediately.
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(1);
        let res: TxResult<u64> = h.run(|t| {
            let _ = t.abort(AbortReason::Conflict);
            assert!(!t.is_open());
            assert!(t.nbtc_cas(&w, 1, 7, true, true));
            Ok(t.nbtc_load(&w))
        });
        // Body returned Ok after aborting: the value is the result and the
        // standalone CAS stuck.
        assert_eq!(res, Ok(7));
        assert_eq!(w.try_load_value(), Some(7));
    }
}
