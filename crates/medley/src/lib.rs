//! # Medley — NonBlocking Transaction Composition (NBTC)
//!
//! Medley is an obstruction-free runtime for composing operations of
//! *existing* nonblocking data structures into strictly serializable
//! transactions, reproducing the system described in
//! **"Transactional Composition of Nonblocking Data Structures"**
//! (Cai, Wen, Scott; PPoPP 2023).
//!
//! The key observation of NBTC is that in an already-nonblocking structure
//! only the *critical* memory accesses — the linearizing load of a read-only
//! operation and the CASes between an update's publication point and its
//! linearization point — must take effect together, atomically.  Everything
//! before them can run eagerly; everything after them ("cleanup") can be
//! postponed until after commit.  Medley therefore instruments roughly **one
//! memory access per constituent operation** instead of every load and store
//! like a conventional STM.
//!
//! ## Architecture
//!
//! * [`atomic128`] — a 128-bit atomic word (`lock cmpxchg16b`).
//! * [`casobj`] — [`CasWord`]/[`CasObj`]: a 64-bit value augmented with a
//!   64-bit counter; odd counters mark an installed transaction descriptor.
//! * [`descriptor`] — per-thread reusable descriptors implementing
//!   M-compare-N-swap: read set, write set, and the `tid|serial|status` word.
//!   Descriptors follow a two-phase, *private-then-published* lifecycle:
//!   reads and writes accumulate in plain thread-local buffers during
//!   execution and are published (and installed) only at `tx_end`, on the
//!   general commit path — see the module docs for the layout (hot header +
//!   lazy spill) and memory-ordering argument.
//! * [`ctx`] — the **user-facing typestate API**: the sealed [`Ctx`] trait
//!   with its two execution contexts, [`NonTx`] (standalone — the
//!   instrumentation monomorphizes away) and [`Txn`] (transactional — an
//!   RAII guard that aborts on drop/unwind), plus the [`RunConfig`] retry
//!   policy.
//! * [`txmanager`] — [`TxManager`] / [`ThreadHandle`]: the low-level
//!   transaction machinery ([`ThreadHandle::run`] / [`ThreadHandle::begin`]
//!   create `Txn` guards; `tx_begin`/`tx_end`/`nbtc_load`/`nbtc_cas` are the
//!   primitive layer the contexts are built from) and the `Composable`
//!   support surface (`add_to_read_set`, `add_cleanup`, `tnew`, `tdelete`,
//!   `tretire`).
//! * [`ebr`] — epoch-based safe memory reclamation.
//!
//! ## Example
//!
//! ```
//! use medley::{AbortReason, Ctx, TxManager, TxError, CasWord};
//!
//! let mgr = TxManager::new();
//! let mut h = mgr.register();
//! let a = CasWord::new(100);
//! let b = CasWord::new(0);
//!
//! // Atomically move 10 units from `a` to `b`.  The closure receives a
//! // `Txn` guard; aborting goes through it, and a panic would roll back.
//! let moved: Result<(), TxError> = h.run(|t| {
//!     let x = t.nbtc_load(&a);
//!     let y = t.nbtc_load(&b);
//!     if x < 10 {
//!         return Err(t.abort(AbortReason::Explicit));
//!     }
//!     if !t.nbtc_cas(&a, x, x - 10, true, true) {
//!         return Err(t.abort(AbortReason::Conflict));
//!     }
//!     if !t.nbtc_cas(&b, y, y + 10, true, true) {
//!         return Err(t.abort(AbortReason::Conflict));
//!     }
//!     Ok(())
//! });
//! assert!(moved.is_ok());
//! assert_eq!(a.try_load_value(), Some(90));
//! assert_eq!(b.try_load_value(), Some(10));
//! ```
//!
//! Higher-level NBTC-transformed containers (queues, hash tables, skiplists,
//! binary search trees) live in the companion `nbds` crate; persistence
//! (txMontage) lives in `pmem` + `txmontage`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod atomic128;
pub mod casobj;
pub mod ctx;
pub mod descriptor;
pub mod ebr;
pub mod errors;
pub mod txmanager;
pub mod util;

pub use casobj::{CasObj, CasWord, Word};
pub use ctx::{ContentionPolicy, Ctx, NonTx, RunConfig, Txn};
pub use descriptor::{Desc, Status, MAX_ENTRIES};
pub use errors::{Abort, AbortReason, TxError, TxResult};
pub use txmanager::{ThreadHandle, TxManager, TxStats, TxStatsSnapshot};
