//! # Medley — NonBlocking Transaction Composition (NBTC)
//!
//! Medley is an obstruction-free runtime for composing operations of
//! *existing* nonblocking data structures into strictly serializable
//! transactions, reproducing the system described in
//! **"Transactional Composition of Nonblocking Data Structures"**
//! (Cai, Wen, Scott; PPoPP 2023).
//!
//! The key observation of NBTC is that in an already-nonblocking structure
//! only the *critical* memory accesses — the linearizing load of a read-only
//! operation and the CASes between an update's publication point and its
//! linearization point — must take effect together, atomically.  Everything
//! before them can run eagerly; everything after them ("cleanup") can be
//! postponed until after commit.  Medley therefore instruments roughly **one
//! memory access per constituent operation** instead of every load and store
//! like a conventional STM.
//!
//! ## Architecture
//!
//! * [`atomic128`] — a 128-bit atomic word (`lock cmpxchg16b`).
//! * [`casobj`] — [`CasWord`]/[`CasObj`]: a 64-bit value augmented with a
//!   64-bit counter; odd counters mark an installed transaction descriptor.
//! * [`descriptor`] — per-thread reusable descriptors implementing
//!   M-compare-N-swap: read set, write set, and the `tid|serial|status` word.
//! * [`txmanager`] — [`TxManager`] / [`ThreadHandle`]: transaction control
//!   (`tx_begin`/`tx_end`/`tx_abort`/`run`), the transactional accesses
//!   `nbtc_load`/`nbtc_cas`, and the `Composable` support surface
//!   (`add_to_read_set`, `add_cleanup`, `tnew`, `tdelete`, `tretire`).
//! * [`ebr`] — epoch-based safe memory reclamation.
//!
//! ## Example
//!
//! ```
//! use medley::{TxManager, TxError, CasWord};
//!
//! let mgr = TxManager::new();
//! let mut h = mgr.register();
//! let a = CasWord::new(100);
//! let b = CasWord::new(0);
//!
//! // Atomically move 10 units from `a` to `b`.
//! let moved: Result<(), TxError> = h.run(|h| {
//!     let x = h.nbtc_load(&a);
//!     let y = h.nbtc_load(&b);
//!     if x < 10 {
//!         return Err(h.tx_abort());
//!     }
//!     if !h.nbtc_cas(&a, x, x - 10, true, true) {
//!         return Err(TxError::Conflict);
//!     }
//!     if !h.nbtc_cas(&b, y, y + 10, true, true) {
//!         return Err(TxError::Conflict);
//!     }
//!     Ok(())
//! });
//! assert!(moved.is_ok());
//! assert_eq!(a.try_load_value(), Some(90));
//! assert_eq!(b.try_load_value(), Some(10));
//! ```
//!
//! Higher-level NBTC-transformed containers (queues, hash tables, skiplists,
//! binary search trees) live in the companion `nbds` crate; persistence
//! (txMontage) lives in `pmem` + `txmontage`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod atomic128;
pub mod casobj;
pub mod descriptor;
pub mod ebr;
pub mod errors;
pub mod txmanager;
pub mod util;

pub use casobj::{CasObj, CasWord, Word};
pub use descriptor::{Desc, Status, MAX_ENTRIES};
pub use errors::{TxError, TxResult};
pub use txmanager::{ThreadHandle, TxManager, TxStats, TxStatsSnapshot};
