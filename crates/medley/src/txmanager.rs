//! The transaction manager and per-thread handles.
//!
//! [`TxManager`] owns one pre-allocated descriptor per thread slot plus the
//! epoch-based reclamation domain; it is shared (via `Arc`) among all
//! transactional data structures that may participate in the same
//! transactions, exactly like the `TxManager*` the paper's `Composable`
//! objects share.
//!
//! [`ThreadHandle`] is the per-thread capability through which every
//! operation runs.  It combines the roles of the paper's `OpStarter`
//! (per-operation instrumentation gate + SMR pin), the thread-local
//! descriptor pointer, and the thread-local `cleanups` / `allocs` lists.
//!
//! The transactional memory accesses `nbtc_load` / `nbtc_cas` /
//! `add_to_read_set` live here as methods on the handle: they need mutable
//! access to per-thread state (speculation-interval flag, recent-load ring),
//! which maps naturally onto `&mut self`.

use crate::atomic128::{pack, unpack};
use crate::casobj::CasWord;
use crate::ctx::{ContentionPolicy, RunConfig, Txn};
use crate::descriptor::{Desc, Status};
use crate::ebr;
use crate::errors::{Abort, AbortReason, TxError, TxResult};
use crate::util::{Backoff, CachePadded};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel counter recorded for loads that returned one of the transaction's
/// own speculative values; such loads never need read-set validation.
const OWN_SPECULATIVE: u64 = u64::MAX;

/// Size of the per-handle ring buffer remembering recent `nbtc_load`s so that
/// `add_to_read_set` can recover the counter observed by the load.  Entries
/// are tagged with the serial of the transaction that recorded them, so the
/// ring never needs to be bulk-cleared at `tx_begin` (384 bytes of stores on
/// the old layout) and stale entries of earlier transactions can never match.
const RECENT_LOADS: usize = 16;

/// How many commit/abort/help events a [`ThreadHandle`] accumulates locally
/// before flushing them into the shared [`TxStats`] counters.  Batching keeps
/// the commit fast paths free of shared-cache-line traffic; exact global
/// counts are available after [`ThreadHandle::flush_stats`] (called
/// automatically when a handle is dropped).
const STATS_FLUSH_EVERY: u64 = 64;

/// [`ContentionPolicy::Adaptive`] thresholds on the per-thread abort-rate
/// EWMA (fixed point, /1024).  At or above `CM_HOT` the thread is losing most
/// conflicts — almost certainly hammering a hot key — and waits by yielding
/// the core.  Between `CM_WARM` and `CM_HOT` it uses the standard exponential
/// ladder; below `CM_WARM` it retries almost immediately.
const CM_HOT: u32 = 512;
const CM_WARM: u32 = 96;

/// Aggregate statistics maintained by a [`TxManager`].
///
/// Every counter lives on its own pair of cache lines so that threads
/// flushing different counters never false-share.  Counters are updated in
/// batches from per-thread tallies (see [`ThreadHandle::flush_stats`]), so a
/// snapshot taken while handles are live may lag by up to
/// `STATS_FLUSH_EVERY` events per handle.
#[derive(Debug, Default)]
pub struct TxStats {
    commits: CachePadded<AtomicU64>,
    aborts: CachePadded<AtomicU64>,
    helps: CachePadded<AtomicU64>,
    fast_commits: CachePadded<AtomicU64>,
    ro_commits: CachePadded<AtomicU64>,
    general_commits: CachePadded<AtomicU64>,
    conflict_aborts: CachePadded<AtomicU64>,
    explicit_aborts: CachePadded<AtomicU64>,
    capacity_aborts: CachePadded<AtomicU64>,
    unwind_aborts: CachePadded<AtomicU64>,
    cm_waits: CachePadded<AtomicU64>,
    cm_priority_skips: CachePadded<AtomicU64>,
    cm_escalations: CachePadded<AtomicU64>,
}

/// A point-in-time copy of a [`TxStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TxStatsSnapshot {
    /// Transactions that committed (via any path).
    pub commits: u64,
    /// Transactions that aborted (for any reason).
    pub aborts: u64,
    /// Times a thread finalized (helped or aborted) another thread's
    /// descriptor.
    pub helps: u64,
    /// Commits that took the single-CAS direct path: exactly one write-set
    /// entry, committed with one plain 128-bit CAS and no descriptor
    /// installation (subset of `commits`).
    pub fast_commits: u64,
    /// Commits of read-only transactions: validated their read set and
    /// committed with zero shared-memory writes (subset of `commits`).
    pub ro_commits: u64,
    /// Commits that took the general M-compare-N-swap path: published their
    /// sets into the descriptor, installed it on every written word, and ran
    /// the helpable status protocol (subset of `commits`; `commits` =
    /// `fast_commits + ro_commits + general_commits`).
    pub general_commits: u64,
    /// Aborts caused by losing a conflict — another transaction's write
    /// invalidated a read, a buffered write lost its word, or a helper
    /// aborted the descriptor (subset of `aborts`).
    pub conflict_aborts: u64,
    /// Aborts requested by the program through
    /// [`Txn::abort`](crate::Txn::abort) with
    /// [`AbortReason::Explicit`], or the
    /// low-level [`ThreadHandle::tx_abort`] (subset of `aborts`).
    pub explicit_aborts: u64,
    /// Aborts because the transaction overflowed the descriptor's read/write
    /// set capacity (subset of `aborts`).
    pub capacity_aborts: u64,
    /// Aborts performed by a [`Txn`] drop guard unwinding out of
    /// a panicking transaction body, or by a [`ThreadHandle`] dropped
    /// mid-transaction (subset of `aborts`).
    pub unwind_aborts: u64,
    /// Contention-manager wait decisions: one per conflict retry paced by
    /// [`ThreadHandle::run_with`], whatever the configured
    /// [`ContentionPolicy`].
    pub cm_waits: u64,
    /// Waits the karma policy collapsed to a bare spin hint because the
    /// transaction's invested attempts earned it priority (subset of
    /// `cm_waits`; always 0 under other policies).
    pub cm_priority_skips: u64,
    /// Waits the adaptive policy escalated straight to a scheduler yield
    /// because the thread's conflict-abort-rate EWMA crossed the hot
    /// threshold (subset of `cm_waits`; always 0 under other policies).
    pub cm_escalations: u64,
}

impl TxStats {
    /// Snapshot of all counters.
    pub fn snapshot(&self) -> TxStatsSnapshot {
        TxStatsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            helps: self.helps.load(Ordering::Relaxed),
            fast_commits: self.fast_commits.load(Ordering::Relaxed),
            ro_commits: self.ro_commits.load(Ordering::Relaxed),
            general_commits: self.general_commits.load(Ordering::Relaxed),
            conflict_aborts: self.conflict_aborts.load(Ordering::Relaxed),
            explicit_aborts: self.explicit_aborts.load(Ordering::Relaxed),
            capacity_aborts: self.capacity_aborts.load(Ordering::Relaxed),
            unwind_aborts: self.unwind_aborts.load(Ordering::Relaxed),
            cm_waits: self.cm_waits.load(Ordering::Relaxed),
            cm_priority_skips: self.cm_priority_skips.load(Ordering::Relaxed),
            cm_escalations: self.cm_escalations.load(Ordering::Relaxed),
        }
    }
}

/// Internal classification of why an abort happened (surfaces in
/// [`TxStats`] as the per-reason abort counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AbortKind {
    /// Lost a conflict (validation failure, stolen word, helper abort).
    Conflict,
    /// The program asked for the abort.
    Explicit,
    /// Descriptor capacity overflow.
    Capacity,
    /// A drop guard aborted on unwind (panic) or handle teardown.
    Unwind,
}

/// Shared transaction-management state (paper `TxManager`).
pub struct TxManager {
    descs: Box<[CachePadded<Desc>]>,
    slot_in_use: Box<[AtomicBool]>,
    collector: Arc<ebr::Collector>,
    epoch_word: CachePadded<CasWord>,
    epoch_validation: AtomicBool,
    fast_paths: AtomicBool,
    stats: TxStats,
}

impl std::fmt::Debug for TxManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxManager")
            .field("max_threads", &self.descs.len())
            .field(
                "epoch_validation",
                &self.epoch_validation.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl TxManager {
    /// Default number of thread slots.
    pub const DEFAULT_MAX_THREADS: usize = 128;

    /// Creates a manager with the default number of thread slots.
    pub fn new() -> Arc<Self> {
        Self::with_max_threads(Self::DEFAULT_MAX_THREADS)
    }

    /// Creates a manager able to serve up to `max_threads` concurrently
    /// registered handles.
    pub fn with_max_threads(max_threads: usize) -> Arc<Self> {
        assert!(
            (1..(1 << 14)).contains(&max_threads),
            "tid must fit in 14 bits"
        );
        let descs = (0..max_threads)
            .map(|tid| CachePadded::new(Desc::new(tid as u64)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let slot_in_use = (0..max_threads)
            .map(|_| AtomicBool::new(false))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arc::new(Self {
            descs,
            slot_in_use,
            collector: ebr::Collector::new(max_threads),
            epoch_word: CachePadded::new(CasWord::new(0)),
            epoch_validation: AtomicBool::new(false),
            // On by default; `MEDLEY_DISABLE_FAST_PATHS=1` forces every
            // transaction through the general descriptor path (debugging and
            // baseline measurement aid, same effect as `set_fast_paths(false)`).
            fast_paths: AtomicBool::new(std::env::var_os("MEDLEY_DISABLE_FAST_PATHS").is_none()),
            stats: TxStats::default(),
        })
    }

    /// Registers the calling thread and returns its handle.
    ///
    /// # Panics
    /// Panics if all thread slots are taken.
    pub fn register(self: &Arc<Self>) -> ThreadHandle {
        for (tid, flag) in self.slot_in_use.iter().enumerate() {
            if flag
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                let participant = self.collector.register();
                let desc_ptr: *const Desc = &*self.descs[tid];
                return ThreadHandle {
                    mgr: Arc::clone(self),
                    tid,
                    desc_ptr,
                    participant,
                    in_tx: false,
                    spec_interval: false,
                    serial: 0,
                    snapshot_epoch: 0,
                    capacity_exceeded: false,
                    doomed: false,
                    fast_ok: true,
                    local_writes: Vec::new(),
                    write_filter: 0,
                    overflow_writes: Vec::new(),
                    local_reads: Vec::new(),
                    recent: [(0, 0, 0, 0); RECENT_LOADS],
                    recent_pos: 0,
                    cleanups: Vec::new(),
                    abort_actions: Vec::new(),
                    allocs: Vec::new(),
                    local_commits: 0,
                    local_aborts: 0,
                    stat_commits: 0,
                    stat_aborts: 0,
                    stat_helps: 0,
                    stat_fast_commits: 0,
                    stat_ro_commits: 0,
                    stat_general_commits: 0,
                    stat_conflict_aborts: 0,
                    stat_explicit_aborts: 0,
                    stat_capacity_aborts: 0,
                    stat_unwind_aborts: 0,
                    stat_cm_waits: 0,
                    stat_cm_priority_skips: 0,
                    stat_cm_escalations: 0,
                    abort_rate: 0,
                    stat_unflushed: 0,
                    last_run_attempts: 0,
                };
            }
        }
        panic!("TxManager: thread slots exhausted");
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &TxStats {
        &self.stats
    }

    /// A point-in-time copy of the aggregate statistics — the one place that
    /// sums the per-thread counter flushes into a coherent snapshot.
    ///
    /// Counters are batched per handle (see [`ThreadHandle::flush_stats`]),
    /// so a snapshot taken while handles are live may lag each handle by up
    /// to a flush batch; counts are exact once the contributing handles have
    /// been dropped (drop flushes) or explicitly flushed.  The commit-path
    /// counters partition `commits`: `commits == fast_commits + ro_commits +
    /// general_commits` holds on every exact snapshot.
    pub fn stats_snapshot(&self) -> TxStatsSnapshot {
        self.stats.snapshot()
    }

    /// Number of thread slots this manager was created with.
    ///
    /// Thread-slot ids handed out by [`TxManager::register`] are always in
    /// `0..max_threads()`, and at most one live [`ThreadHandle`] holds a
    /// given slot at a time.  Per-slot side structures (such as the payload
    /// arenas of `pmem::PersistenceDomain`) size themselves from this value
    /// and index by [`ThreadHandle::tid`]: registration through the manager
    /// is what makes a slot's arena single-writer.
    pub fn max_threads(&self) -> usize {
        self.descs.len()
    }

    /// The epoch-based reclamation domain shared by structures built on this
    /// manager.
    pub fn collector(&self) -> &Arc<ebr::Collector> {
        &self.collector
    }

    /// The persistence-epoch word (txMontage hook).  `pmem`'s epoch system
    /// advances it; when [`TxManager::set_epoch_validation`] is enabled every
    /// transaction reads it at `tx_begin` and validates it at commit, which
    /// guarantees that all operations of a transaction linearize in the same
    /// persistence epoch (paper Sec. 4.4).
    pub fn epoch_word(&self) -> &CasWord {
        &self.epoch_word
    }

    /// Current value of the persistence epoch.
    pub fn current_epoch(&self) -> u64 {
        self.epoch_word.load_parts().0
    }

    /// Advances the persistence epoch by one, returning the new value.
    pub fn advance_epoch(&self) -> u64 {
        loop {
            let (v, _) = self.epoch_word.load_parts();
            if self.epoch_word.cas_value(v, v + 1) {
                return v + 1;
            }
        }
    }

    /// Enables or disables folding the persistence-epoch check into every
    /// transaction's read set.
    pub fn set_epoch_validation(&self, enabled: bool) {
        self.epoch_validation.store(enabled, Ordering::SeqCst);
    }

    /// Whether epoch validation is currently enabled.
    pub fn epoch_validation_enabled(&self) -> bool {
        self.epoch_validation.load(Ordering::SeqCst)
    }

    /// Enables or disables the commit fast paths (single-CAS direct commit
    /// and descriptor-free read-only commit).  Enabled by default; disabling
    /// forces every transaction through the general M-compare-N-swap
    /// descriptor protocol, which the benchmarks use as the "before"
    /// baseline.  The setting is sampled at `tx_begin`, so in-flight
    /// transactions are unaffected.
    pub fn set_fast_paths(&self, enabled: bool) {
        self.fast_paths.store(enabled, Ordering::SeqCst);
    }

    /// Whether the commit fast paths are currently enabled.
    pub fn fast_paths_enabled(&self) -> bool {
        self.fast_paths.load(Ordering::Relaxed)
    }
}

type DropFn = unsafe fn(*mut u8);

unsafe fn drop_raw<T>(ptr: *mut u8) {
    // SAFETY: forwarded from the caller's contract: `ptr` was produced by
    // `Box::<T>::into_raw` in `tnew` and never published.
    drop(unsafe { Box::from_raw(ptr as *mut T) });
}

type Cleanup = Box<dyn FnOnce(&mut ThreadHandle)>;

/// One critical CAS of the open transaction, buffered in plain thread-local
/// memory (the owner-private hot path of the lazy-publication pipeline).
///
/// *Every* critical CAS lands here first — not just the first one, as in the
/// earlier single-buffer design.  Nothing is published while the transaction
/// executes: loads of a buffered word return `new_val` (read-your-own-write),
/// rewrites update `new_val` in place, and other threads see the untouched
/// pre-image.  At `tx_end` the buffer decides the commit path:
///
/// * empty → descriptor-free read-only commit;
/// * one entry whose pre-image subsumes the read set → single plain 128-bit
///   CAS from `(old_val, cnt)` to `(new_val, cnt + 2)`, exactly the
///   transition a non-transactional `nbtc_cas` would make;
/// * otherwise → the entries are published into the descriptor, the
///   descriptor is installed over each recorded pre-image, and the
///   M-compare-N-swap status protocol runs (general path).
#[derive(Debug, Clone, Copy)]
struct LocalWrite {
    addr: *const CasWord,
    old_val: u64,
    cnt: u64,
    new_val: u64,
}

/// Per-thread handle used to execute operations and transactions.
///
/// Not `Send`/`Sync`: each thread registers its own handle with
/// [`TxManager::register`].
pub struct ThreadHandle {
    mgr: Arc<TxManager>,
    tid: usize,
    desc_ptr: *const Desc,
    participant: ebr::Participant,
    in_tx: bool,
    spec_interval: bool,
    serial: u64,
    snapshot_epoch: u64,
    capacity_exceeded: bool,
    /// The transaction already lost a conflict mid-flight (a buffered write
    /// could not be materialized, or a read was observed to be stale); the
    /// commit is guaranteed to fail, but operations keep executing normally
    /// so that glue-code retry loops stay live.
    doomed: bool,
    /// Whether the commit fast paths apply to the open transaction (sampled
    /// from the manager at `tx_begin`).
    fast_ok: bool,
    /// The transaction's write set, buffered in plain thread-local memory.
    /// Addresses are unique (a second CAS on a buffered word rewrites its
    /// entry in place), and nothing is published until `tx_end`.  See
    /// [`LocalWrite`].
    local_writes: Vec<LocalWrite>,
    /// 64-bit Bloom filter over the addresses in `local_writes`: a load
    /// whose address misses the filter provably has no buffered write, so
    /// the read-your-own-write lookup skips the linear scan.  Large
    /// transactions (TPC-C) would otherwise pay O(write-set) per load.
    write_filter: u64,
    /// Local write overlay of a transaction that overflowed the descriptor's
    /// write capacity: `(addr, speculative value)`.  Once `capacity_exceeded`
    /// is set no transactional access touches shared memory — writes land
    /// here and loads consult it first — so the (inevitably failing) body
    /// still executes against a consistent view and every container retry or
    /// helping loop converges instead of livelocking.  Dropped wholesale on
    /// abort.
    overflow_writes: Vec<(usize, u64)>,
    /// The transaction's read set, buffered in plain thread-local memory as
    /// `(addr, value, counter)`.  Only a transaction that publishes its
    /// descriptor (general commit path) spills these into the descriptor's
    /// seqlock-stamped entries — and it does so before `setReady`, which is
    /// the earliest point a helper may validate them.  Read-only and
    /// single-CAS transactions validate this buffer directly and never pay
    /// the per-entry atomic-store protocol.
    local_reads: Vec<(usize, u64, u64)>,
    /// Recent-load ring entries: `(addr, val, cnt, serial)`.  Only entries
    /// tagged with the current transaction's serial are live.
    recent: [(usize, u64, u64, u64); RECENT_LOADS],
    recent_pos: usize,
    cleanups: Vec<Cleanup>,
    abort_actions: Vec<Cleanup>,
    allocs: Vec<(*mut u8, DropFn)>,
    local_commits: u64,
    local_aborts: u64,
    // Per-thread tallies flushed into `TxManager::stats` in batches.
    stat_commits: u64,
    stat_aborts: u64,
    stat_helps: u64,
    stat_fast_commits: u64,
    stat_ro_commits: u64,
    stat_general_commits: u64,
    stat_conflict_aborts: u64,
    stat_explicit_aborts: u64,
    stat_capacity_aborts: u64,
    stat_unwind_aborts: u64,
    stat_cm_waits: u64,
    stat_cm_priority_skips: u64,
    stat_cm_escalations: u64,
    /// Fixed-point (/1024) EWMA of this thread's recent `run_with` attempt
    /// outcomes: 0 = committing first try, 1024 = losing every conflict.
    /// Feeds [`ContentionPolicy::Adaptive`].
    abort_rate: u32,
    stat_unflushed: u64,
    /// Attempt count of the most recently finished `run_with` (1 = committed
    /// first try).  Consumed by [`ThreadHandle::take_last_attempts`] so
    /// service layers can attribute retries to the request that paid them.
    last_run_attempts: u64,
}

/// Which commit path a transaction took (statistics bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CommitKind {
    /// General M-compare-N-swap descriptor commit.
    General,
    /// Single-CAS direct commit (descriptor never installed).
    SingleCas,
    /// Read-only commit (zero shared-memory writes).
    ReadOnly,
}

impl std::fmt::Debug for ThreadHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadHandle")
            .field("tid", &self.tid)
            .field("in_tx", &self.in_tx)
            .field("serial", &self.serial)
            .finish()
    }
}

impl ThreadHandle {
    #[inline]
    fn desc(&self) -> &Desc {
        // SAFETY: `desc_ptr` points into `self.mgr.descs`, which lives as long
        // as the `Arc<TxManager>` this handle holds.
        unsafe { &*self.desc_ptr }
    }

    /// The manager this handle belongs to.
    pub fn manager(&self) -> &Arc<TxManager> {
        &self.mgr
    }

    /// The thread-slot id of this handle.
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Whether a transaction is currently open on this handle.
    #[inline]
    pub fn in_tx(&self) -> bool {
        self.in_tx
    }

    /// The persistence epoch observed at `tx_begin` (meaningful only when
    /// epoch validation is enabled and a transaction is open).
    #[inline]
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot_epoch
    }

    /// `(commits, aborts)` performed through this handle.
    pub fn local_stats(&self) -> (u64, u64) {
        (self.local_commits, self.local_aborts)
    }

    // ------------------------------------------------------------------
    // Operation bracket (paper `OpStarter`)
    // ------------------------------------------------------------------

    /// Runs one data-structure operation: pins the SMR epoch for its duration
    /// and resets the speculation interval, exactly as the paper's
    /// `OpStarter` constructor does at the top of every operation.
    #[inline]
    pub fn with_op<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        // Same unwind-safe bracket as the `Ctx::with_op` impls: the guard
        // owns the handle borrow and the body runs on a reborrow through
        // it, so a panicking body cannot leak the EBR pin (a leaked pin
        // stalls epoch reclamation process-wide).
        struct Guard<'a>(&'a mut ThreadHandle);
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                self.0.spec_interval = false;
                self.0.participant.unpin();
            }
        }
        self.participant.pin();
        self.spec_interval = false;
        let guard = Guard(self);
        f(&mut *guard.0)
    }

    /// Pins the SMR epoch for the duration of one operation (the
    /// pin half of [`ThreadHandle::with_op`]; used by the execution
    /// contexts, whose `with_op` cannot borrow the handle and itself at
    /// once).
    #[inline]
    pub(crate) fn pin_op(&mut self) {
        self.participant.pin();
    }

    /// Unpins the SMR epoch (the unpin half of [`ThreadHandle::with_op`]).
    #[inline]
    pub(crate) fn unpin_op(&mut self) {
        self.participant.unpin();
    }

    /// Resets the per-operation speculation-interval flag (the paper's
    /// `OpStarter` reset).
    #[inline]
    pub(crate) fn clear_spec_interval(&mut self) {
        self.spec_interval = false;
    }

    /// Current SMR pin-nesting depth of this handle (diagnostics/tests).
    #[cfg(test)]
    pub(crate) fn pin_depth(&self) -> usize {
        self.participant.pin_depth()
    }

    // ------------------------------------------------------------------
    // Transaction control (paper `txBegin` / `txEnd` / `txAbort`)
    // ------------------------------------------------------------------

    /// Starts a transaction.
    ///
    /// # Panics
    /// Panics if a transaction is already open on this handle.
    pub fn tx_begin(&mut self) {
        assert!(!self.in_tx, "nested transactions are not supported");
        self.desc().begin();
        self.serial = self.desc().serial();
        self.in_tx = true;
        self.spec_interval = false;
        self.capacity_exceeded = false;
        self.doomed = false;
        self.fast_ok = self.mgr.fast_paths_enabled();
        self.local_writes.clear();
        self.write_filter = 0;
        self.overflow_writes.clear();
        self.local_reads.clear();
        // The recent-load ring needs no clearing: entries are tagged with the
        // serial that recorded them, and the serial just advanced.
        debug_assert!(self.cleanups.is_empty());
        debug_assert!(self.allocs.is_empty());
        self.participant.pin();
        if self.mgr.epoch_validation_enabled() {
            let (epoch, cnt) = self.mgr.epoch_word.load_parts();
            self.snapshot_epoch = epoch;
            // Folding the epoch check into the MCNS read set is all txMontage
            // needs for failure atomicity (paper Sec. 4.4).
            let addr = &*self.mgr.epoch_word as *const CasWord as usize;
            self.local_reads.push((addr, epoch, cnt));
        }
    }

    /// Attempts to commit the open transaction.
    ///
    /// On success the speculative writes of all constituent operations become
    /// visible atomically and the registered cleanup closures run.  On
    /// failure everything is rolled back.
    ///
    /// Three commit paths exist, tried cheapest-first.  The whole execution
    /// phase ran against private thread-local buffers (`local_reads` /
    /// `local_writes`); nothing has been published yet, so `tx_end` owns the
    /// entire publication decision:
    ///
    /// 1. **Read-only** — the write buffer is empty: the recorded
    ///    `(addr, value, counter)` reads are re-validated and the transaction
    ///    commits with *zero* shared-memory writes; the `tid|serial|status`
    ///    word is never touched and no helper can ever observe the
    ///    transaction.
    /// 2. **Single-CAS direct** — the write buffer holds exactly one entry
    ///    whose pre-image subsumes the read set: the write commits with one
    ///    plain 128-bit CAS bumping the even counter by 2, exactly like a
    ///    non-transactional update.  Contention (the word changed, or a
    ///    descriptor of another transaction is installed and survives
    ///    helping) falls back to a conflict abort, and
    ///    [`ThreadHandle::run`] retries as needed.
    /// 3. **General** — the buffered sets are published into the
    ///    descriptor's seqlock-stamped entries, the descriptor is installed
    ///    over each write's recorded pre-image, and the M-compare-N-swap
    ///    status protocol runs (`setReady` → validate → commit/abort →
    ///    uninstall), helpable by any thread from the first install onward.
    pub fn tx_end(&mut self) -> TxResult<()> {
        assert!(self.in_tx, "tx_end without tx_begin");
        if self.capacity_exceeded {
            self.abort_with(AbortKind::Capacity);
            return Err(TxError::CapacityExceeded);
        }
        if self.doomed {
            self.abort_with(AbortKind::Conflict);
            return Err(TxError::Conflict);
        }
        if self.fast_ok {
            // Fast path 1: descriptor-free read-only commit.
            if self.local_writes.is_empty() {
                if self.validate_local_reads() {
                    self.commit_tail(CommitKind::ReadOnly);
                    return Ok(());
                }
                self.abort_with(AbortKind::Conflict);
                return Err(TxError::Conflict);
            }
            // Fast path 2: single-CAS direct commit of the buffered write.
            //
            // Serializability constraint: the direct commit orders the
            // transaction at its commit CAS, but nothing pins the read set
            // between validation and that CAS (the buffered write is
            // invisible, so concurrent symmetric transactions could all
            // validate and then all commit — write skew).  The general path
            // closes exactly this window by installing the descriptor on
            // every write word *before* validating.  The direct commit is
            // therefore taken only when the commit CAS itself subsumes read
            // validation: the read set is empty, or every read is of the
            // written word's own pre-image (in which case the ABA-safe
            // `(value, counter)` check of the commit CAS *is* the
            // validation, atomically at the linearization point).  Note the
            // txMontage epoch read registered at `tx_begin` counts as a
            // foreign read, so epoch-validated transactions always publish a
            // descriptor.
            if self.local_writes.len() == 1 {
                let pw = self.local_writes[0];
                let reads_subsumed = self.local_reads.iter().all(|&(addr, val, cnt)| {
                    addr == pw.addr as usize && val == pw.old_val && cnt == pw.cnt
                });
                if reads_subsumed {
                    // SAFETY: the word was passed to `nbtc_cas` during this
                    // transaction and is protected by the EBR pin held since
                    // `tx_begin`.
                    let obj = unsafe { &*pw.addr };
                    loop {
                        let raw = obj.load_raw();
                        let (val, cnt) = unpack(raw);
                        if CasWord::counter_is_descriptor(cnt) {
                            // Another transaction owns the word; finalize it
                            // and re-examine (same non-blocking helping
                            // discipline as `nbtc_cas`).
                            // SAFETY: see `nbtc_load`.
                            unsafe { (*(val as *const Desc)).try_finalize(obj, raw) };
                            self.stat_helps += 1;
                            continue;
                        }
                        if val != pw.old_val || cnt != pw.cnt {
                            self.abort_with(AbortKind::Conflict);
                            return Err(TxError::Conflict);
                        }
                        if obj.cas_value_counted(pw.old_val, pw.cnt, pw.new_val) {
                            self.commit_tail(CommitKind::SingleCas);
                            return Ok(());
                        }
                        // The word changed between load and CAS; re-examine.
                    }
                }
            }
        }
        self.commit_general()
    }

    /// The general commit path: publish, install, expose, resolve (see the
    /// `descriptor` module docs for the lifecycle).  This is the only place
    /// in the runtime where the descriptor becomes visible to other threads.
    fn commit_general(&mut self) -> TxResult<()> {
        // Publish phase: copy the buffered sets into the descriptor's
        // stamped entries.  Helpers may need them the moment the first
        // install CAS lands.
        if !self.publish_sets() {
            self.capacity_exceeded = true;
            self.abort_with(AbortKind::Capacity);
            return Err(TxError::CapacityExceeded);
        }
        // Install phase: CAS the descriptor over each recorded pre-image.
        // Addresses in `local_writes` are unique, so our own descriptor can
        // never be encountered here; a foreign descriptor is finalized and
        // the word re-examined (non-blocking helping), and a changed
        // pre-image is a lost conflict — installed prefixes are rolled back
        // by the uninstall inside `abort_with`.
        let me = self.desc().as_payload();
        for i in 0..self.local_writes.len() {
            let w = self.local_writes[i];
            // SAFETY: the word is protected by the EBR pin held since
            // `tx_begin`.
            let obj = unsafe { &*w.addr };
            let installed = pack(me, w.cnt.wrapping_add(1));
            loop {
                let raw = obj.load_raw();
                let (val, cnt) = unpack(raw);
                if CasWord::counter_is_descriptor(cnt) {
                    debug_assert_ne!(val, me, "own descriptor on a not-yet-installed word");
                    // SAFETY: see `nbtc_load`.
                    unsafe { (*(val as *const Desc)).try_finalize(obj, raw) };
                    self.stat_helps += 1;
                    self.note_stat_event();
                    continue;
                }
                if val != w.old_val || cnt != w.cnt {
                    self.abort_with(AbortKind::Conflict);
                    return Err(TxError::Conflict);
                }
                if obj.raw().cas(raw, installed) {
                    break;
                }
                // The word changed between load and CAS; re-examine.
            }
        }
        // Expose phase: from here on any thread can help (or abort) us.
        let desc = self.desc();
        if !desc.set_ready() {
            // Another thread aborted us during the install window.
            self.abort_with(AbortKind::Conflict);
            return Err(TxError::Conflict);
        }
        let outcome = desc.finalize_own(self.serial);
        match outcome {
            Status::Committed => {
                desc.uninstall(self.serial, Status::Committed);
                self.commit_tail(CommitKind::General);
                Ok(())
            }
            _ => {
                self.abort_with(AbortKind::Conflict);
                Err(TxError::Conflict)
            }
        }
    }

    /// Publishes the buffered read and write sets into the descriptor's
    /// stamped entries (lazy publication: this runs once per general-path
    /// commit, never during execution).  Returns `false` on capacity
    /// overflow.
    fn publish_sets(&mut self) -> bool {
        let serial = self.serial;
        let desc = self.desc();
        for &(addr, val, cnt) in &self.local_reads {
            if !desc.push_read(serial, addr as *const CasWord, val, cnt) {
                return false;
            }
        }
        for w in &self.local_writes {
            if !desc.push_write(serial, w.addr, w.old_val, w.cnt, w.new_val) {
                return false;
            }
        }
        true
    }

    /// Common post-commit bookkeeping: releases transactional state, runs the
    /// registered cleanup closures, unpins, and tallies statistics.
    fn commit_tail(&mut self, kind: CommitKind) {
        self.in_tx = false;
        self.spec_interval = false;
        self.local_writes.clear();
        // Ownership of tnew-ed blocks passes to the structures.
        self.allocs.clear();
        self.abort_actions.clear();
        let cleanups = std::mem::take(&mut self.cleanups);
        for c in cleanups {
            c(self);
        }
        self.participant.unpin();
        self.local_commits += 1;
        self.stat_commits += 1;
        match kind {
            CommitKind::SingleCas => self.stat_fast_commits += 1,
            CommitKind::ReadOnly => self.stat_ro_commits += 1,
            CommitKind::General => self.stat_general_commits += 1,
        }
        self.note_stat_event();
    }

    /// Flushes the per-thread statistic tallies into the shared
    /// [`TxStats`] counters.  Called automatically every
    /// `STATS_FLUSH_EVERY` events and when the handle is dropped; call it
    /// explicitly before reading [`TxManager::stats`] if exact counts are
    /// needed while this handle is still live.
    pub fn flush_stats(&mut self) {
        fn drain(local: &mut u64, shared: &AtomicU64) {
            if *local > 0 {
                shared.fetch_add(*local, Ordering::Relaxed);
                *local = 0;
            }
        }
        let stats = &self.mgr.stats;
        drain(&mut self.stat_commits, &stats.commits);
        drain(&mut self.stat_aborts, &stats.aborts);
        drain(&mut self.stat_helps, &stats.helps);
        drain(&mut self.stat_fast_commits, &stats.fast_commits);
        drain(&mut self.stat_ro_commits, &stats.ro_commits);
        drain(&mut self.stat_general_commits, &stats.general_commits);
        drain(&mut self.stat_conflict_aborts, &stats.conflict_aborts);
        drain(&mut self.stat_explicit_aborts, &stats.explicit_aborts);
        drain(&mut self.stat_capacity_aborts, &stats.capacity_aborts);
        drain(&mut self.stat_unwind_aborts, &stats.unwind_aborts);
        drain(&mut self.stat_cm_waits, &stats.cm_waits);
        drain(&mut self.stat_cm_priority_skips, &stats.cm_priority_skips);
        drain(&mut self.stat_cm_escalations, &stats.cm_escalations);
        self.stat_unflushed = 0;
    }

    #[inline]
    fn note_stat_event(&mut self) {
        self.stat_unflushed += 1;
        if self.stat_unflushed >= STATS_FLUSH_EVERY {
            self.flush_stats();
        }
    }

    /// Explicitly aborts the open transaction, rolling back all speculative
    /// state.  Returns the error value to propagate (`TxError::Explicit`),
    /// so the idiomatic call site is `return Err(handle.tx_abort());`.
    pub fn tx_abort(&mut self) -> TxError {
        assert!(self.in_tx, "tx_abort without tx_begin");
        self.abort_with(AbortKind::Explicit);
        TxError::Explicit
    }

    /// Validates the read set of the open transaction (paper
    /// `validateReads`): optional opacity check for transactions whose glue
    /// code cannot tolerate inconsistent reads.  Also reports `false` once
    /// the transaction is doomed (a buffered write lost its word, or a read
    /// was observed stale during registration): the commit cannot succeed.
    pub fn validate_reads(&self) -> bool {
        if !self.in_tx {
            return true;
        }
        if self.doomed {
            return false;
        }
        self.validate_local_reads()
    }

    /// Opens a transaction and returns its [`Txn`] guard (typestate
    /// `txBegin`).
    ///
    /// While the guard is alive the handle is mutably borrowed, so a second
    /// `begin` (or any standalone [`NonTx`](crate::NonTx) access) on the same
    /// handle is a *compile-time* error.  If the guard is dropped without
    /// [`Txn::commit`] — including by a panic unwinding through the
    /// transaction body — the transaction is aborted and the handle stays
    /// reusable.
    ///
    /// Most code should use [`ThreadHandle::run`], which adds the retry loop;
    /// `begin` is for callers that need manual commit control.
    #[inline]
    pub fn begin(&mut self) -> Txn<'_> {
        self.tx_begin();
        Txn::new(self)
    }

    /// Runs `body` as a transaction under the default [`RunConfig`]:
    /// conflicts retry forever with exponential backoff, explicit aborts are
    /// returned as [`TxError::Explicit`], and capacity overflows as
    /// [`TxError::CapacityExceeded`].
    ///
    /// The body receives a [`Txn`] execution context; container operations
    /// called through it compose into one atomic transaction.  The guard
    /// cannot escape the closure (its lifetime is higher-ranked), and a panic
    /// inside the body aborts the transaction on unwind instead of leaking an
    /// installed descriptor.
    pub fn run<R>(&mut self, body: impl FnMut(&mut Txn<'_>) -> Result<R, Abort>) -> TxResult<R> {
        self.run_with(&RunConfig::default(), body)
    }

    /// Runs `body` as a transaction under an explicit retry policy.
    ///
    /// ```
    /// use medley::{Ctx, RunConfig, TxManager};
    ///
    /// let mgr = TxManager::new();
    /// let mut h = mgr.register();
    /// let w = medley::CasWord::new(5);
    /// let cfg = RunConfig::new().max_retries(16).backoff_limit(4);
    /// let doubled = h.run_with(&cfg, |t| {
    ///     let v = t.nbtc_load(&w);
    ///     t.nbtc_cas(&w, v, v * 2, true, true);
    ///     Ok(v * 2)
    /// });
    /// assert_eq!(doubled, Ok(10));
    /// ```
    #[inline]
    pub fn run_with<R>(
        &mut self,
        cfg: &RunConfig,
        mut body: impl FnMut(&mut Txn<'_>) -> Result<R, Abort>,
    ) -> TxResult<R> {
        let mut backoff = Backoff::with_limit(cfg.backoff_limit_value());
        let policy = cfg.contention_policy_value();
        let mut attempts: u64 = 0;
        loop {
            attempts += 1;
            let mut txn = self.begin();
            match body(&mut txn) {
                Ok(value) => {
                    if !txn.is_open() {
                        // The body aborted explicitly but still returned Ok;
                        // treat the produced value as the result.
                        drop(txn);
                        self.last_run_attempts = attempts;
                        return Ok(value);
                    }
                    match txn.commit() {
                        Ok(()) => {
                            self.record_cm_outcome(false);
                            self.last_run_attempts = attempts;
                            return Ok(value);
                        }
                        Err(TxError::Conflict) => {}
                        Err(e) => {
                            self.last_run_attempts = attempts;
                            return Err(e);
                        }
                    }
                }
                Err(abort) => {
                    // `Abort` normally proves the body already rolled the
                    // transaction back (the token only comes from
                    // `Txn::abort`).  A stale token smuggled in from an
                    // earlier attempt can arrive with the transaction still
                    // open, though — close it under the token's reason so
                    // the statistics classify it correctly rather than as an
                    // unwind abort of the guard drop.
                    if txn.is_open() {
                        let _ = txn.abort(abort.reason());
                    }
                    drop(txn);
                    match abort.reason() {
                        AbortReason::Explicit => {
                            self.last_run_attempts = attempts;
                            return Err(TxError::Explicit);
                        }
                        AbortReason::Conflict => {}
                    }
                }
            }
            // Lost a conflict: feed the contention signal, then wait as the
            // configured contention manager dictates.
            self.record_cm_outcome(true);
            if let Some(max) = cfg.max_retries_value() {
                if attempts > max {
                    self.last_run_attempts = attempts;
                    return Err(TxError::RetriesExhausted);
                }
            }
            self.cm_wait(policy, &mut backoff, attempts);
        }
    }

    /// Updates the per-thread conflict-abort-rate EWMA (fixed point /1024,
    /// smoothing factor 1/16) with one `run_with` attempt outcome.
    #[inline]
    fn record_cm_outcome(&mut self, aborted: bool) {
        let target: u32 = if aborted { 1024 } else { 0 };
        self.abort_rate = (self.abort_rate * 15 + target) / 16;
    }

    /// The per-thread conflict-abort-rate EWMA feeding
    /// [`ContentionPolicy::Adaptive`]: 0.0 means every recent transaction
    /// committed on its first attempt, 1.0 means every recent attempt lost a
    /// conflict.  Hot keys surface here without the runtime knowing key
    /// identity — a thread hammering a contended word is exactly a thread
    /// whose abort rate pins high.
    pub fn contention_ewma(&self) -> f64 {
        self.abort_rate as f64 / 1024.0
    }

    /// Returns the attempt count of the most recent [`run`](Self::run) /
    /// [`run_with`](Self::run_with) call and resets it to zero — a committed
    /// first try reads 1, N−1 conflict retries read N.  Point operations
    /// that never enter `run_with` leave it at 0, so a service layer can
    /// call this after *any* command and charge the retries (attempts beyond
    /// the first) to the request that incurred them without threading
    /// counters through every execution path.
    #[inline]
    pub fn take_last_attempts(&mut self) -> u64 {
        std::mem::take(&mut self.last_run_attempts)
    }

    /// One contention-manager wait between conflict retries.  `attempts`
    /// counts attempts already spent on this transaction (work invested).
    fn cm_wait(&mut self, policy: ContentionPolicy, backoff: &mut Backoff, attempts: u64) {
        self.stat_cm_waits += 1;
        match policy {
            ContentionPolicy::Backoff => backoff.backoff(),
            ContentionPolicy::Karma => {
                // Seniority discount: the exponent the default ladder would
                // have reached is reduced by log2(attempts), so the longer a
                // transaction has fought the shorter it waits.
                let seniority = 63 - (attempts | 1).leading_zeros();
                if backoff.backoff_discounted(seniority) {
                    self.stat_cm_priority_skips += 1;
                }
            }
            ContentionPolicy::Adaptive => {
                let rate = self.abort_rate;
                if rate >= CM_HOT {
                    // Hot-key regime: spinning only reheats the word; hand
                    // the core to whoever is winning.
                    self.stat_cm_escalations += 1;
                    std::thread::yield_now();
                } else if rate >= CM_WARM {
                    backoff.backoff();
                } else {
                    // Mostly winning: any wait is pure added latency.
                    std::hint::spin_loop();
                }
            }
        }
        self.note_stat_event();
    }

    /// Aborts the open transaction, recording `kind` in the per-reason abort
    /// statistics.
    #[inline]
    pub(crate) fn abort_with(&mut self, kind: AbortKind) {
        match kind {
            AbortKind::Conflict => self.stat_conflict_aborts += 1,
            AbortKind::Explicit => self.stat_explicit_aborts += 1,
            AbortKind::Capacity => self.stat_capacity_aborts += 1,
            AbortKind::Unwind => self.stat_unwind_aborts += 1,
        }
        // Buffered writes that were never published: dropping them is the
        // rollback (any that *were* installed are rolled back by the
        // uninstall below), and the capacity-overflow overlay never touched
        // shared memory.
        self.local_writes.clear();
        self.overflow_writes.clear();
        self.doomed = false;
        let desc = self.desc();
        let st = desc.abort_own(self.serial);
        let outcome = if st == Status::Committed {
            Status::Committed
        } else {
            Status::Aborted
        };
        desc.uninstall(self.serial, outcome);
        // Undo tnew allocations: they were never published (speculative
        // installs have just been rolled back), so immediate free is safe.
        for (ptr, drop_fn) in std::mem::take(&mut self.allocs) {
            // SAFETY: allocated by `tnew` on this thread and never handed to
            // any other thread.
            unsafe { drop_fn(ptr) };
        }
        self.cleanups.clear();
        self.in_tx = false;
        self.spec_interval = false;
        let abort_actions = std::mem::take(&mut self.abort_actions);
        for a in abort_actions {
            a(self);
        }
        self.participant.unpin();
        self.local_aborts += 1;
        self.stat_aborts += 1;
        self.note_stat_event();
    }

    // ------------------------------------------------------------------
    // Composable support (paper `Composable` base class)
    // ------------------------------------------------------------------

    /// Registers a read for commit-time validation.  `val` must be the value
    /// returned by a preceding [`ThreadHandle::nbtc_load`] of `obj` (the
    /// linearizing load of a read-only operation).
    ///
    /// ## The `RECENT_LOADS` ring and its invariant
    ///
    /// The counter observed by the linearizing load is recovered from a ring
    /// remembering the last `RECENT_LOADS` (16) transactional loads.  The ring
    /// is exact as long as no more than `RECENT_LOADS` loads separate the
    /// linearizing load from its registration — true for every structure in
    /// `nbds`, which registers immediately after its traversal (and, since
    /// the counted-read API, without consulting the ring at all).  When the
    /// ring *has* wrapped, registration degrades explicitly rather than
    /// silently:
    ///
    /// * if the word still holds `val` (and no descriptor), the read is
    ///   conservatively re-timestamped with the counter observed **now** —
    ///   sound, because a read-only operation returning `val` may linearize
    ///   at any point inside the transaction where `val` is current;
    /// * otherwise the value is gone, the transaction can never validate,
    ///   and it is marked *doomed* on the spot: `tx_end` fails with
    ///   [`TxError::Conflict`] without doing any commit work, and
    ///   [`ThreadHandle::validate_reads`] reports `false` immediately.
    ///
    /// Structures that track the observed counter themselves should prefer
    /// [`ThreadHandle::nbtc_load_counted`] +
    /// [`ThreadHandle::add_read_with_counter`], which bypass the ring
    /// entirely.
    #[inline]
    pub fn add_to_read_set(&mut self, obj: &CasWord, val: u64) {
        if !self.in_tx {
            return;
        }
        let addr = obj as *const CasWord as usize;
        let mut cnt = None;
        for i in 0..RECENT_LOADS {
            let (a, v, c, s) = self.recent[(self.recent_pos + RECENT_LOADS - 1 - i) % RECENT_LOADS];
            if s == self.serial && a == addr && v == val {
                cnt = Some(c);
                break;
            }
        }
        let cnt = match cnt {
            Some(c) => c,
            None => {
                // Ring overflow: fall back to re-reading (see the doc
                // comment above for why each arm is sound).
                let (v, c) = obj.load_parts();
                if v == val && !CasWord::counter_is_descriptor(c) {
                    c
                } else {
                    self.doomed = true;
                    return;
                }
            }
        };
        self.add_read_with_counter(obj, val, cnt);
    }

    /// Registers a read whose observed counter the caller tracked itself
    /// (returned by [`ThreadHandle::nbtc_load_counted`]).  Skips the
    /// `RECENT_LOADS` ring search of [`ThreadHandle::add_to_read_set`], and
    /// is immune to its overflow fallback; this is the preferred way for a
    /// data structure to register the linearizing load of a read-only
    /// operation.
    #[inline]
    pub fn add_read_with_counter(&mut self, obj: &CasWord, val: u64, cnt: u64) {
        if !self.in_tx || cnt == OWN_SPECULATIVE {
            // Reading one's own speculative write needs no validation.
            return;
        }
        if self.local_reads.len() >= crate::descriptor::MAX_ENTRIES {
            self.capacity_exceeded = true;
            return;
        }
        self.local_reads
            .push((obj as *const CasWord as usize, val, cnt));
    }

    /// Validates the locally buffered read set against current memory.  Each
    /// entry must still hold the recorded `(value, counter)` pair.  Used by
    /// the descriptor-free commit paths and the public opacity check; with
    /// lazy publication this runs strictly before anything is installed, so
    /// — unlike [`Desc::validate_reads`] — it never needs the own-descriptor
    /// tolerance (buffered writes leave memory untouched, so a read of a
    /// word the transaction later wrote still compares equal).
    fn validate_local_reads(&self) -> bool {
        for &(addr, val, cnt) in &self.local_reads {
            // SAFETY: the word is protected by the EBR pin held since
            // tx_begin (same argument as `Desc::validate_reads`).
            let obj = unsafe { &*(addr as *const CasWord) };
            if obj.load_parts() != (val, cnt) {
                return false;
            }
        }
        true
    }

    /// Registers post-critical ("cleanup") work to run after the transaction
    /// commits; outside a transaction the closure runs immediately.
    pub fn add_cleanup(&mut self, f: impl FnOnce(&mut ThreadHandle) + 'static) {
        if self.in_tx {
            self.cleanups.push(Box::new(f));
        } else {
            f(self);
        }
    }

    /// Registers compensation work that runs only if the transaction aborts
    /// (the complement of [`ThreadHandle::add_cleanup`]).  Outside a
    /// transaction the closure is dropped without running, since a
    /// non-transactional operation cannot abort.
    ///
    /// txMontage uses this to release payload records allocated by an
    /// operation whose enclosing transaction rolls back.
    pub fn add_abort_action(&mut self, f: impl FnOnce(&mut ThreadHandle) + 'static) {
        if self.in_tx {
            self.abort_actions.push(Box::new(f));
        }
    }

    /// Allocates a block whose ownership is tied to the transaction: if the
    /// transaction aborts, the block is freed automatically (paper `tNew`).
    #[inline]
    pub fn tnew<T>(&mut self, value: T) -> *mut T {
        let ptr = Box::into_raw(Box::new(value));
        if self.in_tx {
            self.allocs.push((ptr as *mut u8, drop_raw::<T>));
        }
        ptr
    }

    /// Frees a block previously produced by [`ThreadHandle::tnew`] that was
    /// never published (paper `tDelete`).
    ///
    /// # Safety
    /// `ptr` must have been returned by `tnew::<T>` on this handle and must
    /// not be reachable from any shared structure.
    pub unsafe fn tdelete<T>(&mut self, ptr: *mut T) {
        if self.in_tx {
            if let Some(pos) = self.allocs.iter().position(|(p, _)| *p == ptr as *mut u8) {
                self.allocs.swap_remove(pos);
            }
        }
        // SAFETY: forwarded from the caller's contract.
        drop(unsafe { Box::from_raw(ptr) });
    }

    /// Retires a node through epoch-based reclamation (paper `tRetire`).
    /// Inside a transaction the retirement is deferred until commit; on abort
    /// it simply does not happen (the node was never unlinked).
    ///
    /// # Safety
    /// `ptr` must have been allocated via `Box` (directly or through `tnew`)
    /// and must be unlinked from the structure by the time the retirement
    /// takes effect, with no other thread retiring it as well.
    pub unsafe fn tretire<T: Send + 'static>(&mut self, ptr: *mut T) {
        if self.in_tx {
            let addr = ptr as usize;
            self.add_cleanup(move |h| {
                // SAFETY: forwarded from the caller's contract on `tretire`.
                unsafe { h.participant.retire_raw(addr as *mut T) };
            });
        } else {
            // SAFETY: forwarded from the caller's contract.
            unsafe { self.participant.retire_raw(ptr) };
        }
    }

    /// Immediate retirement regardless of transaction state (used by cleanup
    /// closures themselves).
    ///
    /// # Safety
    /// Same contract as [`ThreadHandle::tretire`].
    pub unsafe fn retire_now<T: Send + 'static>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.participant.retire_raw(ptr) };
    }

    // ------------------------------------------------------------------
    // Transactional memory accesses (paper `nbtcLoad` / `nbtcCAS`)
    // ------------------------------------------------------------------

    #[inline]
    fn record_recent(&mut self, addr: usize, val: u64, cnt: u64) {
        self.recent[self.recent_pos % RECENT_LOADS] = (addr, val, cnt, self.serial);
        self.recent_pos = self.recent_pos.wrapping_add(1);
    }

    /// The Bloom-filter bit for a word address (Fibonacci hash of the
    /// pointer, top 6 bits select one of 64 positions).
    #[inline]
    fn filter_bit(obj: &CasWord) -> u64 {
        let h = (obj as *const CasWord as usize as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        1u64 << (h >> 58)
    }

    /// The transaction's buffered write to `obj`, if any (addresses in
    /// `local_writes` are unique).  The Bloom filter screens out the common
    /// case — a load of a word this transaction never wrote — in O(1).
    #[inline]
    fn local_write_index(&self, obj: &CasWord) -> Option<usize> {
        if self.write_filter & Self::filter_bit(obj) == 0 {
            return None;
        }
        self.local_writes
            .iter()
            .position(|w| std::ptr::eq(w.addr, obj as *const CasWord))
    }

    /// Transactional load of a [`CasWord`].
    ///
    /// Outside a transaction this behaves like an ordinary atomic load except
    /// that it finalizes any descriptor it encounters (so non-transactional
    /// operations are never blocked by a stalled transaction).  Inside a
    /// transaction it additionally returns the transaction's own buffered
    /// speculative value when one exists and remembers the observed counter
    /// for [`ThreadHandle::add_to_read_set`].
    #[inline]
    pub fn nbtc_load(&mut self, obj: &CasWord) -> u64 {
        self.nbtc_load_counted(obj).0
    }

    /// Like [`ThreadHandle::nbtc_load`], but also returns the counter token
    /// observed by the load, for registration via
    /// [`ThreadHandle::add_read_with_counter`].
    ///
    /// The token is opaque: when the load returned one of the transaction's
    /// own speculative values it is a sentinel that makes the registration a
    /// no-op (reading your own write needs no validation), otherwise it is
    /// the word's version counter.
    #[inline]
    pub fn nbtc_load_counted(&mut self, obj: &CasWord) -> (u64, u64) {
        if self.in_tx {
            self.tx_load_counted(obj)
        } else {
            self.untracked_load_counted(obj)
        }
    }

    /// The standalone (non-transactional) load: an ordinary atomic load that
    /// finalizes any encountered descriptor.  This is the *whole*
    /// instrumentation of a standalone operation — no `in_tx` branch, no
    /// speculative-value lookup, no read bookkeeping — and it is what
    /// [`NonTx`](crate::NonTx) monomorphizes container operations down to.
    #[inline]
    pub(crate) fn untracked_load_counted(&mut self, obj: &CasWord) -> (u64, u64) {
        loop {
            let raw = obj.load_raw();
            let (val, cnt) = unpack(raw);
            if CasWord::counter_is_descriptor(cnt) {
                debug_assert!(
                    val != 0 && (val as usize).is_multiple_of(std::mem::align_of::<Desc>()),
                    "odd-counter word holds non-descriptor payload {val:#x} (cnt {cnt:#x})"
                );
                // SAFETY: descriptors live inside their TxManager, which is
                // kept alive by every structure and handle that can reach
                // this word.
                unsafe { (*(val as *const Desc)).try_finalize(obj, raw) };
                self.stat_helps += 1;
                self.note_stat_event();
                continue;
            }
            return (val, cnt);
        }
    }

    /// The transactional load (used by [`Txn`](crate::Txn)): additionally
    /// returns the transaction's own buffered value when one exists
    /// (read-your-own-write visibility over the thread-local write buffer)
    /// and remembers the observed counter for
    /// [`ThreadHandle::add_to_read_set`].
    #[inline]
    pub(crate) fn tx_load_counted(&mut self, obj: &CasWord) -> (u64, u64) {
        if self.capacity_exceeded {
            let addr = obj as *const CasWord as usize;
            if let Some(&(_, v)) = self.overflow_writes.iter().rev().find(|(a, _)| *a == addr) {
                self.spec_interval = true;
                self.record_recent(addr, v, OWN_SPECULATIVE);
                return (v, OWN_SPECULATIVE);
            }
        }
        if let Some(i) = self.local_write_index(obj) {
            // Our own buffered write: the speculation interval of the
            // current operation starts here, exactly as when the paper's
            // protocol observes its own installed descriptor.
            self.spec_interval = true;
            let v = self.local_writes[i].new_val;
            let addr = obj as *const CasWord as usize;
            self.record_recent(addr, v, OWN_SPECULATIVE);
            return (v, OWN_SPECULATIVE);
        }
        loop {
            let raw = obj.load_raw();
            let (val, cnt) = unpack(raw);
            if CasWord::counter_is_descriptor(cnt) {
                debug_assert!(
                    val != 0 && (val as usize).is_multiple_of(std::mem::align_of::<Desc>()),
                    "odd-counter word holds non-descriptor payload {val:#x} (cnt {cnt:#x})"
                );
                let desc_ptr = val as *const Desc;
                // Lazy publication: our own descriptor is only ever installed
                // inside `tx_end`, after the execution phase, so any
                // descriptor encountered here is foreign.
                debug_assert!(
                    !std::ptr::eq(desc_ptr, self.desc_ptr),
                    "own descriptor installed during the execution phase"
                );
                // SAFETY: as in `untracked_load_counted`.
                unsafe { (*desc_ptr).try_finalize(obj, raw) };
                self.stat_helps += 1;
                self.note_stat_event();
                continue;
            }
            let addr = obj as *const CasWord as usize;
            self.record_recent(addr, val, cnt);
            return (val, cnt);
        }
    }

    /// Transactional CAS on a [`CasWord`] (paper `nbtcCAS`).
    ///
    /// `lin_pt` / `pub_pt` declare whether this CAS, if successful, is the
    /// linearization and/or publication point of the current operation.  A
    /// critical CAS (one inside the operation's speculation interval) is
    /// executed speculatively: *every* critical CAS is buffered in the
    /// thread-local write set (see `LocalWrite` in this module) and becomes
    /// visible to other threads only at commit.  A transaction whose single
    /// critical CAS stays its only write — a lone `insert`/`remove`/`enqueue`
    /// inside [`ThreadHandle::run`] — never publishes a descriptor at all and
    /// commits with one plain CAS; multi-write transactions publish and
    /// install the descriptor inside `tx_end` (lazy publication).
    #[inline]
    pub fn nbtc_cas(
        &mut self,
        obj: &CasWord,
        expected: u64,
        desired: u64,
        lin_pt: bool,
        pub_pt: bool,
    ) -> bool {
        if !self.in_tx {
            self.untracked_cas(obj, expected, desired)
        } else {
            self.tx_cas(obj, expected, desired, lin_pt, pub_pt)
        }
    }

    /// The standalone (non-transactional) CAS: an ordinary value CAS that
    /// finalizes any encountered descriptor first, exactly the update the
    /// original nonblocking algorithm would perform.  Counterpart of
    /// [`ThreadHandle::untracked_load_counted`] for [`NonTx`](crate::NonTx).
    #[inline]
    pub(crate) fn untracked_cas(&mut self, obj: &CasWord, expected: u64, desired: u64) -> bool {
        loop {
            let raw = obj.load_raw();
            let (val, cnt) = unpack(raw);
            if CasWord::counter_is_descriptor(cnt) {
                // SAFETY: see untracked_load_counted.
                unsafe { (*(val as *const Desc)).try_finalize(obj, raw) };
                self.stat_helps += 1;
                self.note_stat_event();
                continue;
            }
            if val != expected {
                return false;
            }
            if obj.raw().cas(raw, pack(desired, cnt.wrapping_add(2))) {
                return true;
            }
            // The word changed under us; re-examine.
        }
    }

    /// The transactional CAS (used by [`Txn`](crate::Txn)); see
    /// [`ThreadHandle::nbtc_cas`] for the speculation rules.
    #[inline]
    pub(crate) fn tx_cas(
        &mut self,
        obj: &CasWord,
        expected: u64,
        desired: u64,
        lin_pt: bool,
        pub_pt: bool,
    ) -> bool {
        if self.capacity_exceeded {
            return self.overflow_cas(obj, expected, desired);
        }
        // Operating on a word the transaction already wrote: rewrite the
        // buffered entry in place.  Any CAS on a buffered word — critical or
        // not — is absorbed by the buffer, exactly as the paper's protocol
        // updates an installed own descriptor entry.
        if let Some(i) = self.local_write_index(obj) {
            self.spec_interval = true;
            if self.local_writes[i].new_val != expected {
                return false;
            }
            self.local_writes[i].new_val = desired;
            if lin_pt {
                self.spec_interval = false;
            }
            return true;
        }
        loop {
            let raw = obj.load_raw();
            let (val, cnt) = unpack(raw);
            if CasWord::counter_is_descriptor(cnt) {
                let desc_ptr = val as *const Desc;
                // Foreign by construction: lazy publication keeps our own
                // descriptor uninstalled for the whole execution phase.
                debug_assert!(
                    !std::ptr::eq(desc_ptr, self.desc_ptr),
                    "own descriptor installed during the execution phase"
                );
                // SAFETY: see nbtc_load.
                unsafe { (*desc_ptr).try_finalize(obj, raw) };
                self.stat_helps += 1;
                self.note_stat_event();
                continue;
            }
            if val != expected {
                return false;
            }
            if pub_pt || lin_pt {
                self.spec_interval = true;
            }
            if self.spec_interval {
                // Critical CAS: buffer it.  Nothing is published — the
                // descriptor entry is written and installed only at
                // `tx_end`, so the owner-private hot path costs a Vec push
                // into cache-hot memory instead of five shared atomic
                // stores plus an install CAS.
                if self.local_writes.len() >= crate::descriptor::MAX_ENTRIES {
                    // Write-set overflow: the commit is guaranteed to fail
                    // with `CapacityExceeded`.  Failing the CAS would send
                    // container retry loops (re-traverse, re-CAS) into a
                    // livelock, because with a full write set the CAS could
                    // never succeed.  Instead the transaction switches into
                    // *overlay mode*: this and every later transactional
                    // access runs against the local `overflow_writes` buffer
                    // and never touches shared memory, so execution stays
                    // consistent, every loop converges, and `tx_end` reports
                    // the failure.  `doomed` makes `validate_reads` report
                    // the inconsistency immediately.
                    self.capacity_exceeded = true;
                    self.doomed = true;
                    self.overflow_writes
                        .push((obj as *const CasWord as usize, desired));
                    return true;
                }
                self.local_writes.push(LocalWrite {
                    addr: obj as *const CasWord,
                    old_val: val,
                    cnt,
                    new_val: desired,
                });
                self.write_filter |= Self::filter_bit(obj);
                if lin_pt {
                    self.spec_interval = false;
                }
                return true;
            }
            // Non-critical CAS inside a transaction (e.g. helping an already
            // linearized operation): executed on the fly.
            return obj.raw().cas(raw, pack(desired, cnt.wrapping_add(2)));
        }
    }

    /// Transactional CAS of a capacity-overflowed ("overlay mode")
    /// transaction: shared memory is never touched again — the CAS is
    /// evaluated against the transaction's current visible value (overlay
    /// first, then its pre-overflow speculation, then real memory) and, on
    /// success, recorded in the overlay.  See `overflow_writes`.
    fn overflow_cas(&mut self, obj: &CasWord, expected: u64, desired: u64) -> bool {
        let addr = obj as *const CasWord as usize;
        let (cur, _) = self.tx_load_counted(obj);
        if cur != expected {
            return false;
        }
        self.overflow_writes.push((addr, desired));
        true
    }

    /// Marks the start of the current operation's speculation interval
    /// explicitly.  Structures whose publication point is not a CAS visible
    /// to `nbtc_cas` (rare) can call this directly.
    pub fn start_speculative_interval(&mut self) {
        if self.in_tx {
            self.spec_interval = true;
        }
    }

    /// Whether the current operation is inside its speculation interval.
    pub fn in_speculative_interval(&self) -> bool {
        self.spec_interval
    }
}

impl Drop for ThreadHandle {
    fn drop(&mut self) {
        if self.in_tx {
            // A handle dropped mid-transaction (e.g. due to a panic in glue
            // code) must not leave its descriptor installed anywhere.
            self.abort_with(AbortKind::Unwind);
        }
        self.flush_stats();
        self.mgr.slot_in_use[self.tid].store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;

    #[test]
    fn register_and_release_slots() {
        let mgr = TxManager::with_max_threads(2);
        let h1 = mgr.register();
        let h2 = mgr.register();
        assert_ne!(h1.tid(), h2.tid());
        drop(h1);
        let h3 = mgr.register();
        assert!(h3.tid() < 2);
        drop(h2);
        drop(h3);
    }

    #[test]
    fn single_word_transaction_commits() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(1);
        h.tx_begin();
        let v = h.nbtc_load(&w);
        assert_eq!(v, 1);
        assert!(h.nbtc_cas(&w, 1, 2, true, true));
        // The first critical CAS is buffered (single-CAS fast path): other
        // observers still see the old value, not a descriptor.
        assert_eq!(w.try_load_value(), Some(1));
        assert!(h.tx_end().is_ok());
        assert_eq!(w.try_load_value(), Some(2));
        h.flush_stats();
        let snap = mgr.stats().snapshot();
        assert_eq!(snap.commits, 1);
        assert_eq!(
            snap.fast_commits, 1,
            "lone critical CAS must commit directly"
        );
    }

    #[test]
    fn single_word_transaction_with_fast_paths_disabled_takes_general_path() {
        let mgr = TxManager::new();
        mgr.set_fast_paths(false);
        let mut h = mgr.register();
        let w = CasWord::new(1);
        h.tx_begin();
        assert!(h.nbtc_cas(&w, 1, 2, true, true));
        // Lazy publication: even on the general path the write stays in the
        // owner-private buffer until `tx_end`; other observers see the
        // pre-image, never a descriptor, during execution.
        assert_eq!(w.try_load_value(), Some(1));
        assert!(h.tx_end().is_ok());
        assert_eq!(w.try_load_value(), Some(2));
        h.flush_stats();
        let snap = mgr.stats().snapshot();
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.fast_commits, 0);
        assert_eq!(
            snap.general_commits, 1,
            "disabled fast paths must force the published-descriptor commit"
        );
    }

    #[test]
    fn read_only_transaction_commits_descriptor_free() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(7);
        h.tx_begin();
        let v = h.nbtc_load(&w);
        h.add_to_read_set(&w, v);
        assert!(h.tx_end().is_ok());
        h.flush_stats();
        let snap = mgr.stats().snapshot();
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.ro_commits, 1);
        assert_eq!(snap.fast_commits, 0);
        // The word was never touched: value and counter are pristine.
        assert_eq!(w.load_parts(), (7, 0));
    }

    #[test]
    fn read_only_commit_detects_invalidated_read() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let mut other = mgr.register();
        let w = CasWord::new(1);
        h.tx_begin();
        let v = h.nbtc_load(&w);
        h.add_to_read_set(&w, v);
        assert!(other.nbtc_cas(&w, 1, 2, true, true));
        assert_eq!(h.tx_end(), Err(TxError::Conflict));
        h.flush_stats();
        assert_eq!(mgr.stats().snapshot().ro_commits, 0);
    }

    #[test]
    fn second_critical_word_stays_buffered_until_commit() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let a = CasWord::new(10);
        let b = CasWord::new(20);
        h.tx_begin();
        assert!(h.nbtc_cas(&a, 10, 11, true, true));
        // Every critical CAS is buffered: `a` still shows its old value.
        assert_eq!(a.try_load_value(), Some(10));
        assert!(h.nbtc_cas(&b, 20, 21, true, true));
        // Still nothing published — lazy publication defers the descriptor
        // to `tx_end`.
        assert_eq!(a.try_load_value(), Some(10));
        assert_eq!(b.try_load_value(), Some(20));
        // Read-your-own-write visibility comes from the buffer.
        assert_eq!(h.nbtc_load(&a), 11);
        assert_eq!(h.nbtc_load(&b), 21);
        assert!(h.tx_end().is_ok());
        assert_eq!(a.try_load_value(), Some(11));
        assert_eq!(b.try_load_value(), Some(21));
        h.flush_stats();
        let snap = mgr.stats().snapshot();
        assert_eq!(snap.commits, 1);
        assert_eq!(
            snap.fast_commits, 0,
            "two-word tx must take the general path"
        );
        assert_eq!(snap.general_commits, 1);
    }

    #[test]
    fn buffered_write_lost_to_contention_aborts_and_retries() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let mut other = mgr.register();
        let w = CasWord::new(1);
        h.tx_begin();
        assert!(h.nbtc_cas(&w, 1, 2, true, true)); // buffered
                                                   // The buffered write is invisible, so a non-transactional CAS wins
                                                   // the word outright.
        assert!(other.nbtc_cas(&w, 1, 9, true, true));
        assert_eq!(h.tx_end(), Err(TxError::Conflict));
        assert_eq!(w.try_load_value(), Some(9));
        // A retry through `run` succeeds on the fresh value.
        let out: TxResult<()> = h.run(|t| {
            let v = t.nbtc_load(&w);
            assert!(t.nbtc_cas(&w, v, v + 1, true, true));
            Ok(())
        });
        assert!(out.is_ok());
        assert_eq!(w.try_load_value(), Some(10));
    }

    #[test]
    fn stolen_buffered_word_fails_at_commit_install() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let mut other = mgr.register();
        let a = CasWord::new(1);
        let b = CasWord::new(5);
        h.tx_begin();
        assert!(h.nbtc_cas(&a, 1, 2, true, true)); // buffered
                                                   // `a` changes under the buffered write...
        assert!(other.nbtc_cas(&a, 1, 7, true, true));
        // ...but execution continues undisturbed against the private buffer
        // (lazy publication defers conflict detection to the commit-time
        // install, whose pre-image CAS then fails).
        assert!(h.nbtc_cas(&b, 5, 6, true, true));
        assert_eq!(h.nbtc_load(&b), 6, "buffered speculation stays visible");
        assert_eq!(h.tx_end(), Err(TxError::Conflict));
        assert_eq!(a.try_load_value(), Some(7));
        assert_eq!(b.try_load_value(), Some(5), "speculation on b rolled back");
        h.flush_stats();
        assert_eq!(mgr.stats().snapshot().conflict_aborts, 1);
    }

    #[test]
    fn symmetric_read_write_pairs_cannot_write_skew() {
        // tx1 reads A and writes B; tx2 reads B and writes A, fully
        // interleaved.  A serializable runtime must abort at least one of
        // them: if both committed, each would have read state the other's
        // write invalidated, with no serial order.  (Regression test for the
        // single-CAS fast path committing foreign reads without pinning
        // them.)
        let mgr = TxManager::new();
        let mut h1 = mgr.register();
        let mut h2 = mgr.register();
        let a = CasWord::new(10);
        let b = CasWord::new(20);
        h1.tx_begin();
        let va = h1.nbtc_load(&a);
        h1.add_to_read_set(&a, va);
        assert!(h1.nbtc_cas(&b, 20, 21, true, true));
        h2.tx_begin();
        let vb = h2.nbtc_load(&b);
        h2.add_to_read_set(&b, vb);
        assert!(h2.nbtc_cas(&a, 10, 11, true, true));
        let r1 = h1.tx_end();
        let r2 = h2.tx_end();
        assert!(
            r1.is_err() || r2.is_err(),
            "write skew: both symmetric transactions committed ({r1:?}, {r2:?})"
        );
        // The surviving state must correspond to a serial order.
        let (fa, fb) = (a.try_load_value().unwrap(), b.try_load_value().unwrap());
        match (r1.is_ok(), r2.is_ok()) {
            (true, false) => assert_eq!((fa, fb), (10, 21)),
            (false, true) => assert_eq!((fa, fb), (11, 20)),
            (false, false) => assert_eq!((fa, fb), (10, 20)),
            (true, true) => unreachable!(),
        }
    }

    #[test]
    fn foreign_read_plus_single_write_takes_general_path() {
        // The direct commit cannot order reads of other words (write-skew
        // hazard), so such a transaction must publish a descriptor even
        // though its write set is a single word.
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let a = CasWord::new(1);
        let b = CasWord::new(2);
        h.tx_begin();
        let v = h.nbtc_load(&a);
        h.add_to_read_set(&a, v);
        assert!(h.nbtc_cas(&b, 2, 3, true, true));
        assert!(h.tx_end().is_ok());
        h.flush_stats();
        let snap = mgr.stats().snapshot();
        assert_eq!(snap.commits, 1);
        assert_eq!(
            snap.fast_commits, 0,
            "a buffered write with a foreign read must not commit directly"
        );
        assert_eq!(b.try_load_value(), Some(3));
    }

    #[test]
    fn single_cas_with_same_word_read_still_takes_fast_path() {
        // A read of the written word's own pre-image is subsumed by the
        // commit CAS: the transaction still qualifies for the direct path.
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(5);
        h.tx_begin();
        let v = h.nbtc_load(&w);
        h.add_to_read_set(&w, v);
        assert!(h.nbtc_cas(&w, 5, 6, true, true));
        assert!(h.tx_end().is_ok());
        h.flush_stats();
        assert_eq!(mgr.stats().snapshot().fast_commits, 1);
        assert_eq!(w.try_load_value(), Some(6));
    }

    #[test]
    fn recent_ring_overflow_falls_back_conservatively() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let target = CasWord::new(42);
        let noise: Vec<CasWord> = (0..2 * RECENT_LOADS as u64).map(CasWord::new).collect();
        // Unchanged word: registration after ring overflow re-timestamps and
        // the transaction still commits read-only.
        h.tx_begin();
        let v = h.nbtc_load(&target);
        for w in &noise {
            h.nbtc_load(w);
        }
        h.add_to_read_set(&target, v);
        assert!(h.tx_end().is_ok());
        // Changed word: the stale registration dooms the transaction on the
        // spot instead of silently passing validation.
        h.tx_begin();
        let v = h.nbtc_load(&target);
        for w in &noise {
            h.nbtc_load(w);
        }
        assert!(target.cas_value(42, 43), "simulate a conflicting writer");
        h.add_to_read_set(&target, v);
        assert!(!h.validate_reads());
        assert_eq!(h.tx_end(), Err(TxError::Conflict));
    }

    #[test]
    fn abort_rolls_back_speculative_writes() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(1);
        h.tx_begin();
        assert!(h.nbtc_cas(&w, 1, 2, true, true));
        let err = h.tx_abort();
        assert_eq!(err, TxError::Explicit);
        assert_eq!(w.try_load_value(), Some(1));
        assert!(!h.in_tx());
    }

    #[test]
    fn read_validation_detects_conflicting_write() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let mut other = mgr.register();
        let w = CasWord::new(1);
        let target = CasWord::new(10);
        h.tx_begin();
        let v = h.nbtc_load(&w);
        h.add_to_read_set(&w, v);
        // A conflicting non-transactional write invalidates the read.
        assert!(other.nbtc_cas(&w, 1, 5, true, true));
        assert!(h.nbtc_cas(&target, 10, 11, true, true));
        assert_eq!(h.tx_end(), Err(TxError::Conflict));
        // The speculative write to `target` must have been rolled back.
        assert_eq!(target.try_load_value(), Some(10));
    }

    #[test]
    fn own_speculative_values_are_visible_within_tx() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(1);
        h.tx_begin();
        assert!(h.nbtc_cas(&w, 1, 2, true, true));
        assert_eq!(h.nbtc_load(&w), 2, "same tx must see its own write");
        // Read of own speculative value does not poison the read set.
        h.add_to_read_set(&w, 2);
        assert!(h.nbtc_cas(&w, 2, 3, true, true));
        assert!(h.tx_end().is_ok());
        assert_eq!(w.try_load_value(), Some(3));
    }

    #[test]
    fn installed_foreign_descriptor_is_finalized_by_plain_operations() {
        // Simulate a transaction caught mid-commit: a descriptor published
        // (entry stamped) and installed in `w`, still InPrep — exactly the
        // state a preempted owner leaves between the install and `setReady`
        // steps of `tx_end`.  A non-transactional CAS must abort it, write
        // the pre-image back, and proceed — and count the help.
        let mgr = TxManager::new();
        let mut b = mgr.register();
        let w = CasWord::new(1);
        let stalled = Desc::new(99);
        stalled.begin();
        let serial = stalled.serial();
        let (v, c) = w.load_parts();
        assert!(stalled.push_write(serial, &w, v, c, 2));
        assert!(w
            .raw()
            .cas(pack(v, c), pack(stalled.as_payload(), c.wrapping_add(1))));
        assert_eq!(w.try_load_value(), None, "descriptor visibly installed");
        // b, running non-transactionally, encounters the descriptor, aborts
        // the InPrep transaction, uninstalls the pre-image, and wins the
        // word.
        assert!(b.nbtc_cas(&w, 1, 9, true, true));
        assert_eq!(w.try_load_value(), Some(9));
        assert_eq!(stalled.status(), Status::Aborted);
        b.flush_stats();
        assert!(
            mgr.stats().snapshot().helps >= 1,
            "the finalization must be counted as a help"
        );
        // The stalled owner's own commit attempt must now fail.
        assert!(!stalled.set_ready());
    }

    #[test]
    fn contender_during_install_window_wins_and_commit_fails() {
        let mgr = TxManager::new();
        // Force the general path so `tx_end` actually publishes a
        // descriptor (invisible during execution either way).
        mgr.set_fast_paths(false);
        let mut a = mgr.register();
        let mut b = mgr.register();
        let w = CasWord::new(1);
        a.tx_begin();
        assert!(a.nbtc_cas(&w, 1, 2, true, true));
        // Lazy publication: b sees the pre-image (no descriptor) and wins
        // the word outright with a plain CAS.
        assert_eq!(w.try_load_value(), Some(1));
        assert!(b.nbtc_cas(&w, 1, 9, true, true));
        assert_eq!(w.try_load_value(), Some(9));
        // a's commit-time install finds the changed pre-image and fails.
        assert_eq!(a.tx_end(), Err(TxError::Conflict));
        assert_eq!(w.try_load_value(), Some(9));
    }

    #[test]
    fn run_retries_conflicts_and_returns_value() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(0);
        let mut attempts = 0;
        let out: TxResult<u64> = h.run(|t| {
            attempts += 1;
            let v = t.nbtc_load(&w);
            if attempts == 1 {
                // Simulate a conflict on the first attempt.
                return Err(t.abort(AbortReason::Conflict));
            }
            assert!(t.nbtc_cas(&w, v, v + 1, true, true));
            Ok(v + 1)
        });
        assert_eq!(out, Ok(1));
        assert!(attempts >= 2);
        assert_eq!(w.try_load_value(), Some(1));
    }

    #[test]
    fn run_propagates_explicit_abort() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(5);
        let out: TxResult<()> = h.run(|t| {
            assert!(t.nbtc_cas(&w, 5, 6, true, true));
            Err(t.abort(AbortReason::Explicit))
        });
        assert_eq!(out, Err(TxError::Explicit));
        assert_eq!(w.try_load_value(), Some(5));
    }

    #[test]
    fn write_set_overflow_surfaces_capacity_exceeded_without_livelock() {
        // Regression: a critical CAS past the descriptor's write capacity
        // used to report failure, which container retry loops interpret as
        // contention — spinning forever on a transaction that can never
        // commit.  It must now pretend-succeed (the transaction is doomed)
        // so control reaches `tx_end`, which reports `CapacityExceeded`.
        let mgr = TxManager::new();
        // Force the general path so every CAS consumes a descriptor entry.
        mgr.set_fast_paths(false);
        let mut h = mgr.register();
        let words: Vec<CasWord> = (0..crate::descriptor::MAX_ENTRIES + 2)
            .map(|_| CasWord::new(0))
            .collect();
        let res: TxResult<()> = h.run(|t| {
            for w in &words {
                assert!(
                    t.nbtc_cas(w, 0, 1, true, true),
                    "a doomed transaction's CAS must not fail into a retry loop"
                );
            }
            assert!(!t.validate_reads(), "overflowed transaction is doomed");
            // Overlay mode: later accesses see the transaction's own fake
            // writes, so verify-by-reload loops (the helping pattern in the
            // containers) converge instead of spinning on unchanged memory.
            let extra = CasWord::new(10);
            let mut spins = 0;
            loop {
                spins += 1;
                assert!(spins < 4, "overlay CAS loop failed to converge");
                let v = t.nbtc_load(&extra);
                if t.nbtc_cas(&extra, v, v + 1, true, true) {
                    break;
                }
            }
            assert_eq!(
                t.nbtc_load(&extra),
                11,
                "overlay write must be visible to the same transaction"
            );
            assert!(
                !t.nbtc_cas(&extra, 10, 99, true, true),
                "stale expected value must still fail"
            );
            assert_eq!(extra.try_load_value(), Some(10), "memory untouched");
            Ok(())
        });
        assert_eq!(res, Err(TxError::CapacityExceeded));
        assert!(!h.in_tx());
        for w in &words {
            assert_eq!(w.try_load_value(), Some(0), "all writes rolled back");
        }
        h.flush_stats();
        assert_eq!(mgr.stats().snapshot().capacity_aborts, 1);
    }

    #[test]
    fn tnew_is_freed_on_abort() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        h.tx_begin();
        let p = h.tnew(123u64);
        assert_eq!(unsafe { *p }, 123);
        let _ = h.tx_abort();
        // No leak: Miri/asan would flag a double free if tnew's rollback were
        // wrong; here we just assert the transaction state is clean.
        assert!(!h.in_tx());
    }

    #[test]
    fn cleanups_run_only_after_commit() {
        use std::cell::Cell;
        use std::rc::Rc;
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(0);

        let ran = Rc::new(Cell::new(0));
        let r2 = Rc::clone(&ran);
        h.tx_begin();
        assert!(h.nbtc_cas(&w, 0, 1, true, true));
        h.add_cleanup(move |_| r2.set(r2.get() + 1));
        assert_eq!(ran.get(), 0, "cleanup must not run before commit");
        assert!(h.tx_end().is_ok());
        assert_eq!(ran.get(), 1);

        // On abort the cleanup must never run.
        let r3 = Rc::clone(&ran);
        h.tx_begin();
        h.add_cleanup(move |_| r3.set(r3.get() + 100));
        let _ = h.tx_abort();
        assert_eq!(ran.get(), 1);

        // Outside a transaction the closure runs immediately.
        let r4 = Rc::clone(&ran);
        h.add_cleanup(move |_| r4.set(r4.get() + 10));
        assert_eq!(ran.get(), 11);
    }

    #[test]
    fn epoch_validation_aborts_cross_epoch_transactions() {
        let mgr = TxManager::new();
        mgr.set_epoch_validation(true);
        let mut h = mgr.register();
        let w = CasWord::new(0);
        h.tx_begin();
        assert_eq!(h.snapshot_epoch(), 0);
        assert!(h.nbtc_cas(&w, 0, 1, true, true));
        // The persistence epoch advances before the transaction commits.
        mgr.advance_epoch();
        assert_eq!(h.tx_end(), Err(TxError::Conflict));
        assert_eq!(w.try_load_value(), Some(0));
        // A retry in the new epoch succeeds.
        h.tx_begin();
        assert_eq!(h.snapshot_epoch(), 1);
        assert!(h.nbtc_cas(&w, 0, 1, true, true));
        assert!(h.tx_end().is_ok());
    }

    #[test]
    fn non_critical_cas_inside_tx_takes_effect_immediately() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(7);
        h.tx_begin();
        // Not a publication or linearization point and no speculation
        // interval started: helping CASes execute on the fly.
        assert!(h.nbtc_cas(&w, 7, 8, false, false));
        assert_eq!(w.try_load_value(), Some(8));
        let _ = h.tx_abort();
        // The non-critical CAS is NOT rolled back (it helped an operation
        // that had already linearized).
        assert_eq!(w.try_load_value(), Some(8));
    }

    #[test]
    fn concurrent_counter_increments_are_atomic() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 2_000;
        let mgr = TxManager::new();
        let w = Arc::new(CasWord::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let mgr = Arc::clone(&mgr);
            let w = Arc::clone(&w);
            handles.push(std::thread::spawn(move || {
                let mut h = mgr.register();
                for _ in 0..PER_THREAD {
                    loop {
                        let done: TxResult<bool> = h.run(|t| {
                            let v = t.nbtc_load(&w);
                            Ok(t.nbtc_cas(&w, v, v + 1, true, true))
                        });
                        if done.unwrap() {
                            break;
                        }
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(w.try_load_value(), Some((THREADS * PER_THREAD) as u64));
    }

    #[test]
    fn two_word_transfer_preserves_sum() {
        // The canonical Fig. 3 scenario: transfer between two "accounts" with
        // concurrent transfers in both directions; the sum is invariant.
        const THREADS: usize = 4;
        const PER_THREAD: usize = 1_000;
        let mgr = TxManager::new();
        let a = Arc::new(CasWord::new(1_000));
        let b = Arc::new(CasWord::new(1_000));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let mgr = Arc::clone(&mgr);
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut h = mgr.register();
                let (from, to) = if t % 2 == 0 { (a, b) } else { (b, a) };
                for _ in 0..PER_THREAD {
                    let _ = h.run(|t| {
                        let x = t.nbtc_load(&from);
                        let y = t.nbtc_load(&to);
                        if x == 0 {
                            return Err(t.abort(AbortReason::Explicit));
                        }
                        if !t.nbtc_cas(&from, x, x - 1, true, true) {
                            return Err(t.abort(AbortReason::Conflict));
                        }
                        if !t.nbtc_cas(&to, y, y + 1, true, true) {
                            return Err(t.abort(AbortReason::Conflict));
                        }
                        Ok(())
                    });
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        let total = a.try_load_value().unwrap() + b.try_load_value().unwrap();
        assert_eq!(total, 2_000);
    }

    #[test]
    fn all_contention_policies_commit_under_contention() {
        for policy in [
            ContentionPolicy::Backoff,
            ContentionPolicy::Karma,
            ContentionPolicy::Adaptive,
        ] {
            let mgr = Arc::new(TxManager::new());
            let w = Arc::new(CasWord::new(0));
            const THREADS: usize = 4;
            const PER_THREAD: u64 = 200;
            let mut handles = Vec::new();
            for _ in 0..THREADS {
                let mgr = Arc::clone(&mgr);
                let w = Arc::clone(&w);
                handles.push(std::thread::spawn(move || {
                    let cfg = RunConfig::new().contention_policy(policy);
                    let mut h = mgr.register();
                    for _ in 0..PER_THREAD {
                        h.run_with(&cfg, |t| {
                            let v = t.nbtc_load(&w);
                            if !t.nbtc_cas(&w, v, v + 1, true, true) {
                                return Err(t.abort(AbortReason::Conflict));
                            }
                            Ok(())
                        })
                        .unwrap();
                    }
                }));
            }
            for t in handles {
                t.join().unwrap();
            }
            assert_eq!(
                w.try_load_value(),
                Some(THREADS as u64 * PER_THREAD),
                "policy {policy:?} lost updates"
            );
        }
    }

    #[test]
    fn karma_waits_are_counted_in_stats() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let mut backoff = Backoff::new();
        for i in 1..=64 {
            h.cm_wait(ContentionPolicy::Karma, &mut backoff, i);
        }
        h.flush_stats();
        let snap = mgr.stats().snapshot();
        assert_eq!(snap.cm_waits, 64);
        assert!(
            snap.cm_priority_skips > 0,
            "high-seniority waits must collapse to near-immediate retries"
        );
    }

    #[test]
    fn adaptive_abort_rate_ewma_tracks_outcomes() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        assert_eq!(h.contention_ewma(), 0.0);
        for _ in 0..64 {
            h.record_cm_outcome(true);
        }
        assert!(h.contention_ewma() > 0.9);
        for _ in 0..64 {
            h.record_cm_outcome(false);
        }
        assert!(h.contention_ewma() < 0.1);
    }

    #[test]
    fn adaptive_policy_escalates_when_hot() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        // Drive the EWMA into the hot regime, then take one adaptive wait.
        for _ in 0..64 {
            h.record_cm_outcome(true);
        }
        let mut backoff = Backoff::new();
        h.cm_wait(ContentionPolicy::Adaptive, &mut backoff, 1);
        h.flush_stats();
        let snap = mgr.stats().snapshot();
        assert_eq!(snap.cm_waits, 1);
        assert_eq!(snap.cm_escalations, 1);
    }
}
