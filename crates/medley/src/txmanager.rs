//! The transaction manager and per-thread handles.
//!
//! [`TxManager`] owns one pre-allocated descriptor per thread slot plus the
//! epoch-based reclamation domain; it is shared (via `Arc`) among all
//! transactional data structures that may participate in the same
//! transactions, exactly like the `TxManager*` the paper's `Composable`
//! objects share.
//!
//! [`ThreadHandle`] is the per-thread capability through which every
//! operation runs.  It combines the roles of the paper's `OpStarter`
//! (per-operation instrumentation gate + SMR pin), the thread-local
//! descriptor pointer, and the thread-local `cleanups` / `allocs` lists.
//!
//! The transactional memory accesses `nbtc_load` / `nbtc_cas` /
//! `add_to_read_set` live here as methods on the handle: they need mutable
//! access to per-thread state (speculation-interval flag, recent-load ring),
//! which maps naturally onto `&mut self`.

use crate::atomic128::{pack, unpack};
use crate::casobj::CasWord;
use crate::descriptor::{Desc, Status};
use crate::ebr;
use crate::errors::{TxError, TxResult};
use crate::util::{Backoff, CachePadded};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel counter recorded for loads that returned one of the transaction's
/// own speculative values; such loads never need read-set validation.
const OWN_SPECULATIVE: u64 = u64::MAX;

/// Size of the per-handle ring buffer remembering recent `nbtc_load`s so that
/// `add_to_read_set` can recover the counter observed by the load.
const RECENT_LOADS: usize = 16;

/// Aggregate statistics maintained by a [`TxManager`].
#[derive(Debug, Default)]
pub struct TxStats {
    /// Transactions that committed.
    pub commits: AtomicU64,
    /// Transactions that aborted (for any reason).
    pub aborts: AtomicU64,
    /// Times a thread finalized (helped or aborted) another thread's
    /// descriptor.
    pub helps: AtomicU64,
}

impl TxStats {
    /// Snapshot of `(commits, aborts, helps)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.commits.load(Ordering::Relaxed),
            self.aborts.load(Ordering::Relaxed),
            self.helps.load(Ordering::Relaxed),
        )
    }
}

/// Shared transaction-management state (paper `TxManager`).
pub struct TxManager {
    descs: Box<[CachePadded<Desc>]>,
    slot_in_use: Box<[AtomicBool]>,
    collector: Arc<ebr::Collector>,
    epoch_word: CachePadded<CasWord>,
    epoch_validation: AtomicBool,
    stats: TxStats,
}

impl std::fmt::Debug for TxManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxManager")
            .field("max_threads", &self.descs.len())
            .field("epoch_validation", &self.epoch_validation.load(Ordering::Relaxed))
            .finish()
    }
}

impl TxManager {
    /// Default number of thread slots.
    pub const DEFAULT_MAX_THREADS: usize = 128;

    /// Creates a manager with the default number of thread slots.
    pub fn new() -> Arc<Self> {
        Self::with_max_threads(Self::DEFAULT_MAX_THREADS)
    }

    /// Creates a manager able to serve up to `max_threads` concurrently
    /// registered handles.
    pub fn with_max_threads(max_threads: usize) -> Arc<Self> {
        assert!(max_threads >= 1 && max_threads < (1 << 14), "tid must fit in 14 bits");
        let descs = (0..max_threads)
            .map(|tid| CachePadded::new(Desc::new(tid as u64)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let slot_in_use = (0..max_threads)
            .map(|_| AtomicBool::new(false))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arc::new(Self {
            descs,
            slot_in_use,
            collector: ebr::Collector::new(max_threads),
            epoch_word: CachePadded::new(CasWord::new(0)),
            epoch_validation: AtomicBool::new(false),
            stats: TxStats::default(),
        })
    }

    /// Registers the calling thread and returns its handle.
    ///
    /// # Panics
    /// Panics if all thread slots are taken.
    pub fn register(self: &Arc<Self>) -> ThreadHandle {
        for (tid, flag) in self.slot_in_use.iter().enumerate() {
            if flag
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                let participant = self.collector.register();
                let desc_ptr: *const Desc = &*self.descs[tid];
                return ThreadHandle {
                    mgr: Arc::clone(self),
                    tid,
                    desc_ptr,
                    participant,
                    in_tx: false,
                    spec_interval: false,
                    serial: 0,
                    snapshot_epoch: 0,
                    capacity_exceeded: false,
                    recent: [(0, 0, 0); RECENT_LOADS],
                    recent_pos: 0,
                    cleanups: Vec::new(),
                    abort_actions: Vec::new(),
                    allocs: Vec::new(),
                    local_commits: 0,
                    local_aborts: 0,
                };
            }
        }
        panic!("TxManager: thread slots exhausted");
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &TxStats {
        &self.stats
    }

    /// The epoch-based reclamation domain shared by structures built on this
    /// manager.
    pub fn collector(&self) -> &Arc<ebr::Collector> {
        &self.collector
    }

    /// The persistence-epoch word (txMontage hook).  `pmem`'s epoch system
    /// advances it; when [`TxManager::set_epoch_validation`] is enabled every
    /// transaction reads it at `tx_begin` and validates it at commit, which
    /// guarantees that all operations of a transaction linearize in the same
    /// persistence epoch (paper Sec. 4.4).
    pub fn epoch_word(&self) -> &CasWord {
        &self.epoch_word
    }

    /// Current value of the persistence epoch.
    pub fn current_epoch(&self) -> u64 {
        self.epoch_word.load_parts().0
    }

    /// Advances the persistence epoch by one, returning the new value.
    pub fn advance_epoch(&self) -> u64 {
        loop {
            let (v, _) = self.epoch_word.load_parts();
            if self.epoch_word.cas_value(v, v + 1) {
                return v + 1;
            }
        }
    }

    /// Enables or disables folding the persistence-epoch check into every
    /// transaction's read set.
    pub fn set_epoch_validation(&self, enabled: bool) {
        self.epoch_validation.store(enabled, Ordering::SeqCst);
    }

    /// Whether epoch validation is currently enabled.
    pub fn epoch_validation_enabled(&self) -> bool {
        self.epoch_validation.load(Ordering::SeqCst)
    }
}

type DropFn = unsafe fn(*mut u8);

unsafe fn drop_raw<T>(ptr: *mut u8) {
    // SAFETY: forwarded from the caller's contract: `ptr` was produced by
    // `Box::<T>::into_raw` in `tnew` and never published.
    drop(unsafe { Box::from_raw(ptr as *mut T) });
}

type Cleanup = Box<dyn FnOnce(&mut ThreadHandle)>;

/// Per-thread handle used to execute operations and transactions.
///
/// Not `Send`/`Sync`: each thread registers its own handle with
/// [`TxManager::register`].
pub struct ThreadHandle {
    mgr: Arc<TxManager>,
    tid: usize,
    desc_ptr: *const Desc,
    participant: ebr::Participant,
    in_tx: bool,
    spec_interval: bool,
    serial: u64,
    snapshot_epoch: u64,
    capacity_exceeded: bool,
    recent: [(usize, u64, u64); RECENT_LOADS],
    recent_pos: usize,
    cleanups: Vec<Cleanup>,
    abort_actions: Vec<Cleanup>,
    allocs: Vec<(*mut u8, DropFn)>,
    local_commits: u64,
    local_aborts: u64,
}

impl std::fmt::Debug for ThreadHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadHandle")
            .field("tid", &self.tid)
            .field("in_tx", &self.in_tx)
            .field("serial", &self.serial)
            .finish()
    }
}

impl ThreadHandle {
    #[inline]
    fn desc(&self) -> &Desc {
        // SAFETY: `desc_ptr` points into `self.mgr.descs`, which lives as long
        // as the `Arc<TxManager>` this handle holds.
        unsafe { &*self.desc_ptr }
    }

    /// The manager this handle belongs to.
    pub fn manager(&self) -> &Arc<TxManager> {
        &self.mgr
    }

    /// The thread-slot id of this handle.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Whether a transaction is currently open on this handle.
    pub fn in_tx(&self) -> bool {
        self.in_tx
    }

    /// The persistence epoch observed at `tx_begin` (meaningful only when
    /// epoch validation is enabled and a transaction is open).
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot_epoch
    }

    /// `(commits, aborts)` performed through this handle.
    pub fn local_stats(&self) -> (u64, u64) {
        (self.local_commits, self.local_aborts)
    }

    // ------------------------------------------------------------------
    // Operation bracket (paper `OpStarter`)
    // ------------------------------------------------------------------

    /// Runs one data-structure operation: pins the SMR epoch for its duration
    /// and resets the speculation interval, exactly as the paper's
    /// `OpStarter` constructor does at the top of every operation.
    pub fn with_op<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        self.participant.pin();
        self.spec_interval = false;
        let r = f(self);
        self.spec_interval = false;
        self.participant.unpin();
        r
    }

    // ------------------------------------------------------------------
    // Transaction control (paper `txBegin` / `txEnd` / `txAbort`)
    // ------------------------------------------------------------------

    /// Starts a transaction.
    ///
    /// # Panics
    /// Panics if a transaction is already open on this handle.
    pub fn tx_begin(&mut self) {
        assert!(!self.in_tx, "nested transactions are not supported");
        self.desc().begin();
        self.serial = self.desc().serial();
        self.in_tx = true;
        self.spec_interval = false;
        self.capacity_exceeded = false;
        self.recent = [(0, 0, 0); RECENT_LOADS];
        self.recent_pos = 0;
        debug_assert!(self.cleanups.is_empty());
        debug_assert!(self.allocs.is_empty());
        self.participant.pin();
        if self.mgr.epoch_validation_enabled() {
            let (epoch, cnt) = self.mgr.epoch_word.load_parts();
            self.snapshot_epoch = epoch;
            // Folding the epoch check into the MCNS read set is all txMontage
            // needs for failure atomicity (paper Sec. 4.4).
            if !self.desc().push_read(self.serial, &*self.mgr.epoch_word, epoch, cnt) {
                self.capacity_exceeded = true;
            }
        }
    }

    /// Attempts to commit the open transaction.
    ///
    /// On success the speculative writes of all constituent operations become
    /// visible atomically and the registered cleanup closures run.  On
    /// failure everything is rolled back.
    pub fn tx_end(&mut self) -> TxResult<()> {
        assert!(self.in_tx, "tx_end without tx_begin");
        if self.capacity_exceeded {
            self.abort_internal();
            return Err(TxError::CapacityExceeded);
        }
        let desc = self.desc();
        if !desc.set_ready() {
            // Another thread aborted us while we were still InPrep.
            self.abort_internal();
            return Err(TxError::Conflict);
        }
        let outcome = desc.finalize_own(self.serial);
        match outcome {
            Status::Committed => {
                desc.uninstall(self.serial, Status::Committed);
                self.in_tx = false;
                self.spec_interval = false;
                // Ownership of tnew-ed blocks passes to the structures.
                self.allocs.clear();
                self.abort_actions.clear();
                let cleanups = std::mem::take(&mut self.cleanups);
                for c in cleanups {
                    c(self);
                }
                self.participant.unpin();
                self.local_commits += 1;
                self.mgr.stats.commits.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            _ => {
                self.abort_internal();
                Err(TxError::Conflict)
            }
        }
    }

    /// Explicitly aborts the open transaction, rolling back all speculative
    /// state.  Returns the error value to propagate (`TxError::Explicit`),
    /// so the idiomatic call site is `return Err(handle.tx_abort());`.
    pub fn tx_abort(&mut self) -> TxError {
        assert!(self.in_tx, "tx_abort without tx_begin");
        self.abort_internal();
        TxError::Explicit
    }

    /// Validates the read set of the open transaction (paper
    /// `validateReads`): optional opacity check for transactions whose glue
    /// code cannot tolerate inconsistent reads.
    pub fn validate_reads(&self) -> bool {
        if !self.in_tx {
            return true;
        }
        self.desc().validate_reads(self.serial)
    }

    /// Runs `body` as a transaction, retrying on conflicts with exponential
    /// backoff.  Explicit aborts and capacity overflows are returned to the
    /// caller.
    pub fn run<R>(
        &mut self,
        mut body: impl FnMut(&mut Self) -> TxResult<R>,
    ) -> TxResult<R> {
        let mut backoff = Backoff::new();
        loop {
            self.tx_begin();
            match body(self) {
                Ok(value) => {
                    if !self.in_tx {
                        // The body aborted explicitly but still returned Ok;
                        // treat the produced value as the result.
                        return Ok(value);
                    }
                    match self.tx_end() {
                        Ok(()) => return Ok(value),
                        Err(TxError::Conflict) => {
                            backoff.backoff();
                            continue;
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(err) => {
                    if self.in_tx {
                        self.abort_internal();
                    }
                    match err {
                        TxError::Conflict => {
                            backoff.backoff();
                            continue;
                        }
                        other => return Err(other),
                    }
                }
            }
        }
    }

    fn abort_internal(&mut self) {
        let desc = self.desc();
        let st = desc.abort_own(self.serial);
        let outcome = if st == Status::Committed { Status::Committed } else { Status::Aborted };
        desc.uninstall(self.serial, outcome);
        // Undo tnew allocations: they were never published (speculative
        // installs have just been rolled back), so immediate free is safe.
        for (ptr, drop_fn) in std::mem::take(&mut self.allocs) {
            // SAFETY: allocated by `tnew` on this thread and never handed to
            // any other thread.
            unsafe { drop_fn(ptr) };
        }
        self.cleanups.clear();
        self.in_tx = false;
        self.spec_interval = false;
        let abort_actions = std::mem::take(&mut self.abort_actions);
        for a in abort_actions {
            a(self);
        }
        self.participant.unpin();
        self.local_aborts += 1;
        self.mgr.stats.aborts.fetch_add(1, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Composable support (paper `Composable` base class)
    // ------------------------------------------------------------------

    /// Registers a read for commit-time validation.  `val` must be the value
    /// returned by the immediately preceding [`ThreadHandle::nbtc_load`] of
    /// `obj` (the linearizing load of a read-only operation).
    pub fn add_to_read_set(&mut self, obj: &CasWord, val: u64) {
        if !self.in_tx {
            return;
        }
        let addr = obj as *const CasWord as usize;
        let mut cnt = None;
        for i in 0..RECENT_LOADS {
            let (a, v, c) = self.recent[(self.recent_pos + RECENT_LOADS - 1 - i) % RECENT_LOADS];
            if a == addr && v == val {
                cnt = Some(c);
                break;
            }
        }
        let cnt = match cnt {
            Some(c) => c,
            None => {
                // Fall back to re-reading: if the value is unchanged the read
                // can be treated as having occurred now; otherwise poison the
                // entry so the transaction aborts at commit.
                let (v, c) = obj.load_parts();
                if v == val && !CasWord::counter_is_descriptor(c) {
                    c
                } else {
                    u64::MAX // unmatchable counter => validation fails
                }
            }
        };
        if cnt == OWN_SPECULATIVE {
            // Reading one's own speculative write needs no validation.
            return;
        }
        if !self.desc().push_read(self.serial, obj, val, cnt) {
            self.capacity_exceeded = true;
        }
    }

    /// Registers post-critical ("cleanup") work to run after the transaction
    /// commits; outside a transaction the closure runs immediately.
    pub fn add_cleanup(&mut self, f: impl FnOnce(&mut ThreadHandle) + 'static) {
        if self.in_tx {
            self.cleanups.push(Box::new(f));
        } else {
            f(self);
        }
    }

    /// Registers compensation work that runs only if the transaction aborts
    /// (the complement of [`ThreadHandle::add_cleanup`]).  Outside a
    /// transaction the closure is dropped without running, since a
    /// non-transactional operation cannot abort.
    ///
    /// txMontage uses this to release payload records allocated by an
    /// operation whose enclosing transaction rolls back.
    pub fn add_abort_action(&mut self, f: impl FnOnce(&mut ThreadHandle) + 'static) {
        if self.in_tx {
            self.abort_actions.push(Box::new(f));
        }
    }

    /// Allocates a block whose ownership is tied to the transaction: if the
    /// transaction aborts, the block is freed automatically (paper `tNew`).
    pub fn tnew<T>(&mut self, value: T) -> *mut T {
        let ptr = Box::into_raw(Box::new(value));
        if self.in_tx {
            self.allocs.push((ptr as *mut u8, drop_raw::<T>));
        }
        ptr
    }

    /// Frees a block previously produced by [`ThreadHandle::tnew`] that was
    /// never published (paper `tDelete`).
    ///
    /// # Safety
    /// `ptr` must have been returned by `tnew::<T>` on this handle and must
    /// not be reachable from any shared structure.
    pub unsafe fn tdelete<T>(&mut self, ptr: *mut T) {
        if self.in_tx {
            if let Some(pos) = self.allocs.iter().position(|(p, _)| *p == ptr as *mut u8) {
                self.allocs.swap_remove(pos);
            }
        }
        // SAFETY: forwarded from the caller's contract.
        drop(unsafe { Box::from_raw(ptr) });
    }

    /// Retires a node through epoch-based reclamation (paper `tRetire`).
    /// Inside a transaction the retirement is deferred until commit; on abort
    /// it simply does not happen (the node was never unlinked).
    ///
    /// # Safety
    /// `ptr` must have been allocated via `Box` (directly or through `tnew`)
    /// and must be unlinked from the structure by the time the retirement
    /// takes effect, with no other thread retiring it as well.
    pub unsafe fn tretire<T: Send + 'static>(&mut self, ptr: *mut T) {
        if self.in_tx {
            let addr = ptr as usize;
            self.add_cleanup(move |h| {
                // SAFETY: forwarded from the caller's contract on `tretire`.
                unsafe { h.participant.retire_raw(addr as *mut T) };
            });
        } else {
            // SAFETY: forwarded from the caller's contract.
            unsafe { self.participant.retire_raw(ptr) };
        }
    }

    /// Immediate retirement regardless of transaction state (used by cleanup
    /// closures themselves).
    ///
    /// # Safety
    /// Same contract as [`ThreadHandle::tretire`].
    pub unsafe fn retire_now<T: Send + 'static>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.participant.retire_raw(ptr) };
    }

    // ------------------------------------------------------------------
    // Transactional memory accesses (paper `nbtcLoad` / `nbtcCAS`)
    // ------------------------------------------------------------------

    #[inline]
    fn record_recent(&mut self, addr: usize, val: u64, cnt: u64) {
        self.recent[self.recent_pos % RECENT_LOADS] = (addr, val, cnt);
        self.recent_pos = self.recent_pos.wrapping_add(1);
    }

    /// Transactional load of a [`CasWord`].
    ///
    /// Outside a transaction this behaves like an ordinary atomic load except
    /// that it finalizes any descriptor it encounters (so non-transactional
    /// operations are never blocked by a stalled transaction).  Inside a
    /// transaction it additionally returns the transaction's own speculative
    /// value when one exists and remembers the observed counter for
    /// [`ThreadHandle::add_to_read_set`].
    pub fn nbtc_load(&mut self, obj: &CasWord) -> u64 {
        loop {
            let raw = obj.load_raw();
            let (val, cnt) = unpack(raw);
            if CasWord::counter_is_descriptor(cnt) {
                let desc_ptr = val as *const Desc;
                if self.in_tx && std::ptr::eq(desc_ptr, self.desc_ptr) {
                    // Seeing our own speculative write starts the speculation
                    // interval of the current operation (paper Sec. 2.2,
                    // second complication).
                    self.spec_interval = true;
                    if let Some((_, v)) = self.desc().speculative_value(self.serial, obj) {
                        let addr = obj as *const CasWord as usize;
                        self.record_recent(addr, v, OWN_SPECULATIVE);
                        return v;
                    }
                    // Inconsistent (should not happen): fall through and retry.
                    continue;
                }
                // SAFETY: descriptors live inside their TxManager, which is
                // kept alive by every structure and handle that can reach
                // this word.
                unsafe { (*desc_ptr).try_finalize(obj, raw) };
                self.mgr.stats.helps.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if self.in_tx {
                let addr = obj as *const CasWord as usize;
                self.record_recent(addr, val, cnt);
            }
            return val;
        }
    }

    /// Transactional CAS on a [`CasWord`] (paper `nbtcCAS`).
    ///
    /// `lin_pt` / `pub_pt` declare whether this CAS, if successful, is the
    /// linearization and/or publication point of the current operation.  A
    /// critical CAS (one inside the operation's speculation interval) is
    /// executed speculatively: the descriptor is installed in place of the
    /// value and the real update happens at commit time.
    pub fn nbtc_cas(
        &mut self,
        obj: &CasWord,
        expected: u64,
        desired: u64,
        lin_pt: bool,
        pub_pt: bool,
    ) -> bool {
        if !self.in_tx {
            // Instrumentation elided outside transactions: ordinary CAS that
            // finalizes any encountered descriptor first.
            loop {
                let raw = obj.load_raw();
                let (val, cnt) = unpack(raw);
                if CasWord::counter_is_descriptor(cnt) {
                    // SAFETY: see nbtc_load.
                    unsafe { (*(val as *const Desc)).try_finalize(obj, raw) };
                    self.mgr.stats.helps.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if val != expected {
                    return false;
                }
                if obj.raw().cas(raw, pack(desired, cnt.wrapping_add(2))) {
                    return true;
                }
                // The word changed under us; re-examine.
            }
        }
        loop {
            let raw = obj.load_raw();
            let (val, cnt) = unpack(raw);
            if CasWord::counter_is_descriptor(cnt) {
                let desc_ptr = val as *const Desc;
                if std::ptr::eq(desc_ptr, self.desc_ptr) {
                    // Operating on a word we already own speculatively.
                    self.spec_interval = true;
                    let desc = self.desc();
                    if let Some((idx, cur)) = desc.speculative_value(self.serial, obj) {
                        if cur != expected {
                            return false;
                        }
                        desc.update_new_val(idx, desired);
                        if lin_pt {
                            self.spec_interval = false;
                        }
                        return true;
                    }
                    continue;
                }
                // SAFETY: see nbtc_load.
                unsafe { (*desc_ptr).try_finalize(obj, raw) };
                self.mgr.stats.helps.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if val != expected {
                return false;
            }
            if pub_pt || lin_pt {
                self.spec_interval = true;
            }
            if self.spec_interval {
                // Critical CAS: install the descriptor.
                let desc = self.desc();
                let Some(idx) = desc.push_write(self.serial, obj, val, cnt, desired) else {
                    self.capacity_exceeded = true;
                    return false;
                };
                let installed = pack(desc.as_payload(), cnt.wrapping_add(1));
                if obj.raw().cas(raw, installed) {
                    if lin_pt {
                        self.spec_interval = false;
                    }
                    return true;
                }
                desc.kill_write(idx);
                return false;
            }
            // Non-critical CAS inside a transaction (e.g. helping an already
            // linearized operation): executed on the fly.
            return obj.raw().cas(raw, pack(desired, cnt.wrapping_add(2)));
        }
    }

    /// Marks the start of the current operation's speculation interval
    /// explicitly.  Structures whose publication point is not a CAS visible
    /// to `nbtc_cas` (rare) can call this directly.
    pub fn start_speculative_interval(&mut self) {
        if self.in_tx {
            self.spec_interval = true;
        }
    }

    /// Whether the current operation is inside its speculation interval.
    pub fn in_speculative_interval(&self) -> bool {
        self.spec_interval
    }
}

impl Drop for ThreadHandle {
    fn drop(&mut self) {
        if self.in_tx {
            // A handle dropped mid-transaction (e.g. due to a panic in glue
            // code) must not leave its descriptor installed anywhere.
            self.abort_internal();
        }
        self.mgr.slot_in_use[self.tid].store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_release_slots() {
        let mgr = TxManager::with_max_threads(2);
        let h1 = mgr.register();
        let h2 = mgr.register();
        assert_ne!(h1.tid(), h2.tid());
        drop(h1);
        let h3 = mgr.register();
        assert!(h3.tid() < 2);
        drop(h2);
        drop(h3);
    }

    #[test]
    fn single_word_transaction_commits() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(1);
        h.tx_begin();
        let v = h.nbtc_load(&w);
        assert_eq!(v, 1);
        assert!(h.nbtc_cas(&w, 1, 2, true, true));
        // Speculative: other (non-transactional) observers see a descriptor.
        assert_eq!(w.try_load_value(), None);
        assert!(h.tx_end().is_ok());
        assert_eq!(w.try_load_value(), Some(2));
        assert_eq!(mgr.stats().snapshot().0, 1);
    }

    #[test]
    fn abort_rolls_back_speculative_writes() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(1);
        h.tx_begin();
        assert!(h.nbtc_cas(&w, 1, 2, true, true));
        let err = h.tx_abort();
        assert_eq!(err, TxError::Explicit);
        assert_eq!(w.try_load_value(), Some(1));
        assert!(!h.in_tx());
    }

    #[test]
    fn read_validation_detects_conflicting_write() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let mut other = mgr.register();
        let w = CasWord::new(1);
        let target = CasWord::new(10);
        h.tx_begin();
        let v = h.nbtc_load(&w);
        h.add_to_read_set(&w, v);
        // A conflicting non-transactional write invalidates the read.
        assert!(other.nbtc_cas(&w, 1, 5, true, true));
        assert!(h.nbtc_cas(&target, 10, 11, true, true));
        assert_eq!(h.tx_end(), Err(TxError::Conflict));
        // The speculative write to `target` must have been rolled back.
        assert_eq!(target.try_load_value(), Some(10));
    }

    #[test]
    fn own_speculative_values_are_visible_within_tx() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(1);
        h.tx_begin();
        assert!(h.nbtc_cas(&w, 1, 2, true, true));
        assert_eq!(h.nbtc_load(&w), 2, "same tx must see its own write");
        // Read of own speculative value does not poison the read set.
        h.add_to_read_set(&w, 2);
        assert!(h.nbtc_cas(&w, 2, 3, true, true));
        assert!(h.tx_end().is_ok());
        assert_eq!(w.try_load_value(), Some(3));
    }

    #[test]
    fn foreign_descriptor_is_aborted_eagerly() {
        let mgr = TxManager::new();
        let mut a = mgr.register();
        let mut b = mgr.register();
        let w = CasWord::new(1);
        a.tx_begin();
        assert!(a.nbtc_cas(&w, 1, 2, true, true));
        // b, running non-transactionally, encounters a's descriptor, aborts
        // the InPrep transaction, and proceeds.
        assert!(b.nbtc_cas(&w, 1, 9, true, true));
        assert_eq!(w.try_load_value(), Some(9));
        // a's commit must now fail.
        assert_eq!(a.tx_end(), Err(TxError::Conflict));
        assert_eq!(w.try_load_value(), Some(9));
    }

    #[test]
    fn run_retries_conflicts_and_returns_value() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(0);
        let mut attempts = 0;
        let out: TxResult<u64> = h.run(|h| {
            attempts += 1;
            let v = h.nbtc_load(&w);
            if attempts == 1 {
                // Simulate a conflict on the first attempt.
                return Err(TxError::Conflict);
            }
            assert!(h.nbtc_cas(&w, v, v + 1, true, true));
            Ok(v + 1)
        });
        assert_eq!(out, Ok(1));
        assert!(attempts >= 2);
        assert_eq!(w.try_load_value(), Some(1));
    }

    #[test]
    fn run_propagates_explicit_abort() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(5);
        let out: TxResult<()> = h.run(|h| {
            assert!(h.nbtc_cas(&w, 5, 6, true, true));
            Err(h.tx_abort())
        });
        assert_eq!(out, Err(TxError::Explicit));
        assert_eq!(w.try_load_value(), Some(5));
    }

    #[test]
    fn tnew_is_freed_on_abort() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        h.tx_begin();
        let p = h.tnew(123u64);
        assert_eq!(unsafe { *p }, 123);
        let _ = h.tx_abort();
        // No leak: Miri/asan would flag a double free if tnew's rollback were
        // wrong; here we just assert the transaction state is clean.
        assert!(!h.in_tx());
    }

    #[test]
    fn cleanups_run_only_after_commit() {
        use std::cell::Cell;
        use std::rc::Rc;
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(0);

        let ran = Rc::new(Cell::new(0));
        let r2 = Rc::clone(&ran);
        h.tx_begin();
        assert!(h.nbtc_cas(&w, 0, 1, true, true));
        h.add_cleanup(move |_| r2.set(r2.get() + 1));
        assert_eq!(ran.get(), 0, "cleanup must not run before commit");
        assert!(h.tx_end().is_ok());
        assert_eq!(ran.get(), 1);

        // On abort the cleanup must never run.
        let r3 = Rc::clone(&ran);
        h.tx_begin();
        h.add_cleanup(move |_| r3.set(r3.get() + 100));
        let _ = h.tx_abort();
        assert_eq!(ran.get(), 1);

        // Outside a transaction the closure runs immediately.
        let r4 = Rc::clone(&ran);
        h.add_cleanup(move |_| r4.set(r4.get() + 10));
        assert_eq!(ran.get(), 11);
    }

    #[test]
    fn epoch_validation_aborts_cross_epoch_transactions() {
        let mgr = TxManager::new();
        mgr.set_epoch_validation(true);
        let mut h = mgr.register();
        let w = CasWord::new(0);
        h.tx_begin();
        assert_eq!(h.snapshot_epoch(), 0);
        assert!(h.nbtc_cas(&w, 0, 1, true, true));
        // The persistence epoch advances before the transaction commits.
        mgr.advance_epoch();
        assert_eq!(h.tx_end(), Err(TxError::Conflict));
        assert_eq!(w.try_load_value(), Some(0));
        // A retry in the new epoch succeeds.
        h.tx_begin();
        assert_eq!(h.snapshot_epoch(), 1);
        assert!(h.nbtc_cas(&w, 0, 1, true, true));
        assert!(h.tx_end().is_ok());
    }

    #[test]
    fn non_critical_cas_inside_tx_takes_effect_immediately() {
        let mgr = TxManager::new();
        let mut h = mgr.register();
        let w = CasWord::new(7);
        h.tx_begin();
        // Not a publication or linearization point and no speculation
        // interval started: helping CASes execute on the fly.
        assert!(h.nbtc_cas(&w, 7, 8, false, false));
        assert_eq!(w.try_load_value(), Some(8));
        let _ = h.tx_abort();
        // The non-critical CAS is NOT rolled back (it helped an operation
        // that had already linearized).
        assert_eq!(w.try_load_value(), Some(8));
    }

    #[test]
    fn concurrent_counter_increments_are_atomic() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 2_000;
        let mgr = TxManager::new();
        let w = Arc::new(CasWord::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let mgr = Arc::clone(&mgr);
            let w = Arc::clone(&w);
            handles.push(std::thread::spawn(move || {
                let mut h = mgr.register();
                for _ in 0..PER_THREAD {
                    loop {
                        let done: TxResult<bool> = h.run(|h| {
                            let v = h.nbtc_load(&w);
                            Ok(h.nbtc_cas(&w, v, v + 1, true, true))
                        });
                        if done.unwrap() {
                            break;
                        }
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(w.try_load_value(), Some((THREADS * PER_THREAD) as u64));
    }

    #[test]
    fn two_word_transfer_preserves_sum() {
        // The canonical Fig. 3 scenario: transfer between two "accounts" with
        // concurrent transfers in both directions; the sum is invariant.
        const THREADS: usize = 4;
        const PER_THREAD: usize = 1_000;
        let mgr = TxManager::new();
        let a = Arc::new(CasWord::new(1_000));
        let b = Arc::new(CasWord::new(1_000));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let mgr = Arc::clone(&mgr);
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut h = mgr.register();
                let (from, to) = if t % 2 == 0 { (a, b) } else { (b, a) };
                for _ in 0..PER_THREAD {
                    let _ = h.run(|h| {
                        let x = h.nbtc_load(&from);
                        let y = h.nbtc_load(&to);
                        if x == 0 {
                            return Err(h.tx_abort());
                        }
                        if !h.nbtc_cas(&from, x, x - 1, true, true) {
                            return Err(TxError::Conflict);
                        }
                        if !h.nbtc_cas(&to, y, y + 1, true, true) {
                            return Err(TxError::Conflict);
                        }
                        Ok(())
                    });
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        let total = a.try_load_value().unwrap() + b.try_load_value().unwrap();
        assert_eq!(total, 2_000);
    }
}
