//! Transaction error types.
//!
//! The paper's C++ API signals aborts by throwing `TransactionAborted`; in
//! Rust the same information travels through `Result`s.

use std::fmt;

/// Reason a Medley transaction did not commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// The transaction lost a conflict (another thread aborted it, or read-set
    /// validation failed at commit time).  `TxManager::run` retries these.
    Conflict,
    /// The programmer called `tx_abort` explicitly (e.g. insufficient funds in
    /// the running example of Fig. 3).  `TxManager::run` does *not* retry.
    Explicit,
    /// The transaction touched more distinct words than a descriptor can
    /// track.  Retrying will not help; restructure the transaction.
    CapacityExceeded,
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Conflict => write!(f, "transaction aborted due to a conflict"),
            TxError::Explicit => write!(f, "transaction aborted explicitly by the program"),
            TxError::CapacityExceeded => {
                write!(
                    f,
                    "transaction exceeded the descriptor read/write-set capacity"
                )
            }
        }
    }
}

impl std::error::Error for TxError {}

/// Convenience alias used throughout the transactional data structures.
pub type TxResult<T> = Result<T, TxError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TxError::Conflict.to_string().contains("conflict"));
        assert!(TxError::Explicit.to_string().contains("explicitly"));
        assert!(TxError::CapacityExceeded.to_string().contains("capacity"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(TxError::Conflict);
    }
}
