//! Transaction error types.
//!
//! The paper's C++ API signals aborts by throwing `TransactionAborted`; in
//! Rust the same information travels through `Result`s.  The user-facing
//! layer splits the information in two:
//!
//! * [`Abort`] is the value a transaction body returns to its enclosing
//!   [`ThreadHandle::run`](crate::ThreadHandle::run) loop.  It can only be
//!   obtained from [`Txn::abort`](crate::Txn::abort), so producing an
//!   `Err(Abort)` requires having aborted a transaction; `run` closes the
//!   current transaction itself if it is somehow still open.
//! * [`TxError`] is what `run` (or a manual [`Txn::commit`](crate::Txn::commit))
//!   reports to the caller once the retry policy has run its course.

use std::fmt;

/// Reason a Medley transaction did not commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// The transaction lost a conflict (another thread aborted it, or read-set
    /// validation failed at commit time).  [`ThreadHandle::run`] retries
    /// these.
    ///
    /// [`ThreadHandle::run`]: crate::ThreadHandle::run
    Conflict,
    /// The body aborted explicitly via [`Txn::abort`] with
    /// [`AbortReason::Explicit`] (e.g. insufficient funds in the running
    /// example of Fig. 3).  Never retried.
    ///
    /// [`Txn::abort`]: crate::Txn::abort
    Explicit,
    /// The transaction touched more distinct words than a descriptor can
    /// track.  Retrying will not help; restructure the transaction.
    CapacityExceeded,
    /// The [`RunConfig`](crate::RunConfig) retry budget was exhausted before
    /// the transaction could commit.  Only produced when a maximum retry
    /// count is configured.
    RetriesExhausted,
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Conflict => write!(f, "transaction aborted due to a conflict"),
            TxError::Explicit => write!(f, "transaction aborted explicitly by the program"),
            TxError::CapacityExceeded => {
                write!(
                    f,
                    "transaction exceeded the descriptor read/write-set capacity"
                )
            }
            TxError::RetriesExhausted => {
                write!(f, "transaction retry budget exhausted before commit")
            }
        }
    }
}

impl std::error::Error for TxError {}

/// Convenience alias used throughout the transactional data structures.
pub type TxResult<T> = Result<T, TxError>;

/// Why a transaction body asked for its transaction to be aborted
/// (the argument of [`Txn::abort`](crate::Txn::abort)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// Business-logic rollback: the body decided the transaction must not
    /// happen (insufficient funds, precondition failed).
    /// [`ThreadHandle::run`](crate::ThreadHandle::run) does **not** retry and
    /// returns [`TxError::Explicit`].
    Explicit,
    /// The body observed inconsistent speculation (a failed critical CAS, a
    /// value that cannot be current) and wants a fresh attempt.
    /// [`ThreadHandle::run`](crate::ThreadHandle::run) retries with backoff.
    Conflict,
}

/// Token witnessing a transaction abort.
///
/// An `Abort` can only be produced by [`Txn::abort`](crate::Txn::abort) —
/// there is no public constructor — so a body returning `Err(Abort)` has
/// aborted a transaction to get one.  This replaces the old
/// `return Err(h.tx_abort())` idiom, whose correctness depended on the
/// programmer remembering to call `tx_abort` rather than fabricating a
/// `TxError`.  (The token is `Copy` and not tied to one transaction; if a
/// *stale* token from an earlier attempt is returned while the current
/// transaction is still open, [`ThreadHandle::run`](crate::ThreadHandle::run)
/// closes the transaction itself under the token's reason.)
#[derive(Debug, Clone, Copy)]
pub struct Abort {
    reason: AbortReason,
}

impl Abort {
    pub(crate) fn new(reason: AbortReason) -> Self {
        Self { reason }
    }

    /// The reason passed to [`Txn::abort`](crate::Txn::abort).
    pub fn reason(&self) -> AbortReason {
        self.reason
    }
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            AbortReason::Explicit => write!(f, "transaction aborted by the program"),
            AbortReason::Conflict => write!(f, "transaction aborted for retry"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TxError::Conflict.to_string().contains("conflict"));
        assert!(TxError::Explicit.to_string().contains("explicitly"));
        assert!(TxError::CapacityExceeded.to_string().contains("capacity"));
        assert!(TxError::RetriesExhausted.to_string().contains("retry"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(TxError::Conflict);
    }

    #[test]
    fn abort_reports_its_reason() {
        let a = Abort::new(AbortReason::Explicit);
        assert_eq!(a.reason(), AbortReason::Explicit);
        let b = Abort::new(AbortReason::Conflict);
        assert_eq!(b.reason(), AbortReason::Conflict);
    }
}
