//! Epoch-based safe memory reclamation (SMR).
//!
//! The paper's `Composable` base class provides `tRetire` backed by
//! epoch-based reclamation (Fraser \[10], Hart et al. \[17], RCU \[27]); every
//! NBTC structure relies on it so that a node is never freed while another
//! thread may still hold a private reference to it.  We implement the classic
//! three-generation scheme:
//!
//! * a global epoch counter advances only when every *pinned* participant has
//!   observed the current epoch;
//! * retired objects are tagged with the epoch in which they were retired and
//!   freed once the global epoch has advanced twice past it.
//!
//! A participant stays pinned for the duration of an entire Medley
//! transaction (not just a single operation): the transaction's read and
//! write sets hold raw pointers into data-structure nodes between constituent
//! operations, so those nodes must not be reclaimed until the transaction has
//! committed or aborted.

use crate::util::sync::Mutex;
use crate::util::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of retirements between attempts to advance the global epoch.
const ADVANCE_THRESHOLD: usize = 64;

/// A type-erased retired allocation awaiting reclamation.
struct Retired {
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
    epoch: u64,
}

// SAFETY: the retired pointer is only dropped by the owning participant, and
// ownership of the allocation was transferred to the bag at retire time.
unsafe impl Send for Retired {}

unsafe fn drop_boxed<T>(ptr: *mut u8) {
    // SAFETY: forwarded from the caller's contract: `ptr` originated from
    // `Box::<T>::into_raw` and is uniquely owned by the limbo bag.
    drop(unsafe { Box::from_raw(ptr as *mut T) });
}

/// Shared state of the reclamation domain.
pub struct Collector {
    global_epoch: CachePadded<AtomicU64>,
    slots: Box<[CachePadded<Slot>]>,
    registered: AtomicUsize,
    /// Garbage inherited from exited participants whose bags were not yet
    /// safe to free; drained opportunistically by live participants and
    /// unconditionally when the collector itself is dropped.
    orphans: Mutex<Vec<Retired>>,
    /// Lock-free emptiness hint for `orphans`, so the per-retirement
    /// `collect` path never touches the shared mutex in the common case
    /// (no exited-thread garbage pending).
    orphan_count: AtomicUsize,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("global_epoch", &self.global_epoch.load(Ordering::Relaxed))
            .field("registered", &self.registered.load(Ordering::Relaxed))
            .finish()
    }
}

#[derive(Debug)]
struct Slot {
    /// Epoch the participant was pinned in, or `IDLE` when not pinned.
    local_epoch: AtomicU64,
    in_use: AtomicBool,
}

const IDLE: u64 = u64::MAX;

impl Collector {
    /// Creates a collector able to serve up to `max_participants` concurrently
    /// registered threads.
    pub fn new(max_participants: usize) -> Arc<Self> {
        let slots = (0..max_participants)
            .map(|_| {
                CachePadded::new(Slot {
                    local_epoch: AtomicU64::new(IDLE),
                    in_use: AtomicBool::new(false),
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arc::new(Self {
            global_epoch: CachePadded::new(AtomicU64::new(2)),
            slots,
            registered: AtomicUsize::new(0),
            orphans: Mutex::new(Vec::new()),
            orphan_count: AtomicUsize::new(0),
        })
    }

    /// Current value of the global epoch (primarily for tests and stats).
    pub fn global_epoch(&self) -> u64 {
        self.global_epoch.load(Ordering::Acquire)
    }

    /// Number of currently registered participants.
    pub fn participants(&self) -> usize {
        self.registered.load(Ordering::Relaxed)
    }

    /// Registers the calling thread, returning a [`Participant`] handle.
    ///
    /// # Panics
    /// Panics if `max_participants` handles are already live.
    pub fn register(self: &Arc<Self>) -> Participant {
        for (idx, slot) in self.slots.iter().enumerate() {
            if slot
                .in_use
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.registered.fetch_add(1, Ordering::Relaxed);
                return Participant {
                    collector: Arc::clone(self),
                    slot: idx,
                    pin_depth: 0,
                    bag: Vec::new(),
                    retired_since_advance: 0,
                };
            }
        }
        panic!("ebr::Collector: participant slots exhausted");
    }

    /// Attempts to advance the global epoch.  Succeeds only if every pinned
    /// participant has already observed the current epoch.
    fn try_advance(&self) -> u64 {
        let global = self.global_epoch.load(Ordering::Acquire);
        for slot in self.slots.iter() {
            if !slot.in_use.load(Ordering::Acquire) {
                continue;
            }
            let local = slot.local_epoch.load(Ordering::Acquire);
            if local != IDLE && local != global {
                return global; // a straggler pins an older epoch
            }
        }
        // Multiple threads may race here; the CAS makes the advance idempotent.
        let _ = self.global_epoch.compare_exchange(
            global,
            global + 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        self.global_epoch.load(Ordering::Acquire)
    }

    /// Frees every orphaned allocation whose grace period has elapsed.
    /// Cheap when there are none: a relaxed counter check skips the lock.
    fn drain_orphans(this: &Arc<Self>, global: u64) {
        if this.orphan_count.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut orphans = this.orphans.lock();
        let mut i = 0;
        while i < orphans.len() {
            if orphans[i].epoch + 2 <= global {
                let r = orphans.swap_remove(i);
                // SAFETY: ownership was transferred to the orphan list by an
                // exiting participant and the grace period has elapsed.
                unsafe { (r.drop_fn)(r.ptr) };
            } else {
                i += 1;
            }
        }
        this.orphan_count.store(orphans.len(), Ordering::Release);
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        // No participant can exist here (each holds an `Arc<Collector>`), so
        // every remaining orphan is unreachable and safe to free.
        for r in self.orphans.lock().drain(..) {
            // SAFETY: as above; the collector is the sole owner now.
            unsafe { (r.drop_fn)(r.ptr) };
        }
    }
}

/// A per-thread handle onto a [`Collector`].
///
/// The handle is **not** `Sync`; each thread owns its own.  Dropping the
/// handle flushes (frees) any garbage that is already safe and leaks the
/// remainder to the collector's final drop (bounded by the last two epochs).
pub struct Participant {
    collector: Arc<Collector>,
    slot: usize,
    pin_depth: usize,
    bag: Vec<Retired>,
    retired_since_advance: usize,
}

impl std::fmt::Debug for Participant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Participant")
            .field("slot", &self.slot)
            .field("pin_depth", &self.pin_depth)
            .field("pending", &self.bag.len())
            .finish()
    }
}

impl Participant {
    /// Pins the participant to the current epoch.  Pins nest; only the
    /// outermost pin/unpin pair touches shared state.
    #[inline]
    pub fn pin(&mut self) {
        if self.pin_depth == 0 {
            let g = self.collector.global_epoch.load(Ordering::Acquire);
            self.collector.slots[self.slot]
                .local_epoch
                .store(g, Ordering::SeqCst);
        }
        self.pin_depth += 1;
    }

    /// Current pin-nesting depth (diagnostics/tests).
    #[cfg(test)]
    pub(crate) fn pin_depth(&self) -> usize {
        self.pin_depth
    }

    /// Releases one level of pinning.
    #[inline]
    pub fn unpin(&mut self) {
        debug_assert!(self.pin_depth > 0, "unpin without matching pin");
        self.pin_depth -= 1;
        if self.pin_depth == 0 {
            self.collector.slots[self.slot]
                .local_epoch
                .store(IDLE, Ordering::Release);
        }
    }

    /// Whether the participant currently holds at least one pin.
    pub fn is_pinned(&self) -> bool {
        self.pin_depth > 0
    }

    /// Retires a boxed allocation; it will be dropped once no thread can
    /// still hold a reference obtained before the retirement.
    pub fn retire<T: Send + 'static>(&mut self, boxed: Box<T>) {
        let epoch = self.collector.global_epoch.load(Ordering::Acquire);
        self.bag.push(Retired {
            ptr: Box::into_raw(boxed) as *mut u8,
            drop_fn: drop_boxed::<T>,
            epoch,
        });
        self.retired_since_advance += 1;
        if self.retired_since_advance >= ADVANCE_THRESHOLD {
            self.retired_since_advance = 0;
            self.collector.try_advance();
        }
        self.collect();
    }

    /// Retires a raw pointer previously produced by `Box::into_raw`.
    ///
    /// # Safety
    /// `ptr` must be a valid, uniquely-owned `Box<T>` allocation that no other
    /// thread will free.
    pub unsafe fn retire_raw<T: Send + 'static>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded from the caller's contract.
        self.retire(unsafe { Box::from_raw(ptr) });
    }

    /// Frees every retired allocation that is at least two epochs old, both
    /// in this participant's bag and among garbage inherited from exited
    /// participants.
    pub fn collect(&mut self) {
        let global = self.collector.global_epoch.load(Ordering::Acquire);
        let mut i = 0;
        while i < self.bag.len() {
            if self.bag[i].epoch + 2 <= global {
                let r = self.bag.swap_remove(i);
                // SAFETY: the allocation was transferred to us at retire time
                // and the grace period (two epoch advances) has elapsed.
                unsafe { (r.drop_fn)(r.ptr) };
            } else {
                i += 1;
            }
        }
        Collector::drain_orphans(&self.collector, global);
    }

    /// Forces epoch advancement attempts until the local bag is empty or no
    /// further progress is possible (used by tests and shutdown paths).
    pub fn flush(&mut self) {
        for _ in 0..4 {
            self.collector.try_advance();
            self.collect();
            if self.bag.is_empty() {
                break;
            }
        }
    }

    /// Number of allocations waiting in this participant's limbo bag.
    pub fn pending(&self) -> usize {
        self.bag.len()
    }

    /// The collector this participant belongs to.
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }
}

impl Drop for Participant {
    fn drop(&mut self) {
        // Make a best-effort attempt to drain the bag, then release the slot.
        self.collector.slots[self.slot]
            .local_epoch
            .store(IDLE, Ordering::Release);
        self.flush();
        // Anything still pending is freed here: no new references can be
        // created once the slot shows IDLE and the remaining items were
        // retired at least one full operation ago by this thread.  To stay
        // conservative we only do this when no other participant is pinned.
        let anyone_pinned = self.collector.slots.iter().enumerate().any(|(i, s)| {
            i != self.slot
                && s.in_use.load(Ordering::Acquire)
                && s.local_epoch.load(Ordering::Acquire) != IDLE
        });
        if !anyone_pinned {
            for r in self.bag.drain(..) {
                // SAFETY: no participant is pinned, so no thread holds a
                // reference obtained before these retirements.
                unsafe { (r.drop_fn)(r.ptr) };
            }
        } else {
            // Hand the stragglers to the collector: live participants drain
            // them once the grace period elapses, and the collector's own
            // drop frees whatever is left, so an exiting thread leaks
            // nothing.
            let mut orphans = self.collector.orphans.lock();
            orphans.append(&mut std::mem::take(&mut self.bag));
            self.collector
                .orphan_count
                .store(orphans.len(), Ordering::Release);
        }
        self.collector.slots[self.slot]
            .in_use
            .store(false, Ordering::Release);
        self.collector.registered.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    struct Tracked(#[allow(dead_code)] u64);
    impl Drop for Tracked {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn retire_eventually_drops() {
        DROPS.store(0, Ordering::SeqCst);
        let c = Collector::new(4);
        let mut p = c.register();
        p.pin();
        for i in 0..10 {
            p.retire(Box::new(Tracked(i)));
        }
        p.unpin();
        p.flush();
        assert_eq!(DROPS.load(Ordering::SeqCst), 10);
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn pinned_straggler_blocks_reclamation() {
        let c = Collector::new(4);
        let mut a = c.register();
        let mut b = c.register();
        b.pin(); // straggler pinned at the current epoch
        let before = c.global_epoch();
        a.pin();
        a.retire(Box::new(42u64));
        a.unpin();
        // Straggler still pinned at `before`; epoch may advance at most once
        // past it, so the item (retired at `before`) cannot yet be freed.
        a.flush();
        assert!(c.global_epoch() <= before + 1);
        assert_eq!(a.pending(), 1);
        b.unpin();
        a.flush();
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn nested_pins() {
        let c = Collector::new(2);
        let mut p = c.register();
        p.pin();
        p.pin();
        assert!(p.is_pinned());
        p.unpin();
        assert!(p.is_pinned());
        p.unpin();
        assert!(!p.is_pinned());
    }

    #[test]
    fn registration_slots_recycle() {
        let c = Collector::new(1);
        {
            let _p = c.register();
            assert_eq!(c.participants(), 1);
        }
        assert_eq!(c.participants(), 0);
        let _p2 = c.register(); // would panic if the slot leaked
    }

    #[test]
    fn concurrent_retire_stress() {
        DROPS.store(0, Ordering::SeqCst);
        const THREADS: usize = 4;
        const PER_THREAD: usize = 500;
        let c = Collector::new(THREADS);
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let mut p = c.register();
                for i in 0..PER_THREAD {
                    p.pin();
                    p.retire(Box::new(Tracked(i as u64)));
                    p.unpin();
                }
                p.flush();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Bags of threads that exited while others were still pinned were
        // handed to the collector; any live participant drains them.
        let mut p = c.register();
        p.flush();
        drop(p);
        assert_eq!(DROPS.load(Ordering::SeqCst), THREADS * PER_THREAD);
    }
}
