//! `CasObj` / `CasWord`: the augmented atomic word of Medley.
//!
//! Every 64-bit word at which a *critical* memory access may occur (paper
//! Def. 3) is augmented with a 64-bit counter, and the pair is manipulated
//! with 128-bit CAS (paper Sec. 3.2, Fig. 4):
//!
//! * counter **even** ⇒ the low half holds a real value;
//! * counter **odd**  ⇒ the low half holds a pointer to the [`Desc`](crate::Desc)
//!   (descriptor) of the transaction that currently owns the word.
//!
//! Installing a descriptor increments the counter (even → odd); uninstalling
//! increments it again (odd → even).  Plain (non-transactional) CASes bump
//! the counter by two so that read-set validation is ABA-safe.
//!
//! [`CasWord`] is the untyped 64-bit payload version used by the runtime;
//! [`CasObj<T>`] is a thin typed wrapper mirroring the paper's
//! `CASObj<T>` template for pointer-shaped payloads.

use crate::atomic128::{pack, unpack, AtomicU128};
use std::marker::PhantomData;

/// The augmented atomic word: `(value: u64, counter: u64)` manipulated as one
/// 128-bit unit.
#[repr(transparent)]
#[derive(Debug, Default)]
pub struct CasWord {
    inner: AtomicU128,
}

impl CasWord {
    /// Creates a word holding `value` with counter 0.
    pub const fn new(value: u64) -> Self {
        Self {
            inner: AtomicU128::new(value as u128),
        }
    }

    /// Access to the raw 128-bit atomic (used by the descriptor machinery).
    #[inline]
    pub(crate) fn raw(&self) -> &AtomicU128 {
        &self.inner
    }

    /// Atomically loads `(value, counter)`.
    #[inline]
    pub fn load_parts(&self) -> (u64, u64) {
        unpack(self.inner.load())
    }

    /// Atomically loads the full 128-bit representation.
    #[inline]
    pub fn load_raw(&self) -> u128 {
        self.inner.load()
    }

    /// Whether a counter value indicates an installed descriptor.
    #[inline]
    pub fn counter_is_descriptor(counter: u64) -> bool {
        counter & 1 == 1
    }

    /// Non-atomic-looking initialization store: sets the value, preserving the
    /// counter.  Intended for nodes that are not yet published to other
    /// threads (e.g. setting `new_node.next` before the linearizing CAS); it
    /// is nonetheless implemented with an atomic CAS loop so that misuse can
    /// not tear the word.
    pub fn store_value(&self, value: u64) {
        loop {
            let cur = self.inner.load();
            let (_, cnt) = unpack(cur);
            if self.inner.cas(cur, pack(value, cnt)) {
                return;
            }
        }
    }

    /// Plain (non-transactional, non-critical) CAS on the value.
    ///
    /// Fails if a descriptor is currently installed or the value does not
    /// match.  On success the counter advances by two so the word stays in
    /// the "real value" parity and read-set validation observes the change.
    pub fn cas_value(&self, expected: u64, desired: u64) -> bool {
        let cur = self.inner.load();
        let (val, cnt) = unpack(cur);
        if Self::counter_is_descriptor(cnt) || val != expected {
            return false;
        }
        self.inner.cas(cur, pack(desired, cnt.wrapping_add(2)))
    }

    /// ABA-safe plain CAS: succeeds only if the word holds exactly the
    /// `(expected, expected_cnt)` pair, advancing the counter by two.
    ///
    /// This is the commit instruction of the single-CAS direct-commit fast
    /// path: a transaction whose write set is one word replaces the
    /// remembered pre-image with the new value in a single step, staying in
    /// the even-counter ("real value") parity exactly as a non-transactional
    /// [`CasWord::cas_value`] would.  The explicit counter makes the check
    /// immune to ABA on the value.
    pub fn cas_value_counted(&self, expected: u64, expected_cnt: u64, desired: u64) -> bool {
        if Self::counter_is_descriptor(expected_cnt) {
            return false;
        }
        self.inner.cas(
            pack(expected, expected_cnt),
            pack(desired, expected_cnt.wrapping_add(2)),
        )
    }

    /// Plain load of the value; returns `None` while a descriptor is
    /// installed.  Non-transactional readers that must not help (e.g. the
    /// un-instrumented "Original" baseline of Fig. 10) use this.
    pub fn try_load_value(&self) -> Option<u64> {
        let (val, cnt) = self.load_parts();
        if Self::counter_is_descriptor(cnt) {
            None
        } else {
            Some(val)
        }
    }

    /// Spins until the word holds a real value and returns it, without
    /// helping.  Only used in tests and single-threaded tooling.
    pub fn load_value_spin(&self) -> u64 {
        loop {
            if let Some(v) = self.try_load_value() {
                return v;
            }
            std::hint::spin_loop();
        }
    }
}

/// Conversion between a payload type and the 64-bit representation stored in
/// a [`CasWord`].
///
/// Implementations exist for `u64`, `usize`, and raw pointers.  Pointer
/// payloads may carry low-order tag bits (e.g. deletion marks) because nodes
/// are at least 8-byte aligned; tagging is the structure's business, the
/// trait only transports the bits.
pub trait Word: Copy {
    /// Converts the payload to its stored representation.
    fn into_bits(self) -> u64;
    /// Recovers the payload from its stored representation.
    fn from_bits(bits: u64) -> Self;
}

impl Word for u64 {
    fn into_bits(self) -> u64 {
        self
    }
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Word for usize {
    fn into_bits(self) -> u64 {
        self as u64
    }
    fn from_bits(bits: u64) -> Self {
        bits as usize
    }
}

impl<T> Word for *mut T {
    fn into_bits(self) -> u64 {
        self as u64
    }
    fn from_bits(bits: u64) -> Self {
        bits as *mut T
    }
}

impl<T> Word for *const T {
    fn into_bits(self) -> u64 {
        self as u64
    }
    fn from_bits(bits: u64) -> Self {
        bits as *const T
    }
}

/// Typed wrapper over [`CasWord`], mirroring the paper's `CASObj<T>`.
#[repr(transparent)]
#[derive(Debug, Default)]
pub struct CasObj<T: Word> {
    word: CasWord,
    _marker: PhantomData<T>,
}

impl<T: Word> CasObj<T> {
    /// Creates a typed word holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            word: CasWord::new(value.into_bits()),
            _marker: PhantomData,
        }
    }

    /// The underlying untyped word (what the transactional runtime operates
    /// on).
    #[inline]
    pub fn word(&self) -> &CasWord {
        &self.word
    }

    /// Typed plain load; `None` while a descriptor is installed.
    pub fn try_load(&self) -> Option<T> {
        self.word.try_load_value().map(T::from_bits)
    }

    /// Typed initialization store (see [`CasWord::store_value`]).
    pub fn store(&self, value: T) {
        self.word.store_value(value.into_bits());
    }

    /// Typed plain CAS (see [`CasWord::cas_value`]).
    pub fn cas(&self, expected: T, desired: T) -> bool {
        self.word
            .cas_value(expected.into_bits(), desired.into_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_word_has_even_counter_and_value() {
        let w = CasWord::new(42);
        assert_eq!(w.load_parts(), (42, 0));
        assert_eq!(w.try_load_value(), Some(42));
    }

    #[test]
    fn cas_value_bumps_counter_by_two() {
        let w = CasWord::new(1);
        assert!(w.cas_value(1, 2));
        assert_eq!(w.load_parts(), (2, 2));
        assert!(!w.cas_value(1, 3), "stale expected must fail");
        assert_eq!(w.load_parts(), (2, 2));
    }

    #[test]
    fn store_value_preserves_counter() {
        let w = CasWord::new(1);
        assert!(w.cas_value(1, 2));
        w.store_value(9);
        assert_eq!(w.load_parts(), (9, 2));
    }

    #[test]
    fn descriptor_parity_is_detected() {
        assert!(!CasWord::counter_is_descriptor(0));
        assert!(CasWord::counter_is_descriptor(1));
        assert!(!CasWord::counter_is_descriptor(2));
    }

    #[test]
    fn try_load_value_hides_descriptors() {
        let w = CasWord::new(7);
        // Simulate an installed descriptor: odd counter.
        assert!(w.raw().cas(pack(7, 0), pack(0xdead_beef, 1)));
        assert_eq!(w.try_load_value(), None);
        assert!(
            !w.cas_value(0xdead_beef, 5),
            "plain CAS must not touch descriptors"
        );
        // Uninstall.
        assert!(w.raw().cas(pack(0xdead_beef, 1), pack(8, 2)));
        assert_eq!(w.try_load_value(), Some(8));
    }

    #[test]
    fn typed_casobj_roundtrips_pointers() {
        let boxed = Box::into_raw(Box::new(123u64));
        let obj: CasObj<*mut u64> = CasObj::new(std::ptr::null_mut());
        assert!(obj.cas(std::ptr::null_mut(), boxed));
        assert_eq!(obj.try_load(), Some(boxed));
        // Clean up.
        unsafe { drop(Box::from_raw(boxed)) };
    }

    #[test]
    fn word_trait_roundtrip() {
        assert_eq!(u64::from_bits(5u64.into_bits()), 5);
        assert_eq!(usize::from_bits(7usize.into_bits()), 7);
        let p: *const u32 = &10;
        assert_eq!(<*const u32>::from_bits(p.into_bits()), p);
    }
}
