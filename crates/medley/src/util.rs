//! Small concurrency utilities shared across the workspace: cache-line
//! padding and exponential backoff.
//!
//! These mirror the helpers every high-performance concurrent C++ codebase
//! (including the paper's) carries around; we implement them locally instead
//! of pulling in `crossbeam-utils` to keep the dependency surface minimal.

use std::ops::{Deref, DerefMut};

pub mod sync {
    //! A `parking_lot`-flavoured mutex over `std::sync::Mutex`.
    //!
    //! The workspace builds in offline containers with no registry access, so
    //! instead of depending on `parking_lot` the crates that need a plain
    //! blocking lock (the baselines `onefile`/`tdsl`, the `pmem` slab, and the
    //! non-x86_64 `AtomicU128` fallback) use this wrapper: `lock()` returns
    //! the guard directly and poisoning is ignored (a panicking holder does
    //! not make the data unusable for the benchmark baselines, matching
    //! `parking_lot` semantics).

    /// A mutual-exclusion lock whose `lock` returns the guard directly.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates a new mutex holding `value`.
        pub const fn new(value: T) -> Self {
            Self {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Acquires the lock, ignoring poisoning.
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            match self.inner.into_inner() {
                Ok(v) => v,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }
}

/// Pads and aligns a value to 128 bytes to avoid false sharing.
///
/// 128 bytes (two cache lines) is used rather than 64 because Intel
/// prefetchers pull adjacent line pairs; this matches `crossbeam`'s choice.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-aligned container.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Exponential backoff for contended retry loops.
///
/// Starts with a handful of `spin_loop` hints and escalates to
/// `thread::yield_now` once the exponent saturates, which is important on
/// machines with fewer cores than runnable threads (such as CI containers).
#[derive(Debug)]
pub struct Backoff {
    step: u32,
    limit: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Creates a fresh backoff counter with the default escalation cap.
    pub fn new() -> Self {
        Self::with_limit(Self::YIELD_LIMIT)
    }

    /// Creates a backoff counter whose exponent saturates at `limit`
    /// (clamped to the default maximum).  A limit of 0 makes every
    /// [`Backoff::backoff`] a single spin-loop hint — the cheapest polite
    /// retry — which latency-sensitive callers select through
    /// [`RunConfig::backoff_limit`](crate::RunConfig::backoff_limit).
    pub fn with_limit(limit: u32) -> Self {
        Self {
            step: 0,
            limit: limit.min(Self::YIELD_LIMIT),
        }
    }

    /// Resets the counter to its initial state.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Backs off, spinning for short waits and yielding for longer ones.
    pub fn backoff(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step < self.limit {
            self.step += 1;
        }
    }

    /// Backs off as [`Backoff::backoff`] would, but with the effective
    /// exponent reduced by `discount` steps — the karma-style contention
    /// policy uses this so transactions that have already invested many
    /// attempts wait less than fresh ones.  The internal step still advances
    /// normally, so the *undiscounted* ladder keeps escalating.  Returns
    /// `true` when the discount swallowed the wait entirely (the effective
    /// exponent bottomed out at zero while the nominal one had escalated),
    /// letting callers count how often seniority converted a wait into a
    /// near-immediate retry.
    pub fn backoff_discounted(&mut self, discount: u32) -> bool {
        let effective = self.step.saturating_sub(discount);
        if effective <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << effective) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step < self.limit {
            self.step += 1;
        }
        effective == 0 && self.step > 1
    }

    /// Returns `true` once the caller should consider parking or aborting
    /// rather than continuing to spin.
    pub fn is_completed(&self) -> bool {
        self.step >= self.limit
    }
}

/// A tiny, fast, seedable PRNG (xorshift64*), used where we need cheap
/// per-thread randomness (skiplist level generation, workload mixing) without
/// depending on `rand` in library crates.
#[derive(Debug, Clone)]
pub struct FastRng {
    state: u64,
}

impl FastRng {
    /// Creates a generator from a nonzero seed (zero is mapped to a fixed
    /// constant so the stream never degenerates).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_big_and_transparent() {
        let p = CachePadded::new(5u64);
        assert_eq!(*p, 5);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert_eq!(p.into_inner(), 5);
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..20 {
            b.backoff();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn fastrng_is_deterministic_and_bounded() {
        let mut a = FastRng::new(42);
        let mut b = FastRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = FastRng::new(7);
        for _ in 0..1000 {
            assert!(c.next_below(10) < 10);
        }
    }

    #[test]
    fn fastrng_zero_seed_is_usable() {
        let mut r = FastRng::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, y);
    }
}
