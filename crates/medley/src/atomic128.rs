//! A 128-bit atomic word.
//!
//! Medley's [`CasObj`](crate::casobj::CasObj) augments every CAS-able 64-bit
//! word with a 64-bit counter, and the pair must be read and compare-and-
//! swapped as a single unit (paper Sec. 3.2).  The Rust standard library does
//! not expose `AtomicU128`, so this module provides one:
//!
//! * on `x86_64` we issue `lock cmpxchg16b` through inline assembly (the
//!   instruction is present on every 64-bit Intel/AMD part manufactured since
//!   2006, and is what the paper's C++ implementation relies on);
//! * on other targets we fall back to a table of striped spin locks.  The
//!   fallback sacrifices nonblocking progress of the *emulation layer* but
//!   preserves linearizability, so all higher-level logic and all tests remain
//!   valid.
//!
//! Atomic loads are implemented as a `cmpxchg16b` with identical expected and
//! desired values, which is the canonical technique (an SSE 16-byte load is
//! not guaranteed atomic without AVX).

use std::cell::UnsafeCell;

/// A 16-byte-aligned 128-bit word supporting atomic load, store and CAS.
///
/// Only the operations Medley needs are provided; orderings are
/// sequentially consistent (the underlying `lock`-prefixed instruction is a
/// full barrier), which matches the paper's use of default `std::atomic`
/// operations.
#[repr(C, align(16))]
pub struct AtomicU128 {
    cell: UnsafeCell<u128>,
}

// SAFETY: all access to `cell` goes through atomic instructions (or the
// striped-lock fallback), so concurrent use from multiple threads is sound.
unsafe impl Send for AtomicU128 {}
unsafe impl Sync for AtomicU128 {}

impl Default for AtomicU128 {
    fn default() -> Self {
        Self::new(0)
    }
}

impl std::fmt::Debug for AtomicU128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicU128({:#034x})", self.load())
    }
}

impl AtomicU128 {
    /// Creates a new atomic 128-bit word holding `val`.
    pub const fn new(val: u128) -> Self {
        Self {
            cell: UnsafeCell::new(val),
        }
    }

    /// Atomically loads the value.
    #[inline]
    pub fn load(&self) -> u128 {
        // A CAS whose expected and desired values are equal never changes the
        // memory contents but always returns the value observed.
        self.compare_exchange_raw(0, 0)
    }

    /// Atomically stores `val`, unconditionally.
    #[inline]
    pub fn store(&self, val: u128) {
        let mut cur = self.load();
        loop {
            match self.compare_exchange(cur, val) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Atomically compares the current value with `expected` and, if equal,
    /// replaces it with `desired`.
    ///
    /// Returns `Ok(expected)` on success and `Err(actual)` with the value
    /// observed on failure.
    #[inline]
    pub fn compare_exchange(&self, expected: u128, desired: u128) -> Result<u128, u128> {
        let prev = self.compare_exchange_raw(expected, desired);
        if prev == expected {
            Ok(prev)
        } else {
            Err(prev)
        }
    }

    /// Returns `true` if the CAS from `expected` to `desired` succeeded.
    #[inline]
    pub fn cas(&self, expected: u128, desired: u128) -> bool {
        self.compare_exchange(expected, desired).is_ok()
    }

    #[cfg(target_arch = "x86_64")]
    #[inline]
    fn compare_exchange_raw(&self, expected: u128, desired: u128) -> u128 {
        let dst = self.cell.get();
        let exp_lo = expected as u64;
        let exp_hi = (expected >> 64) as u64;
        let des_lo = desired as u64;
        let des_hi = (desired >> 64) as u64;
        let out_lo: u64;
        let out_hi: u64;
        // SAFETY: `dst` is 16-byte aligned (repr(align(16))) and points to
        // memory owned by `self`.  `cmpxchg16b` is available on all x86_64
        // CPUs this crate targets.
        //
        // RBX handling: `cmpxchg16b` hard-codes RBX for the low desired
        // word, but RBX is LLVM-reserved and must hold its original value
        // again by the end of the template.  Every operand is pinned to an
        // explicit register here — an earlier version used `{ptr} = in(reg)`
        // and the allocator handed the *pointer* RBX itself, so the
        // `xchg` that installs the desired word clobbered the address and
        // the instruction dereferenced garbage (release-only segfaults).
        // With explicit registers the allocator cannot touch RBX, and the
        // template swaps it with RSI around the instruction.
        unsafe {
            core::arch::asm!(
                "xchg rbx, rsi",
                "lock cmpxchg16b [rdi]",
                "mov rbx, rsi",
                in("rdi") dst,
                inout("rsi") des_lo => _,
                inout("rax") exp_lo => out_lo,
                inout("rdx") exp_hi => out_hi,
                in("rcx") des_hi,
                options(nostack),
            );
        }
        ((out_hi as u128) << 64) | out_lo as u128
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[inline]
    fn compare_exchange_raw(&self, expected: u128, desired: u128) -> u128 {
        // Striped-lock fallback for targets without a native 16-byte CAS.
        let lock = fallback::lock_for(self.cell.get() as usize);
        let _guard = lock.lock();
        // SAFETY: the stripe lock serializes all access to this address.
        unsafe {
            let cur = *self.cell.get();
            if cur == expected {
                *self.cell.get() = desired;
            }
            cur
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod fallback {
    use crate::util::sync::Mutex;

    const STRIPES: usize = 64;
    static LOCKS: [Mutex<()>; STRIPES] = [const { Mutex::new(()) }; STRIPES];

    pub(super) fn lock_for(addr: usize) -> &'static Mutex<()> {
        // Mix the address so that neighbouring CasObjs map to different
        // stripes even though they are 16 bytes apart.
        let idx = (addr >> 4).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58;
        &LOCKS[idx as usize % STRIPES]
    }
}

/// Packs a `(low, high)` pair of 64-bit words into a single `u128`.
#[inline]
pub const fn pack(lo: u64, hi: u64) -> u128 {
    ((hi as u128) << 64) | lo as u128
}

/// Splits a `u128` into its `(low, high)` 64-bit halves.
#[inline]
pub const fn unpack(v: u128) -> (u64, u64) {
    (v as u64, (v >> 64) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn load_store_roundtrip() {
        let a = AtomicU128::new(0);
        assert_eq!(a.load(), 0);
        a.store(pack(7, 9));
        assert_eq!(a.load(), pack(7, 9));
        assert_eq!(unpack(a.load()), (7, 9));
    }

    #[test]
    fn cas_success_and_failure() {
        let a = AtomicU128::new(pack(1, 2));
        assert!(a.cas(pack(1, 2), pack(3, 4)));
        assert_eq!(a.load(), pack(3, 4));
        assert_eq!(a.compare_exchange(pack(1, 2), pack(5, 6)), Err(pack(3, 4)));
        assert_eq!(a.load(), pack(3, 4));
    }

    #[test]
    fn pack_unpack_are_inverse() {
        for &(lo, hi) in &[(0u64, 0u64), (u64::MAX, 0), (0, u64::MAX), (123, 456)] {
            assert_eq!(unpack(pack(lo, hi)), (lo, hi));
        }
    }

    #[test]
    fn concurrent_increment_low_half() {
        // Each thread increments the low half 10_000 times via CAS; the high
        // half records the number of distinct writers observed mid-flight.
        const THREADS: usize = 4;
        const ITERS: u64 = 10_000;
        let a = Arc::new(AtomicU128::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    loop {
                        let cur = a.load();
                        let (lo, hi) = unpack(cur);
                        if a.cas(cur, pack(lo + 1, hi)) {
                            break;
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unpack(a.load()).0, THREADS as u64 * ITERS);
    }

    #[test]
    fn both_halves_move_together() {
        // A CAS must never be able to observe a torn (half old, half new)
        // value.  Writers always keep lo == hi; readers assert the invariant.
        let a = Arc::new(AtomicU128::new(pack(0, 0)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..2u64 {
            let a = Arc::clone(&a);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = t;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let cur = a.load();
                    let _ = a.cas(cur, pack(i, i));
                    i += 2;
                }
            }));
        }
        for _ in 0..50_000 {
            let (lo, hi) = unpack(a.load());
            assert_eq!(lo, hi, "observed a torn 128-bit value");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
}
