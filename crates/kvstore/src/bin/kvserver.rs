//! Standalone kvstore server.
//!
//! ```text
//! cargo run --release -p kvstore --bin kvserver -- \
//!     --addr 127.0.0.1:7878 --workers 4 --shards 8 \
//!     --tables mixed --backend durable --advancer-us 200 \
//!     --metrics-addr 127.0.0.1:9187 --slow-us 1000 --trace-cap 256
//! ```
//!
//! Telemetry is on by default; `--no-telemetry` disables it.
//! `--metrics-addr HOST:PORT` additionally serves the Prometheus text
//! exposition at `/metrics` on a dedicated thread.  `--slow-us` sets the
//! slow-request trace threshold (0 traces everything) and `--trace-cap`
//! the per-worker ring capacity.
//!
//! Prints the bound address on stdout, then serves until stdin reaches EOF
//! or a line is entered (so `kvserver < /dev/null` in scripts still drains
//! gracefully via the `--seconds` limit, and an interactive Enter stops it).
//! `--seconds N` serves for N seconds and then drains — handy for smoke
//! runs.

use kvstore::{
    OverloadConfig, Server, ServerConfig, StoreBackend, StoreConfig, TableKind, TelemetryConfig,
};
use medley::ContentionPolicy;
use std::time::Duration;

fn flag<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("invalid value {v:?} for {name}"))
        })
        .unwrap_or(default)
}

fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let addr: String = flag("--addr", "127.0.0.1:7878".to_string());
    let workers: usize = flag("--workers", 4);
    let shards: usize = flag("--shards", 8);
    let tables = match flag("--tables", "hash".to_string()).as_str() {
        "hash" => TableKind::Hash,
        "skip" => TableKind::Skip,
        "mixed" => TableKind::Mixed,
        "elastic" => TableKind::Elastic,
        "cache" => TableKind::Cache {
            capacity: flag("--cache-capacity", 1 << 16),
        },
        other => panic!("unknown --tables {other:?} (hash|skip|mixed|elastic|cache)"),
    };
    let backend = match flag("--backend", "transient".to_string()).as_str() {
        "transient" => StoreBackend::Transient,
        "durable" => StoreBackend::Durable,
        other => panic!("unknown --backend {other:?} (transient|durable)"),
    };
    let advancer_us: u64 = flag("--advancer-us", 200);
    let retries: u64 = flag("--retries", 256);
    let seconds: f64 = flag("--seconds", 0.0);
    let contention = match flag("--cm", "backoff".to_string()).as_str() {
        "backoff" => ContentionPolicy::Backoff,
        "karma" => ContentionPolicy::Karma,
        "adaptive" => ContentionPolicy::Adaptive,
        other => panic!("unknown --cm {other:?} (backoff|karma|adaptive)"),
    };
    let overload = OverloadConfig {
        shed_high: flag("--shed-high", OverloadConfig::default().shed_high),
        shed_low: flag("--shed-low", OverloadConfig::default().shed_low),
        ..Default::default()
    };
    let metrics_addr: String = flag("--metrics-addr", String::new());
    let telemetry = TelemetryConfig {
        enabled: !has_flag("--no-telemetry"),
        slow_threshold: Duration::from_micros(flag(
            "--slow-us",
            TelemetryConfig::default().slow_threshold.as_micros() as u64,
        )),
        trace_capacity: flag("--trace-cap", TelemetryConfig::default().trace_capacity),
        metrics_addr: (!metrics_addr.is_empty()).then_some(metrics_addr),
    };

    let cfg = ServerConfig {
        addr,
        workers,
        store: StoreConfig {
            shards,
            tables: tables.clone(),
            backend,
            max_retries: retries,
            contention,
            advancer_period: (advancer_us > 0).then(|| Duration::from_micros(advancer_us)),
            ..Default::default()
        },
        overload,
        telemetry,
        ..Default::default()
    };
    // Every connection is a file descriptor; lift the soft cap to the hard
    // cap up front so a connection-heavy benchmark doesn't die on EMFILE.
    match kvstore::sys::raise_nofile_limit() {
        Ok((prev, now)) if prev != now => println!("RLIMIT_NOFILE raised: {prev} -> {now}"),
        Ok((_, now)) => println!("RLIMIT_NOFILE already at hard limit: {now}"),
        Err(e) => eprintln!("warning: could not raise RLIMIT_NOFILE: {e}"),
    }

    let server = Server::start(&cfg).expect("bind kvstore server");
    println!("kvserver listening on {}", server.local_addr());
    println!(
        "  workers={} shards={} tables={:?} backend={:?}",
        workers, shards, tables, backend
    );
    if let Some(addr) = server.metrics_local_addr() {
        println!("  metrics exposition on http://{addr}/metrics");
    }

    if seconds > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(seconds));
    } else {
        // Serve until stdin closes or a line arrives.
        let mut line = String::new();
        let _ = std::io::stdin().read_line(&mut line);
    }
    println!("draining...");
    let load = server.load_stats();
    let events = server.event_stats();
    // Telemetry summary before shutdown consumes the server: the busiest
    // opcode's quantiles plus total slow-trace records — enough to see at a
    // glance whether the run was healthy.
    if let Some(tel) = server.telemetry() {
        let m = tel.metrics_reply();
        if let Some(top) = m.ops.iter().max_by_key(|o| o.hist.total()) {
            let (p50, p90, p99) = top.hist.percentiles_ns();
            println!(
                "telemetry: busiest opcode 0x{:02x}: {} reqs, p50/p90/p99 = {}/{}/{} ns, {} retries",
                top.opcode,
                top.hist.total(),
                p50,
                p90,
                p99,
                top.retries
            );
        }
        let t = tel.trace_reply();
        println!(
            "telemetry: {} slow-trace records held ({} evicted)",
            t.records.len(),
            t.evicted
        );
    }
    let store = server.shutdown();
    let snap = store.manager().stats_snapshot();
    println!(
        "served: {} commits ({} fast / {} ro / {} general), {} aborts ({} conflict)",
        snap.commits,
        snap.fast_commits,
        snap.ro_commits,
        snap.general_commits,
        snap.aborts,
        snap.conflict_aborts
    );
    println!(
        "load: {} shed, peak backlog {} B, {} accept retries, {} cm waits",
        load.shed_requests, load.peak_inflight_bytes, load.accept_retries, snap.cm_waits
    );
    println!(
        "events: {} epoll_waits, {} dispatched, {} spurious, {} writes saved by writev",
        events.epoll_waits, events.events_dispatched, events.spurious_wakeups, events.writev_saved
    );
}
