//! Standalone kvstore server.
//!
//! ```text
//! cargo run --release -p kvstore --bin kvserver -- \
//!     --addr 127.0.0.1:7878 --workers 4 --shards 8 \
//!     --tables mixed --backend durable --advancer-us 200
//! ```
//!
//! Prints the bound address on stdout, then serves until stdin reaches EOF
//! or a line is entered (so `kvserver < /dev/null` in scripts still drains
//! gracefully via the `--seconds` limit, and an interactive Enter stops it).
//! `--seconds N` serves for N seconds and then drains — handy for smoke
//! runs.

use kvstore::{OverloadConfig, Server, ServerConfig, StoreBackend, StoreConfig, TableKind};
use medley::ContentionPolicy;
use std::time::Duration;

fn flag<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("invalid value {v:?} for {name}"))
        })
        .unwrap_or(default)
}

fn main() {
    let addr: String = flag("--addr", "127.0.0.1:7878".to_string());
    let workers: usize = flag("--workers", 4);
    let shards: usize = flag("--shards", 8);
    let tables = match flag("--tables", "hash".to_string()).as_str() {
        "hash" => TableKind::Hash,
        "skip" => TableKind::Skip,
        "mixed" => TableKind::Mixed,
        "elastic" => TableKind::Elastic,
        "cache" => TableKind::Cache {
            capacity: flag("--cache-capacity", 1 << 16),
        },
        other => panic!("unknown --tables {other:?} (hash|skip|mixed|elastic|cache)"),
    };
    let backend = match flag("--backend", "transient".to_string()).as_str() {
        "transient" => StoreBackend::Transient,
        "durable" => StoreBackend::Durable,
        other => panic!("unknown --backend {other:?} (transient|durable)"),
    };
    let advancer_us: u64 = flag("--advancer-us", 200);
    let retries: u64 = flag("--retries", 256);
    let seconds: f64 = flag("--seconds", 0.0);
    let contention = match flag("--cm", "backoff".to_string()).as_str() {
        "backoff" => ContentionPolicy::Backoff,
        "karma" => ContentionPolicy::Karma,
        "adaptive" => ContentionPolicy::Adaptive,
        other => panic!("unknown --cm {other:?} (backoff|karma|adaptive)"),
    };
    let overload = OverloadConfig {
        shed_high: flag("--shed-high", OverloadConfig::default().shed_high),
        shed_low: flag("--shed-low", OverloadConfig::default().shed_low),
        ..Default::default()
    };

    let cfg = ServerConfig {
        addr,
        workers,
        store: StoreConfig {
            shards,
            tables: tables.clone(),
            backend,
            max_retries: retries,
            contention,
            advancer_period: (advancer_us > 0).then(|| Duration::from_micros(advancer_us)),
            ..Default::default()
        },
        overload,
        ..Default::default()
    };
    // Every connection is a file descriptor; lift the soft cap to the hard
    // cap up front so a connection-heavy benchmark doesn't die on EMFILE.
    match kvstore::sys::raise_nofile_limit() {
        Ok((prev, now)) if prev != now => println!("RLIMIT_NOFILE raised: {prev} -> {now}"),
        Ok((_, now)) => println!("RLIMIT_NOFILE already at hard limit: {now}"),
        Err(e) => eprintln!("warning: could not raise RLIMIT_NOFILE: {e}"),
    }

    let server = Server::start(&cfg).expect("bind kvstore server");
    println!("kvserver listening on {}", server.local_addr());
    println!(
        "  workers={} shards={} tables={:?} backend={:?}",
        workers, shards, tables, backend
    );

    if seconds > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(seconds));
    } else {
        // Serve until stdin closes or a line arrives.
        let mut line = String::new();
        let _ = std::io::stdin().read_line(&mut line);
    }
    println!("draining...");
    let load = server.load_stats();
    let events = server.event_stats();
    let store = server.shutdown();
    let snap = store.manager().stats_snapshot();
    println!(
        "served: {} commits ({} fast / {} ro / {} general), {} aborts ({} conflict)",
        snap.commits,
        snap.fast_commits,
        snap.ro_commits,
        snap.general_commits,
        snap.aborts,
        snap.conflict_aborts
    );
    println!(
        "load: {} shed, peak backlog {} B, {} accept retries, {} cm waits",
        load.shed_requests, load.peak_inflight_bytes, load.accept_retries, snap.cm_waits
    );
    println!(
        "events: {} epoll_waits, {} dispatched, {} spurious, {} writes saved by writev",
        events.epoll_waits, events.events_dispatched, events.spurious_wakeups, events.writev_saved
    );
}
