//! The kvstore wire protocol: a length-prefixed binary frame codec.
//!
//! # Wire format
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! [u32 len (LE)] [payload: len bytes]
//! ```
//!
//! `len` counts only the payload and must not exceed [`MAX_FRAME`]; a peer
//! announcing a larger frame is malformed and the connection is closed.
//! Frames are fully pipelined: a client may send any number of request
//! frames without waiting, and the server answers each request with exactly
//! one response frame *in request order* per connection.
//!
//! ## Request payload
//!
//! ```text
//! [u32 req_id (LE)] [u8 opcode] [body]
//! ```
//!
//! `req_id` is an opaque client-chosen token echoed verbatim in the
//! response.  Opcodes and bodies (all integers little-endian):
//!
//! | opcode | name       | body |
//! |--------|------------|------|
//! | `0x01` | `GET`      | `key: u64` |
//! | `0x02` | `PUT`      | `key: u64, val: u64` |
//! | `0x03` | `DEL`      | `key: u64` |
//! | `0x04` | `CAS`      | `key: u64, expected: u64, desired: u64` |
//! | `0x05` | `CONTAINS` | `key: u64` |
//! | `0x06` | `GETB`     | `key: u64` |
//! | `0x07` | `PUTB`     | `key: u64, vlen: u32, vlen × u8` |
//! | `0x08` | `DELB`     | `key: u64` |
//! | `0x09` | `CASB`     | `key: u64, elen: u32, elen × u8, dlen: u32, dlen × u8` |
//! | `0x10` | `MGET`     | `n: u32, n × key: u64` |
//! | `0x11` | `MSET`     | `n: u32, n × (key: u64, val: u64)` |
//! | `0x12` | `TRANSFER` | `from: u64, to: u64, amount: u64` |
//! | `0x13` | `BATCH`    | `n: u32, n × (u8 opcode + body)` — single-key ops only |
//! | `0x16` | `MGETB`    | `n: u32, n × key: u64` |
//! | `0x17` | `MSETB`    | `n: u32, n × (key: u64, vlen: u32, vlen × u8)` |
//! | `0x18` | `SCAN`     | `lo: u64, hi: u64, limit: u32` |
//! | `0x20` | `STATS`    | (empty) |
//! | `0x21` | `SYNC`     | (empty) |
//! | `0x22` | `METRICS`  | (empty) — server-side telemetry snapshot |
//! | `0x23` | `TRACE`    | (empty) — slow-request trace ring dump |
//!
//! ## Value lengths and the blob op family
//!
//! The `*B` opcodes carry **length-prefixed byte values** (`vlen: u32` LE
//! followed by `vlen` raw bytes).  A value may be `0..=`[`MAX_VALUE_BYTES`]
//! (256 KiB) bytes long; decoders reject anything longer *before* allocating,
//! even though the 1 MiB frame cap would admit it.  An exactly-8-byte value
//! is canonically a word ([`pmem::Value::from_bytes`]), so `PUT k 5` and
//! `PUTB k <5u64 LE>` store the *same* value and the two op families fully
//! interoperate — a fixed-width op that reads back a non-word value reports
//! `ERR_MALFORMED` rather than truncating it.
//!
//! `GET`/`PUT`/`DEL`/`CONTAINS` (and their blob twins `GETB`/`PUTB`/`DELB`)
//! run as standalone (uninstrumented `NonTx`) operations.  `CAS`/`CASB` and
//! every multi-key command run as one Medley transaction: `MGET`/`MGETB` is
//! one atomic (read-only, descriptor-free) snapshot, `MSET`/`MSETB` and
//! `TRANSFER` are failure-atomic across all their keys — and across whatever
//! *shards* (distinct nonblocking structures) those keys hash to, which is
//! exactly the NBTC composition the paper builds.  `BATCH` runs its command
//! list under a single `ThreadHandle::run_with`; blob single-key ops
//! (`GETB`/`PUTB`/`DELB`/`CASB`) are legal batch members alongside the
//! fixed-width ones.
//!
//! `SCAN lo hi limit` returns an **atomically consistent ordered page** of
//! the half-open key window `[lo, hi)`: one read-only Medley transaction
//! walks the range-partitioned skiplist shards in key order, so every
//! returned pair coexisted in a single serializable snapshot.  It is only
//! answerable by range-partitioned stores (`TableKind::Skip`); on
//! hash-partitioned ones it reports `ERR_MALFORMED`, and it is not a legal
//! `BATCH` member.  The server truncates pages at `min(limit, 32768)`
//! entries and a 512 KiB value budget; a truncated page is still a
//! consistent *prefix* of the window, so clients resume from
//! `last_key + 1`.  Every returned entry is one counted read in the scan's
//! transaction descriptor, so a page is additionally bounded by the
//! descriptor's read-set capacity (4096 entries) — a window too wide to fit
//! reports `ABORT_CAPACITY`, exactly like an oversized `BATCH`: shrink the
//! window and page through it.
//!
//! ## Response payload
//!
//! ```text
//! [u32 req_id (LE)] [u8 status] [u8 opcode echo] [body if status == OK]
//! ```
//!
//! ### Status / abort-code mapping
//!
//! A transaction that loses a conflict is retried server-side up to the
//! configured retry budget; the status byte reports how the command
//! ultimately resolved:
//!
//! | status | name               | meaning |
//! |--------|--------------------|---------|
//! | `0x00` | `OK`               | committed (or standalone op completed) |
//! | `0x10` | `ABORT_RETRY`      | conflict-aborted past the retry budget ([`medley::TxError::RetriesExhausted`]); safe to resend |
//! | `0x11` | `ABORT_CAPACITY`   | transaction overflowed descriptor capacity ([`medley::TxError::CapacityExceeded`]); shrink the batch |
//! | `0x12` | `ERR_NOT_FOUND`    | `TRANSFER` named a missing account (explicit abort; nothing changed) |
//! | `0x13` | `ERR_INSUFFICIENT` | `TRANSFER` source balance below `amount`, or the credit would overflow the destination (explicit abort; nothing changed) |
//! | `0x14` | `ABORT_OVERLOAD`   | load-shed at admission: the server is over its backlog watermark and refused to *start* the (transactional) command — nothing was executed, no partial effects exist; safe to resend after a jittered delay |
//! | `0x20` | `ERR_MALFORMED`    | undecodable request, oversized frame, or an illegal `BATCH` member |
//!
//! Non-`OK` responses carry no body beyond the opcode echo.  `OK` bodies:
//!
//! | opcode | body |
//! |--------|------|
//! | `GET`/`DEL` | `present: u8` (+ `val: u64` when 1) |
//! | `PUT`       | `had_prev: u8` (+ `prev: u64` when 1) |
//! | `CAS`       | `success: u8, present: u8` (+ `current: u64` when present) — `current` is the post-op value |
//! | `CONTAINS`  | `present: u8` |
//! | `GETB`/`DELB` | `tagged value` (below) |
//! | `PUTB`      | `tagged value` — the previous value |
//! | `CASB`      | `success: u8, tagged value` — post-op value |
//! | `MGET`      | `n: u32, n × (present: u8 [+ val: u64])` |
//! | `MSET`/`MSETB` | (empty) |
//! | `TRANSFER`  | `from_after: u64, to_after: u64` |
//! | `BATCH`     | `n: u32, n × (u8 opcode + single-op body)` |
//! | `MGETB`     | `n: u32, n × tagged value` |
//! | `SCAN`      | `n: u32, n × (key: u64, vlen: u32, vlen × u8)` — keys strictly ascending |
//! | `STATS`     | `uptime_secs: u64`, 13 × `u64` transaction counters, `has_domain: u8` (+ 5 × `u64` domain stats), `has_load: u8` (+ 4 × `u64` load stats), `has_tables: u8` (+ table section, below), `has_events: u8` (+ event-loop section: 4 × `u64` aggregate counters, `n: u32`, `n` × 4 × `u64` per-worker counters — see [`EventStats`]) — see [`StatsReply`] |
//! | `SYNC`      | `persisted_epoch: u64` |
//! | `METRICS`   | `uptime_secs: u64`, `n: u32`, `n` × per-opcode block (`opcode: u8, retries: u64, max_ns: u64`, 64 × `bucket: u64`, `e: u32`, `e` × `abort_count: u64`), `w: u32`, `w` × per-worker phase block (`p: u32`, `p` × `phase_ns: u64`) — see [`MetricsReply`] |
//! | `TRACE`     | `evicted: u64, n: u32`, `n` × trace record (`opcode: u8, status: u8, req_id: u64, queue_ns: u64, exec_ns: u64, retries: u64`) — see [`TraceReply`] |
//!
//! A *tagged value* in a blob-op response is one byte of tag plus a
//! tag-dependent body: `0` = absent (no body), `1` = word (`val: u64`),
//! `2` = bytes (`vlen: u32, vlen × u8`, same [`MAX_VALUE_BYTES`] bound as
//! requests).  Encoders emit the canonical form (8-byte values always travel
//! as tag `1`), and decoders re-canonicalize defensively.
//!
//! The `STATS` table section (present when `has_tables == 1`) describes the
//! store's shards and how keys are routed to them:
//!
//! ```text
//! grow_events: u64            // directory doublings, summed over elastic shards
//! partition: u8               // 0 = hash partitioning, 1 = range partitioning
//! has_cache: u8 [+ hits: u64, misses: u64, evictions: u64]  // cache tallies,
//!                             // summed over cache shards (cache stores only)
//! n: u32                      // shard count
//! n × (
//!   kind: u8                  // 0 = hash, 1 = skip, 2 = elastic, 3 = cache
//!   has_items: u8 [+ items: u64]  // per-shard item count (hash/elastic: relaxed;
//!                                 // cache: exact transactional occupancy)
//!   buckets: u64              // current bucket count (0 for skiplists)
//! )
//! ```
//!
//! A shard's load factor is derived, not wired: `items / buckets` for the
//! kinds that report both.  Skiplists have neither buckets nor a maintained
//! counter, so they report `kind = 1`, `has_items = 0`, `buckets = 0`.
//! Cache shards report their *exact* occupancy — the count is maintained
//! inside the same transactions that mutate the shard, so the summed value
//! never exceeds the configured capacity in any committed state.

use crate::store::{Cmd, CmdOut};
use medley::TxStatsSnapshot;
use obs::{LatencyHistogram, TraceRecord, BUCKETS};
use pmem::{DomainStats, Value, MAX_VALUE_BYTES};

/// Maximum payload size of one frame (1 MiB).  Large enough for a
/// multi-thousand-key `MSET`, small enough that a corrupt length prefix
/// cannot make a peer buffer gigabytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Length of the frame header (the `u32` length prefix).
pub const FRAME_HEADER: usize = 4;

pub(crate) const OP_GET: u8 = 0x01;
pub(crate) const OP_PUT: u8 = 0x02;
pub(crate) const OP_DEL: u8 = 0x03;
pub(crate) const OP_CAS: u8 = 0x04;
pub(crate) const OP_CONTAINS: u8 = 0x05;
pub(crate) const OP_GETB: u8 = 0x06;
pub(crate) const OP_PUTB: u8 = 0x07;
pub(crate) const OP_DELB: u8 = 0x08;
pub(crate) const OP_CASB: u8 = 0x09;
pub(crate) const OP_MGET: u8 = 0x10;
pub(crate) const OP_MSET: u8 = 0x11;
pub(crate) const OP_TRANSFER: u8 = 0x12;
pub(crate) const OP_BATCH: u8 = 0x13;
pub(crate) const OP_MGETB: u8 = 0x16;
pub(crate) const OP_MSETB: u8 = 0x17;
pub(crate) const OP_SCAN: u8 = 0x18;
pub(crate) const OP_STATS: u8 = 0x20;
pub(crate) const OP_SYNC: u8 = 0x21;
pub(crate) const OP_METRICS: u8 = 0x22;
pub(crate) const OP_TRACE: u8 = 0x23;

const ST_OK: u8 = 0x00;
const ST_ABORT_RETRY: u8 = 0x10;
const ST_ABORT_CAPACITY: u8 = 0x11;
const ST_ERR_NOT_FOUND: u8 = 0x12;
const ST_ERR_INSUFFICIENT: u8 = 0x13;
const ST_ABORT_OVERLOAD: u8 = 0x14;
const ST_ERR_MALFORMED: u8 = 0x20;

/// A decoded request: a store command or an admin command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// A data command executed by the store core.
    Cmd(Cmd),
    /// Aggregated `TxStats` (+ `DomainStats` in durable mode) snapshot.
    Stats,
    /// Durability cut: everything completed before the reply is recoverable.
    Sync,
    /// Per-opcode telemetry snapshot: latency histograms, abort-reason and
    /// retry breakdowns, per-worker event-loop phase accounting.
    Metrics,
    /// Slow-request trace ring dump.
    Trace,
}

pub use crate::store::ErrCode;

/// Server load / admission-control counters reported by `STATS`.
///
/// These come from the server's overload machinery, not the store core, so a
/// `Store::stats` taken without a server reports `None` for the section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadStats {
    /// Requests refused with [`ErrCode::Overload`] since startup.
    pub shed_requests: u64,
    /// Decoded-but-unexecuted request bytes currently queued across all
    /// connections (the admission backlog the shed watermark gates on).
    pub inflight_bytes: u64,
    /// High-water mark of `inflight_bytes` since startup.
    pub peak_inflight_bytes: u64,
    /// Transient `accept(2)` failures (e.g. `EMFILE`) survived by backing
    /// off and retrying instead of tearing down the listener.
    pub accept_retries: u64,
}

/// What structure implements one shard (the `kind` byte of the `STATS`
/// table section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardKind {
    /// Michael chained hash table (fixed bucket count).
    Hash,
    /// Skiplist (no buckets, no maintained item counter).
    Skip,
    /// Split-ordered elastic hash table (bucket directory grows on-line).
    Elastic,
    /// Second-chance cache: hash map + FIFO queue composed transactionally.
    Cache,
}

/// How the store routes keys to shards (the `partition` byte of the `STATS`
/// table section).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionScheme {
    /// Keys are hashed to shards; point ops spread evenly, no global order.
    #[default]
    Hash,
    /// Shards own contiguous key ranges in shard order; `SCAN` is available.
    Range,
}

/// Cache effectiveness tallies, summed over a cache store's shards
/// (the `has_cache` section of the `STATS` table section).
///
/// Counters are commit-disciplined: an operation that aborts (or retries)
/// tallies nothing, so `hits + misses` equals the number of *committed*
/// lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Committed lookups that found their key.
    pub hits: u64,
    /// Committed lookups that missed.
    pub misses: u64,
    /// Entries removed by the second-chance policy to hold capacity.
    pub evictions: u64,
}

/// One shard's table metrics in the `STATS` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Which structure backs the shard.
    pub kind: ShardKind,
    /// Relaxed item count (`None` for kinds without a maintained counter).
    pub items: Option<u64>,
    /// Current bucket count (`0` for bucketless kinds).
    pub buckets: u64,
}

/// Event-loop counters reported by `STATS` (servers only; a bare
/// `Store::stats` reports `None` for the section).
///
/// Summed over the worker threads since startup.  Together they describe how
/// efficiently readiness is being turned into work: `events_dispatched /
/// epoll_waits` is the wakeup batching factor, `spurious_wakeups` counts
/// dispatched readiness events whose pumps moved no bytes and served no
/// frame, and `writev_saved` counts the `write(2)` calls the vectored
/// response path avoided (each `writev` of *n* buffers saves *n − 1* calls).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventStats {
    /// `epoll_wait(2)` calls made by the worker loops.
    pub epoll_waits: u64,
    /// Readiness events dispatched to connections (doorbell events excluded).
    pub events_dispatched: u64,
    /// Dispatched events whose pumps made no progress.
    pub spurious_wakeups: u64,
    /// `write` syscalls avoided by batching response frames into `writev`.
    pub writev_saved: u64,
    /// The same four counters broken out per worker thread, in worker
    /// order — an uneven spread here means connection handoff is skewed
    /// (the aggregate fields above are the column sums).
    pub per_worker: Vec<WorkerEvents>,
}

/// One worker thread's event-loop counters (the per-worker rows of
/// [`EventStats`]; field meanings identical to the aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerEvents {
    /// `epoll_wait(2)` calls made by this worker's loop.
    pub epoll_waits: u64,
    /// Readiness events this worker dispatched to connections.
    pub events_dispatched: u64,
    /// Dispatched events whose pumps made no progress.
    pub spurious_wakeups: u64,
    /// `write` syscalls this worker avoided via `writev` batching.
    pub writev_saved: u64,
}

/// The per-table section of the `STATS` reply: one entry per shard plus the
/// store-wide growth tally.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableStats {
    /// Directory doublings since startup, summed over elastic shards
    /// (always `0` for stores without elastic tables).
    pub grow_events: u64,
    /// How keys are routed to the shards below.
    pub partition: PartitionScheme,
    /// Cache tallies, summed over cache shards (`None` unless the store's
    /// tables are caches).
    pub cache: Option<CacheStats>,
    /// Per-shard kind / items / buckets, in shard order.
    pub shards: Vec<ShardStats>,
}

/// The `STATS` response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReply {
    /// Whole seconds since the server started (0 for a bare `Store::stats`
    /// taken without a server).
    pub uptime_secs: u64,
    /// Aggregated transaction counters ([`medley::TxManager::stats_snapshot`]).
    pub tx: TxStatsSnapshot,
    /// Persistence-domain state (durable servers only).
    pub domain: Option<DomainStats>,
    /// Admission-control counters (only when served by a `kvstore` server).
    pub load: Option<LoadStats>,
    /// Per-shard table metrics (item counts, bucket counts, grow events).
    pub tables: Option<TableStats>,
    /// Event-loop counters (only when served by a `kvstore` server).
    pub events: Option<EventStats>,
}

/// One opcode's aggregated telemetry in a [`MetricsReply`].
///
/// The histogram travels as its raw 64 log-bucket counts and reconstructs
/// on the client as the same [`obs::LatencyHistogram`] the load generators
/// record into — which is what makes client-observed vs. server-observed
/// quantile comparisons apples-to-apples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpMetrics {
    /// The wire opcode this block describes.
    pub opcode: u8,
    /// End-to-end (frame-decoded → response-encoded) latency histogram.
    pub hist: LatencyHistogram,
    /// Transactional attempts beyond the first, summed over this opcode's
    /// served requests.
    pub retries: u64,
    /// Abort/error counts, indexed like [`crate::telemetry::ERROR_LABELS`].
    pub aborts: Vec<u64>,
}

/// The `METRICS` response payload: the server's telemetry registry,
/// aggregated across workers at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsReply {
    /// Whole seconds since the server started.
    pub uptime_secs: u64,
    /// One block per opcode that saw traffic (inactive opcodes are not
    /// shipped).
    pub ops: Vec<OpMetrics>,
    /// `worker_phases[worker][phase]` nanoseconds, indexed like
    /// [`crate::telemetry::PHASE_LABELS`].  Empty when telemetry is
    /// disabled on the server.
    pub worker_phases: Vec<Vec<u64>>,
}

/// The `TRACE` response payload: the slow-request rings of every worker,
/// merged.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReply {
    /// Lifecycle records of requests that crossed the server's slow
    /// threshold (oldest first per worker).
    pub records: Vec<TraceRecord>,
    /// Slow requests that no longer fit in the bounded rings (evicted
    /// oldest-first); `records.len() + evicted` is the total slow count.
    pub evicted: u64,
}

/// A decoded response.
// `Stats` dwarfs the data-path variants, but a `Response` only ever lives
// for one decode-and-match on the client; boxing the rare admin reply
// would cost an allocation per `STATS` for no hot-path gain.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The command committed; its result.
    Ok(CmdOut),
    /// Statistics snapshot.
    Stats(StatsReply),
    /// `SYNC` acknowledgement carrying the persisted epoch of the cut.
    Synced(u64),
    /// Telemetry snapshot.
    Metrics(MetricsReply),
    /// Slow-request trace dump.
    Trace(TraceReply),
    /// The command failed with the given code.
    Err(ErrCode),
}

/// Frame-decoding error: the peer sent bytes that cannot be a valid frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoError;

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("malformed kvstore protocol frame")
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------------
// Primitive readers/writers
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn u8(&mut self) -> Result<u8, ProtoError> {
        let b = *self.buf.get(self.pos).ok_or(ProtoError)?;
        self.pos += 1;
        Ok(b)
    }
    fn u32(&mut self) -> Result<u32, ProtoError> {
        let end = self.pos.checked_add(4).ok_or(ProtoError)?;
        let bytes = self.buf.get(self.pos..end).ok_or(ProtoError)?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ProtoError> {
        let end = self.pos.checked_add(8).ok_or(ProtoError)?;
        let bytes = self.buf.get(self.pos..end).ok_or(ProtoError)?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError)?;
        let bytes = self.buf.get(self.pos..end).ok_or(ProtoError)?;
        self.pos = end;
        Ok(bytes)
    }
    fn finished(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError)
        }
    }
}

// Length-prefixed byte value (`vlen: u32, vlen × u8`) used by the blob-op
// request bodies.  Words serialize as their 8 LE bytes; the decoder rebuilds
// through `Value::from_bytes`, so canonical form survives the wire.

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    debug_assert!(v.byte_len() <= MAX_VALUE_BYTES);
    put_u32(buf, v.byte_len() as u32);
    match v {
        Value::U64(w) => buf.extend_from_slice(&w.to_le_bytes()),
        Value::Bytes(b) => buf.extend_from_slice(b),
    }
}

fn get_value(cur: &mut Cursor<'_>) -> Result<Value, ProtoError> {
    let len = cur.u32()? as usize;
    // Refuse over-limit values before touching the payload bytes: the frame
    // cap (1 MiB) is larger than the value cap (256 KiB), so this is the
    // check that actually bounds per-value allocation.
    if len > MAX_VALUE_BYTES {
        return Err(ProtoError);
    }
    Ok(Value::from_bytes(cur.bytes(len)?))
}

// Tagged optional value (`0` absent / `1` word / `2` bytes) used by blob-op
// response bodies.

fn put_opt_value(buf: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        None => buf.push(0),
        Some(Value::U64(w)) => {
            buf.push(1);
            put_u64(buf, *w);
        }
        Some(Value::Bytes(b)) => {
            debug_assert!(b.len() <= MAX_VALUE_BYTES);
            buf.push(2);
            put_u32(buf, b.len() as u32);
            buf.extend_from_slice(b);
        }
    }
}

fn get_opt_value(cur: &mut Cursor<'_>) -> Result<Option<Value>, ProtoError> {
    match cur.u8()? {
        0 => Ok(None),
        1 => Ok(Some(Value::U64(cur.u64()?))),
        2 => {
            let len = cur.u32()? as usize;
            if len > MAX_VALUE_BYTES {
                return Err(ProtoError);
            }
            Ok(Some(Value::from_bytes(cur.bytes(len)?)))
        }
        _ => Err(ProtoError),
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Appends one frame (length prefix + `payload`) to `out`.
///
/// # Panics
/// Panics if `payload` exceeds [`MAX_FRAME`] (encoders bound their payloads,
/// so this indicates a bug, not peer input).
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(payload.len() <= MAX_FRAME, "frame over MAX_FRAME");
    put_u32(out, payload.len() as u32);
    out.extend_from_slice(payload);
}

/// Tries to split one frame out of `buf[*consumed..]`, advancing `*consumed`
/// past it.  Returns `Ok(None)` when the buffer holds only a partial frame,
/// and `Err` when the announced length exceeds [`MAX_FRAME`] (the connection
/// should be closed; resynchronization is impossible).
pub fn take_frame<'a>(buf: &'a [u8], consumed: &mut usize) -> Result<Option<&'a [u8]>, ProtoError> {
    let rest = &buf[*consumed..];
    if rest.len() < FRAME_HEADER {
        return Ok(None);
    }
    let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError);
    }
    if rest.len() < FRAME_HEADER + len {
        return Ok(None);
    }
    let frame = &rest[FRAME_HEADER..FRAME_HEADER + len];
    *consumed += FRAME_HEADER + len;
    Ok(Some(frame))
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

fn cmd_opcode(cmd: &Cmd) -> u8 {
    match cmd {
        Cmd::Get(_) => OP_GET,
        Cmd::Put(..) => OP_PUT,
        Cmd::Del(_) => OP_DEL,
        Cmd::Cas { .. } => OP_CAS,
        Cmd::Contains(_) => OP_CONTAINS,
        Cmd::MGet(_) => OP_MGET,
        Cmd::MSet(_) => OP_MSET,
        Cmd::Transfer { .. } => OP_TRANSFER,
        Cmd::Batch(_) => OP_BATCH,
        Cmd::GetB(_) => OP_GETB,
        Cmd::PutB(..) => OP_PUTB,
        Cmd::DelB(_) => OP_DELB,
        Cmd::CasB { .. } => OP_CASB,
        Cmd::MGetB(_) => OP_MGETB,
        Cmd::MSetB(_) => OP_MSETB,
        Cmd::Scan { .. } => OP_SCAN,
    }
}

fn encode_cmd_body(buf: &mut Vec<u8>, cmd: &Cmd) {
    match cmd {
        Cmd::Get(k) | Cmd::Del(k) | Cmd::Contains(k) => put_u64(buf, *k),
        Cmd::Put(k, v) => {
            put_u64(buf, *k);
            put_u64(buf, *v);
        }
        Cmd::Cas {
            key,
            expected,
            desired,
        } => {
            put_u64(buf, *key);
            put_u64(buf, *expected);
            put_u64(buf, *desired);
        }
        Cmd::MGet(keys) => {
            put_u32(buf, keys.len() as u32);
            for k in keys {
                put_u64(buf, *k);
            }
        }
        Cmd::MSet(pairs) => {
            put_u32(buf, pairs.len() as u32);
            for (k, v) in pairs {
                put_u64(buf, *k);
                put_u64(buf, *v);
            }
        }
        Cmd::Transfer { from, to, amount } => {
            put_u64(buf, *from);
            put_u64(buf, *to);
            put_u64(buf, *amount);
        }
        Cmd::Batch(cmds) => {
            put_u32(buf, cmds.len() as u32);
            for c in cmds {
                buf.push(cmd_opcode(c));
                encode_cmd_body(buf, c);
            }
        }
        Cmd::GetB(k) | Cmd::DelB(k) => put_u64(buf, *k),
        Cmd::PutB(k, v) => {
            put_u64(buf, *k);
            put_value(buf, v);
        }
        Cmd::CasB {
            key,
            expected,
            desired,
        } => {
            put_u64(buf, *key);
            put_value(buf, expected);
            put_value(buf, desired);
        }
        Cmd::MGetB(keys) => {
            put_u32(buf, keys.len() as u32);
            for k in keys {
                put_u64(buf, *k);
            }
        }
        Cmd::MSetB(pairs) => {
            put_u32(buf, pairs.len() as u32);
            for (k, v) in pairs {
                put_u64(buf, *k);
                put_value(buf, v);
            }
        }
        Cmd::Scan { lo, hi, limit } => {
            put_u64(buf, *lo);
            put_u64(buf, *hi);
            put_u32(buf, *limit);
        }
    }
}

fn decode_cmd_body(cur: &mut Cursor<'_>, opcode: u8, nested: bool) -> Result<Cmd, ProtoError> {
    Ok(match opcode {
        OP_GET => Cmd::Get(cur.u64()?),
        OP_PUT => Cmd::Put(cur.u64()?, cur.u64()?),
        OP_DEL => Cmd::Del(cur.u64()?),
        OP_CAS => Cmd::Cas {
            key: cur.u64()?,
            expected: cur.u64()?,
            desired: cur.u64()?,
        },
        OP_CONTAINS => Cmd::Contains(cur.u64()?),
        OP_MGET if !nested => {
            let n = cur.u32()? as usize;
            if n > MAX_FRAME / 8 {
                return Err(ProtoError);
            }
            let mut keys = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                keys.push(cur.u64()?);
            }
            Cmd::MGet(keys)
        }
        OP_MSET if !nested => {
            let n = cur.u32()? as usize;
            if n > MAX_FRAME / 16 {
                return Err(ProtoError);
            }
            let mut pairs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                pairs.push((cur.u64()?, cur.u64()?));
            }
            Cmd::MSet(pairs)
        }
        OP_TRANSFER if !nested => Cmd::Transfer {
            from: cur.u64()?,
            to: cur.u64()?,
            amount: cur.u64()?,
        },
        OP_BATCH if !nested => {
            let n = cur.u32()? as usize;
            if n > MAX_FRAME / 9 {
                return Err(ProtoError);
            }
            let mut cmds = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let op = cur.u8()?;
                // Single-key commands only inside a batch: the IR maps 1:1
                // onto one transaction, and nested multi-key commands would
                // be a hidden second fan-out.
                cmds.push(decode_cmd_body(cur, op, true)?);
            }
            Cmd::Batch(cmds)
        }
        OP_GETB => Cmd::GetB(cur.u64()?),
        OP_PUTB => Cmd::PutB(cur.u64()?, get_value(cur)?),
        OP_DELB => Cmd::DelB(cur.u64()?),
        OP_CASB => Cmd::CasB {
            key: cur.u64()?,
            expected: get_value(cur)?,
            desired: get_value(cur)?,
        },
        OP_MGETB if !nested => {
            let n = cur.u32()? as usize;
            if n > MAX_FRAME / 8 {
                return Err(ProtoError);
            }
            let mut keys = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                keys.push(cur.u64()?);
            }
            Cmd::MGetB(keys)
        }
        OP_MSETB if !nested => {
            let n = cur.u32()? as usize;
            // Each pair is at least key (8) + length prefix (4) bytes.
            if n > MAX_FRAME / 12 {
                return Err(ProtoError);
            }
            let mut pairs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                pairs.push((cur.u64()?, get_value(cur)?));
            }
            Cmd::MSetB(pairs)
        }
        // A scan is a whole transaction by itself, so like the other
        // multi-key commands it is not a legal BATCH member.
        OP_SCAN if !nested => Cmd::Scan {
            lo: cur.u64()?,
            hi: cur.u64()?,
            limit: cur.u32()?,
        },
        _ => return Err(ProtoError),
    })
}

/// Encodes one request frame (header + payload) onto `out`.
///
/// # Panics
/// Panics if the encoded payload exceeds [`MAX_FRAME`]; use
/// [`try_encode_request`] when the command size comes from caller input.
pub fn encode_request(out: &mut Vec<u8>, req_id: u32, req: &Request) {
    try_encode_request(out, req_id, req).expect("request over MAX_FRAME");
}

/// Fallible [`encode_request`]: returns `Err` (writing nothing) when the
/// command is too large for one frame — an `MGET`/`MSET`/`BATCH` this big
/// would be refused by the server's descriptor capacity anyway, so callers
/// should chunk it.
pub fn try_encode_request(out: &mut Vec<u8>, req_id: u32, req: &Request) -> Result<(), ProtoError> {
    let mut payload = Vec::with_capacity(32);
    put_u32(&mut payload, req_id);
    match req {
        Request::Cmd(cmd) => {
            payload.push(cmd_opcode(cmd));
            encode_cmd_body(&mut payload, cmd);
        }
        Request::Stats => payload.push(OP_STATS),
        Request::Sync => payload.push(OP_SYNC),
        Request::Metrics => payload.push(OP_METRICS),
        Request::Trace => payload.push(OP_TRACE),
    }
    if payload.len() > MAX_FRAME {
        return Err(ProtoError);
    }
    write_frame(out, &payload);
    Ok(())
}

/// Decodes one request payload (a frame returned by [`take_frame`]).
pub fn decode_request(frame: &[u8]) -> Result<(u32, Request), ProtoError> {
    let mut cur = Cursor::new(frame);
    let req_id = cur.u32()?;
    let opcode = cur.u8()?;
    let req = match opcode {
        OP_STATS => Request::Stats,
        OP_SYNC => Request::Sync,
        OP_METRICS => Request::Metrics,
        OP_TRACE => Request::Trace,
        _ => Request::Cmd(decode_cmd_body(&mut cur, opcode, false)?),
    };
    cur.finished()?;
    Ok((req_id, req))
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

fn out_opcode(out: &CmdOut) -> u8 {
    match out {
        CmdOut::Value(_) => OP_GET,
        CmdOut::Prev(_) => OP_PUT,
        CmdOut::Removed(_) => OP_DEL,
        CmdOut::Cas { .. } => OP_CAS,
        CmdOut::Present(_) => OP_CONTAINS,
        CmdOut::Values(_) => OP_MGET,
        CmdOut::Done => OP_MSET,
        CmdOut::Transferred { .. } => OP_TRANSFER,
        CmdOut::Batch(_) => OP_BATCH,
        CmdOut::ValueB(_) => OP_GETB,
        CmdOut::PrevB(_) => OP_PUTB,
        CmdOut::RemovedB(_) => OP_DELB,
        CmdOut::CasB { .. } => OP_CASB,
        CmdOut::ValuesB(_) => OP_MGETB,
        CmdOut::Page(_) => OP_SCAN,
    }
}

fn put_opt(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            buf.push(1);
            put_u64(buf, v);
        }
        None => buf.push(0),
    }
}

fn get_opt(cur: &mut Cursor<'_>) -> Result<Option<u64>, ProtoError> {
    match cur.u8()? {
        0 => Ok(None),
        1 => Ok(Some(cur.u64()?)),
        _ => Err(ProtoError),
    }
}

fn encode_out_body(buf: &mut Vec<u8>, out: &CmdOut) {
    match out {
        CmdOut::Value(v) | CmdOut::Prev(v) | CmdOut::Removed(v) => put_opt(buf, *v),
        CmdOut::Cas { success, current } => {
            buf.push(u8::from(*success));
            put_opt(buf, *current);
        }
        CmdOut::Present(p) => buf.push(u8::from(*p)),
        CmdOut::Values(vals) => {
            put_u32(buf, vals.len() as u32);
            for v in vals {
                put_opt(buf, *v);
            }
        }
        CmdOut::Done => {}
        CmdOut::Transferred {
            from_after,
            to_after,
        } => {
            put_u64(buf, *from_after);
            put_u64(buf, *to_after);
        }
        CmdOut::Batch(outs) => {
            put_u32(buf, outs.len() as u32);
            for o in outs {
                buf.push(out_opcode(o));
                encode_out_body(buf, o);
            }
        }
        CmdOut::ValueB(v) | CmdOut::PrevB(v) | CmdOut::RemovedB(v) => put_opt_value(buf, v),
        CmdOut::CasB { success, current } => {
            buf.push(u8::from(*success));
            put_opt_value(buf, current);
        }
        CmdOut::ValuesB(vals) => {
            put_u32(buf, vals.len() as u32);
            for v in vals {
                put_opt_value(buf, v);
            }
        }
        CmdOut::Page(entries) => {
            put_u32(buf, entries.len() as u32);
            for (k, v) in entries {
                put_u64(buf, *k);
                put_value(buf, v);
            }
        }
    }
}

fn decode_out_body(cur: &mut Cursor<'_>, opcode: u8, nested: bool) -> Result<CmdOut, ProtoError> {
    Ok(match opcode {
        OP_GET => CmdOut::Value(get_opt(cur)?),
        OP_PUT => CmdOut::Prev(get_opt(cur)?),
        OP_DEL => CmdOut::Removed(get_opt(cur)?),
        OP_CAS => CmdOut::Cas {
            success: cur.u8()? != 0,
            current: get_opt(cur)?,
        },
        OP_CONTAINS => CmdOut::Present(cur.u8()? != 0),
        OP_MGET if !nested => {
            let n = cur.u32()? as usize;
            if n > MAX_FRAME / 2 {
                return Err(ProtoError);
            }
            let mut vals = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                vals.push(get_opt(cur)?);
            }
            CmdOut::Values(vals)
        }
        OP_MSET if !nested => CmdOut::Done,
        OP_TRANSFER if !nested => CmdOut::Transferred {
            from_after: cur.u64()?,
            to_after: cur.u64()?,
        },
        OP_BATCH if !nested => {
            let n = cur.u32()? as usize;
            if n > MAX_FRAME / 2 {
                return Err(ProtoError);
            }
            let mut outs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let op = cur.u8()?;
                outs.push(decode_out_body(cur, op, true)?);
            }
            CmdOut::Batch(outs)
        }
        OP_GETB => CmdOut::ValueB(get_opt_value(cur)?),
        OP_PUTB => CmdOut::PrevB(get_opt_value(cur)?),
        OP_DELB => CmdOut::RemovedB(get_opt_value(cur)?),
        OP_CASB => CmdOut::CasB {
            success: cur.u8()? != 0,
            current: get_opt_value(cur)?,
        },
        OP_MGETB if !nested => {
            let n = cur.u32()? as usize;
            if n > MAX_FRAME / 2 {
                return Err(ProtoError);
            }
            let mut vals = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                vals.push(get_opt_value(cur)?);
            }
            CmdOut::ValuesB(vals)
        }
        // An `MSETB` acknowledgement is body-less, like `MSET`'s.
        OP_MSETB if !nested => CmdOut::Done,
        OP_SCAN if !nested => {
            let n = cur.u32()? as usize;
            // Each page entry is at least key (8) + length prefix (4) bytes.
            if n > MAX_FRAME / 12 {
                return Err(ProtoError);
            }
            let mut entries = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                entries.push((cur.u64()?, get_value(cur)?));
            }
            CmdOut::Page(entries)
        }
        _ => return Err(ProtoError),
    })
}

fn err_status(e: ErrCode) -> u8 {
    match e {
        ErrCode::Retry => ST_ABORT_RETRY,
        ErrCode::Capacity => ST_ABORT_CAPACITY,
        ErrCode::NotFound => ST_ERR_NOT_FOUND,
        ErrCode::Insufficient => ST_ERR_INSUFFICIENT,
        ErrCode::Overload => ST_ABORT_OVERLOAD,
        ErrCode::Malformed => ST_ERR_MALFORMED,
    }
}

/// The wire status byte a response carries (recorded in slow-request
/// trace records so a dumped trace is self-describing).
pub(crate) fn response_status(resp: &Response) -> u8 {
    match resp {
        Response::Err(e) => err_status(*e),
        _ => ST_OK,
    }
}

fn status_err(st: u8) -> Result<ErrCode, ProtoError> {
    Ok(match st {
        ST_ABORT_RETRY => ErrCode::Retry,
        ST_ABORT_CAPACITY => ErrCode::Capacity,
        ST_ERR_NOT_FOUND => ErrCode::NotFound,
        ST_ERR_INSUFFICIENT => ErrCode::Insufficient,
        ST_ABORT_OVERLOAD => ErrCode::Overload,
        ST_ERR_MALFORMED => ErrCode::Malformed,
        _ => return Err(ProtoError),
    })
}

/// Encodes one response frame onto `out`.  `opcode` is the opcode of the
/// request being answered (echoed so error responses stay self-describing).
pub fn encode_response(out: &mut Vec<u8>, req_id: u32, opcode: u8, resp: &Response) {
    let mut payload = Vec::with_capacity(32);
    put_u32(&mut payload, req_id);
    match resp {
        Response::Ok(cmd_out) => {
            payload.push(ST_OK);
            payload.push(out_opcode(cmd_out));
            encode_out_body(&mut payload, cmd_out);
        }
        Response::Stats(s) => {
            payload.push(ST_OK);
            payload.push(OP_STATS);
            put_u64(&mut payload, s.uptime_secs);
            let t = &s.tx;
            for v in [
                t.commits,
                t.aborts,
                t.helps,
                t.fast_commits,
                t.ro_commits,
                t.general_commits,
                t.conflict_aborts,
                t.explicit_aborts,
                t.capacity_aborts,
                t.unwind_aborts,
                t.cm_waits,
                t.cm_priority_skips,
                t.cm_escalations,
            ] {
                put_u64(&mut payload, v);
            }
            match &s.domain {
                Some(d) => {
                    payload.push(1);
                    put_u64(&mut payload, d.live_payloads as u64);
                    put_u64(&mut payload, d.free_slots as u64);
                    put_u64(&mut payload, d.allocated_slots as u64);
                    put_u64(&mut payload, d.persisted_epoch);
                    put_u64(&mut payload, d.current_epoch);
                }
                None => payload.push(0),
            }
            match &s.load {
                Some(l) => {
                    payload.push(1);
                    put_u64(&mut payload, l.shed_requests);
                    put_u64(&mut payload, l.inflight_bytes);
                    put_u64(&mut payload, l.peak_inflight_bytes);
                    put_u64(&mut payload, l.accept_retries);
                }
                None => payload.push(0),
            }
            match &s.tables {
                Some(t) => {
                    payload.push(1);
                    put_u64(&mut payload, t.grow_events);
                    payload.push(match t.partition {
                        PartitionScheme::Hash => 0,
                        PartitionScheme::Range => 1,
                    });
                    match &t.cache {
                        Some(c) => {
                            payload.push(1);
                            put_u64(&mut payload, c.hits);
                            put_u64(&mut payload, c.misses);
                            put_u64(&mut payload, c.evictions);
                        }
                        None => payload.push(0),
                    }
                    put_u32(&mut payload, t.shards.len() as u32);
                    for sh in &t.shards {
                        payload.push(match sh.kind {
                            ShardKind::Hash => 0,
                            ShardKind::Skip => 1,
                            ShardKind::Elastic => 2,
                            ShardKind::Cache => 3,
                        });
                        put_opt(&mut payload, sh.items);
                        put_u64(&mut payload, sh.buckets);
                    }
                }
                None => payload.push(0),
            }
            match &s.events {
                Some(ev) => {
                    payload.push(1);
                    put_u64(&mut payload, ev.epoll_waits);
                    put_u64(&mut payload, ev.events_dispatched);
                    put_u64(&mut payload, ev.spurious_wakeups);
                    put_u64(&mut payload, ev.writev_saved);
                    put_u32(&mut payload, ev.per_worker.len() as u32);
                    for w in &ev.per_worker {
                        put_u64(&mut payload, w.epoll_waits);
                        put_u64(&mut payload, w.events_dispatched);
                        put_u64(&mut payload, w.spurious_wakeups);
                        put_u64(&mut payload, w.writev_saved);
                    }
                }
                None => payload.push(0),
            }
        }
        Response::Synced(epoch) => {
            payload.push(ST_OK);
            payload.push(OP_SYNC);
            put_u64(&mut payload, *epoch);
        }
        Response::Metrics(m) => {
            payload.push(ST_OK);
            payload.push(OP_METRICS);
            put_u64(&mut payload, m.uptime_secs);
            put_u32(&mut payload, m.ops.len() as u32);
            for op in &m.ops {
                payload.push(op.opcode);
                put_u64(&mut payload, op.retries);
                put_u64(&mut payload, op.hist.max_ns());
                for &c in op.hist.counts() {
                    put_u64(&mut payload, c);
                }
                put_u32(&mut payload, op.aborts.len() as u32);
                for &a in &op.aborts {
                    put_u64(&mut payload, a);
                }
            }
            put_u32(&mut payload, m.worker_phases.len() as u32);
            for phases in &m.worker_phases {
                put_u32(&mut payload, phases.len() as u32);
                for &ns in phases {
                    put_u64(&mut payload, ns);
                }
            }
        }
        Response::Trace(t) => {
            payload.push(ST_OK);
            payload.push(OP_TRACE);
            put_u64(&mut payload, t.evicted);
            put_u32(&mut payload, t.records.len() as u32);
            for r in &t.records {
                payload.push(r.opcode);
                payload.push(r.status);
                put_u64(&mut payload, r.req_id);
                put_u64(&mut payload, r.queue_ns);
                put_u64(&mut payload, r.exec_ns);
                put_u64(&mut payload, r.retries);
            }
        }
        Response::Err(e) => {
            payload.push(err_status(*e));
            payload.push(opcode);
        }
    }
    write_frame(out, &payload);
}

/// Decodes one response payload (a frame returned by [`take_frame`]).
pub fn decode_response(frame: &[u8]) -> Result<(u32, Response), ProtoError> {
    let mut cur = Cursor::new(frame);
    let req_id = cur.u32()?;
    let status = cur.u8()?;
    let opcode = cur.u8()?;
    let resp = if status == ST_OK {
        match opcode {
            OP_STATS => {
                let uptime_secs = cur.u64()?;
                let mut vals = [0u64; 13];
                for v in &mut vals {
                    *v = cur.u64()?;
                }
                let tx = TxStatsSnapshot {
                    commits: vals[0],
                    aborts: vals[1],
                    helps: vals[2],
                    fast_commits: vals[3],
                    ro_commits: vals[4],
                    general_commits: vals[5],
                    conflict_aborts: vals[6],
                    explicit_aborts: vals[7],
                    capacity_aborts: vals[8],
                    unwind_aborts: vals[9],
                    cm_waits: vals[10],
                    cm_priority_skips: vals[11],
                    cm_escalations: vals[12],
                };
                let domain = match cur.u8()? {
                    0 => None,
                    1 => Some(DomainStats {
                        live_payloads: cur.u64()? as usize,
                        free_slots: cur.u64()? as usize,
                        allocated_slots: cur.u64()? as usize,
                        persisted_epoch: cur.u64()?,
                        current_epoch: cur.u64()?,
                    }),
                    _ => return Err(ProtoError),
                };
                let load = match cur.u8()? {
                    0 => None,
                    1 => Some(LoadStats {
                        shed_requests: cur.u64()?,
                        inflight_bytes: cur.u64()?,
                        peak_inflight_bytes: cur.u64()?,
                        accept_retries: cur.u64()?,
                    }),
                    _ => return Err(ProtoError),
                };
                let tables = match cur.u8()? {
                    0 => None,
                    1 => {
                        let grow_events = cur.u64()?;
                        let partition = match cur.u8()? {
                            0 => PartitionScheme::Hash,
                            1 => PartitionScheme::Range,
                            _ => return Err(ProtoError),
                        };
                        let cache = match cur.u8()? {
                            0 => None,
                            1 => Some(CacheStats {
                                hits: cur.u64()?,
                                misses: cur.u64()?,
                                evictions: cur.u64()?,
                            }),
                            _ => return Err(ProtoError),
                        };
                        let n = cur.u32()? as usize;
                        // Each shard entry is at least 10 bytes on the wire.
                        if n > MAX_FRAME / 10 {
                            return Err(ProtoError);
                        }
                        let mut shards = Vec::with_capacity(n.min(4096));
                        for _ in 0..n {
                            let kind = match cur.u8()? {
                                0 => ShardKind::Hash,
                                1 => ShardKind::Skip,
                                2 => ShardKind::Elastic,
                                3 => ShardKind::Cache,
                                _ => return Err(ProtoError),
                            };
                            let items = get_opt(&mut cur)?;
                            let buckets = cur.u64()?;
                            shards.push(ShardStats {
                                kind,
                                items,
                                buckets,
                            });
                        }
                        Some(TableStats {
                            grow_events,
                            partition,
                            cache,
                            shards,
                        })
                    }
                    _ => return Err(ProtoError),
                };
                let events = match cur.u8()? {
                    0 => None,
                    1 => {
                        let epoll_waits = cur.u64()?;
                        let events_dispatched = cur.u64()?;
                        let spurious_wakeups = cur.u64()?;
                        let writev_saved = cur.u64()?;
                        let n = cur.u32()? as usize;
                        // Each per-worker row is 32 bytes on the wire.
                        if n > MAX_FRAME / 32 {
                            return Err(ProtoError);
                        }
                        let mut per_worker = Vec::with_capacity(n.min(4096));
                        for _ in 0..n {
                            per_worker.push(WorkerEvents {
                                epoll_waits: cur.u64()?,
                                events_dispatched: cur.u64()?,
                                spurious_wakeups: cur.u64()?,
                                writev_saved: cur.u64()?,
                            });
                        }
                        Some(EventStats {
                            epoll_waits,
                            events_dispatched,
                            spurious_wakeups,
                            writev_saved,
                            per_worker,
                        })
                    }
                    _ => return Err(ProtoError),
                };
                Response::Stats(StatsReply {
                    uptime_secs,
                    tx,
                    domain,
                    load,
                    tables,
                    events,
                })
            }
            OP_SYNC => Response::Synced(cur.u64()?),
            OP_METRICS => {
                let uptime_secs = cur.u64()?;
                let n_ops = cur.u32()? as usize;
                // Each op block is at least 1 + 8 + 8 + 64×8 + 4 bytes.
                if n_ops > MAX_FRAME / 533 {
                    return Err(ProtoError);
                }
                let mut ops = Vec::with_capacity(n_ops.min(256));
                for _ in 0..n_ops {
                    let opcode = cur.u8()?;
                    let retries = cur.u64()?;
                    let max_ns = cur.u64()?;
                    let mut counts = [0u64; BUCKETS];
                    for c in &mut counts {
                        *c = cur.u64()?;
                    }
                    let n_aborts = cur.u32()? as usize;
                    if n_aborts > 64 {
                        return Err(ProtoError);
                    }
                    let mut aborts = Vec::with_capacity(n_aborts);
                    for _ in 0..n_aborts {
                        aborts.push(cur.u64()?);
                    }
                    ops.push(OpMetrics {
                        opcode,
                        hist: LatencyHistogram::from_parts(counts, max_ns),
                        retries,
                        aborts,
                    });
                }
                let n_workers = cur.u32()? as usize;
                if n_workers > MAX_FRAME / 4 {
                    return Err(ProtoError);
                }
                let mut worker_phases = Vec::with_capacity(n_workers.min(4096));
                for _ in 0..n_workers {
                    let n_phases = cur.u32()? as usize;
                    if n_phases > 64 {
                        return Err(ProtoError);
                    }
                    let mut phases = Vec::with_capacity(n_phases);
                    for _ in 0..n_phases {
                        phases.push(cur.u64()?);
                    }
                    worker_phases.push(phases);
                }
                Response::Metrics(MetricsReply {
                    uptime_secs,
                    ops,
                    worker_phases,
                })
            }
            OP_TRACE => {
                let evicted = cur.u64()?;
                let n = cur.u32()? as usize;
                // Each trace record is 34 bytes on the wire.
                if n > MAX_FRAME / 34 {
                    return Err(ProtoError);
                }
                let mut records = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let opcode = cur.u8()?;
                    let status = cur.u8()?;
                    records.push(TraceRecord {
                        opcode,
                        status,
                        req_id: cur.u64()?,
                        queue_ns: cur.u64()?,
                        exec_ns: cur.u64()?,
                        retries: cur.u64()?,
                    });
                }
                Response::Trace(TraceReply { records, evicted })
            }
            _ => Response::Ok(decode_out_body(&mut cur, opcode, false)?),
        }
    } else {
        Response::Err(status_err(status)?)
    };
    cur.finished()?;
    Ok((req_id, resp))
}

/// The opcode byte of a request (used by the server to echo it back).
pub fn request_opcode(req: &Request) -> u8 {
    match req {
        Request::Cmd(c) => cmd_opcode(c),
        Request::Stats => OP_STATS,
        Request::Sync => OP_SYNC,
        Request::Metrics => OP_METRICS,
        Request::Trace => OP_TRACE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut wire = Vec::new();
        encode_request(&mut wire, 7, &req);
        let mut consumed = 0;
        let frame = take_frame(&wire, &mut consumed).unwrap().unwrap();
        let (id, decoded) = decode_request(frame).unwrap();
        assert_eq!(id, 7);
        assert_eq!(decoded, req);
        assert_eq!(consumed, wire.len());
    }

    fn roundtrip_response(resp: Response, opcode: u8) {
        let mut wire = Vec::new();
        encode_response(&mut wire, 9, opcode, &resp);
        let mut consumed = 0;
        let frame = take_frame(&wire, &mut consumed).unwrap().unwrap();
        let (id, decoded) = decode_response(frame).unwrap();
        assert_eq!(id, 9);
        assert_eq!(decoded, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Cmd(Cmd::Get(42)));
        roundtrip_request(Request::Cmd(Cmd::Put(1, 2)));
        roundtrip_request(Request::Cmd(Cmd::Del(3)));
        roundtrip_request(Request::Cmd(Cmd::Cas {
            key: 4,
            expected: 5,
            desired: 6,
        }));
        roundtrip_request(Request::Cmd(Cmd::Contains(8)));
        roundtrip_request(Request::Cmd(Cmd::MGet(vec![1, 2, 3])));
        roundtrip_request(Request::Cmd(Cmd::MSet(vec![(1, 10), (2, 20)])));
        roundtrip_request(Request::Cmd(Cmd::Transfer {
            from: 1,
            to: 2,
            amount: 3,
        }));
        roundtrip_request(Request::Cmd(Cmd::Batch(vec![
            Cmd::Get(1),
            Cmd::Put(2, 3),
            Cmd::Cas {
                key: 4,
                expected: 0,
                desired: 1,
            },
        ])));
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Sync);
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::Trace);
    }

    #[test]
    fn blob_requests_roundtrip() {
        let blob = Value::from_bytes(b"hello, variable-length world");
        roundtrip_request(Request::Cmd(Cmd::GetB(42)));
        roundtrip_request(Request::Cmd(Cmd::PutB(1, blob.clone())));
        roundtrip_request(Request::Cmd(Cmd::PutB(2, Value::U64(7))));
        roundtrip_request(Request::Cmd(Cmd::PutB(3, Value::from_bytes(b""))));
        roundtrip_request(Request::Cmd(Cmd::DelB(3)));
        roundtrip_request(Request::Cmd(Cmd::CasB {
            key: 4,
            expected: Value::U64(5),
            desired: blob.clone(),
        }));
        roundtrip_request(Request::Cmd(Cmd::MGetB(vec![1, 2, 3])));
        roundtrip_request(Request::Cmd(Cmd::MSetB(vec![
            (1, blob.clone()),
            (2, Value::U64(20)),
        ])));
        // Blob singles may ride inside a BATCH next to fixed-width ops.
        roundtrip_request(Request::Cmd(Cmd::Batch(vec![
            Cmd::Get(1),
            Cmd::PutB(2, blob),
            Cmd::CasB {
                key: 4,
                expected: Value::from_bytes(b"old"),
                desired: Value::from_bytes(b"new"),
            },
            Cmd::DelB(5),
        ])));
    }

    #[test]
    fn blob_responses_roundtrip() {
        let blob = Value::from_bytes(&vec![0xAB; 4096]);
        roundtrip_response(Response::Ok(CmdOut::ValueB(Some(blob.clone()))), OP_GETB);
        roundtrip_response(Response::Ok(CmdOut::ValueB(None)), OP_GETB);
        roundtrip_response(Response::Ok(CmdOut::ValueB(Some(Value::U64(9)))), OP_GETB);
        roundtrip_response(Response::Ok(CmdOut::PrevB(Some(blob.clone()))), OP_PUTB);
        roundtrip_response(Response::Ok(CmdOut::RemovedB(None)), OP_DELB);
        roundtrip_response(
            Response::Ok(CmdOut::CasB {
                success: false,
                current: Some(blob.clone()),
            }),
            OP_CASB,
        );
        roundtrip_response(
            Response::Ok(CmdOut::ValuesB(vec![
                Some(Value::U64(1)),
                None,
                Some(Value::from_bytes(b"xyz")),
            ])),
            OP_MGETB,
        );
        roundtrip_response(
            Response::Ok(CmdOut::Batch(vec![
                CmdOut::ValueB(Some(blob)),
                CmdOut::Prev(None),
                CmdOut::CasB {
                    success: true,
                    current: Some(Value::from_bytes(b"new")),
                },
            ])),
            OP_BATCH,
        );
    }

    #[test]
    fn eight_byte_wire_values_decode_canonically_as_words() {
        // A hand-built PUTB carrying exactly 8 bytes must decode to U64:
        // canonical form is a wire-level invariant, not a courtesy.
        let mut payload = Vec::new();
        put_u32(&mut payload, 1); // req id
        payload.push(OP_PUTB);
        put_u64(&mut payload, 77); // key
        put_u32(&mut payload, 8);
        put_u64(&mut payload, 0xDEAD_BEEF);
        let (_, req) = decode_request(&payload).unwrap();
        assert_eq!(req, Request::Cmd(Cmd::PutB(77, Value::U64(0xDEAD_BEEF))));
    }

    #[test]
    fn oversized_value_is_rejected_before_the_frame_cap() {
        // vlen between MAX_VALUE_BYTES and MAX_FRAME: frame-legal, value-illegal.
        let mut payload = Vec::new();
        put_u32(&mut payload, 2); // req id
        payload.push(OP_PUTB);
        put_u64(&mut payload, 1); // key
        let vlen = (MAX_VALUE_BYTES + 1) as u32;
        put_u32(&mut payload, vlen);
        payload.resize(payload.len() + vlen as usize, 0);
        assert!(payload.len() < MAX_FRAME);
        assert!(decode_request(&payload).is_err());

        // Same bound on the response side (tag 2 tagged value).
        let mut resp = Vec::new();
        put_u32(&mut resp, 3); // req id
        resp.push(ST_OK);
        resp.push(OP_GETB);
        resp.push(2); // tag: bytes
        put_u32(&mut resp, vlen);
        resp.resize(resp.len() + vlen as usize, 0);
        assert!(decode_response(&resp).is_err());
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Ok(CmdOut::Value(Some(1))), OP_GET);
        roundtrip_response(Response::Ok(CmdOut::Value(None)), OP_GET);
        roundtrip_response(Response::Ok(CmdOut::Prev(Some(2))), OP_PUT);
        roundtrip_response(Response::Ok(CmdOut::Removed(None)), OP_DEL);
        roundtrip_response(
            Response::Ok(CmdOut::Cas {
                success: true,
                current: Some(9),
            }),
            OP_CAS,
        );
        roundtrip_response(Response::Ok(CmdOut::Present(false)), OP_CONTAINS);
        roundtrip_response(
            Response::Ok(CmdOut::Values(vec![Some(1), None, Some(3)])),
            OP_MGET,
        );
        roundtrip_response(Response::Ok(CmdOut::Done), OP_MSET);
        roundtrip_response(
            Response::Ok(CmdOut::Transferred {
                from_after: 4,
                to_after: 6,
            }),
            OP_TRANSFER,
        );
        roundtrip_response(
            Response::Ok(CmdOut::Batch(vec![
                CmdOut::Value(Some(1)),
                CmdOut::Prev(None),
            ])),
            OP_BATCH,
        );
        roundtrip_response(
            Response::Stats(StatsReply {
                uptime_secs: 3600,
                tx: TxStatsSnapshot {
                    commits: 10,
                    aborts: 2,
                    helps: 1,
                    fast_commits: 5,
                    ro_commits: 3,
                    general_commits: 2,
                    conflict_aborts: 2,
                    explicit_aborts: 0,
                    capacity_aborts: 0,
                    unwind_aborts: 0,
                    cm_waits: 6,
                    cm_priority_skips: 4,
                    cm_escalations: 1,
                },
                domain: Some(DomainStats {
                    live_payloads: 3,
                    free_slots: 1,
                    allocated_slots: 4,
                    persisted_epoch: 7,
                    current_epoch: 9,
                }),
                load: Some(LoadStats {
                    shed_requests: 11,
                    inflight_bytes: 512,
                    peak_inflight_bytes: 4096,
                    accept_retries: 2,
                }),
                events: Some(EventStats {
                    epoll_waits: 1000,
                    events_dispatched: 2500,
                    spurious_wakeups: 3,
                    writev_saved: 700,
                    per_worker: vec![
                        WorkerEvents {
                            epoll_waits: 600,
                            events_dispatched: 1500,
                            spurious_wakeups: 1,
                            writev_saved: 400,
                        },
                        WorkerEvents {
                            epoll_waits: 400,
                            events_dispatched: 1000,
                            spurious_wakeups: 2,
                            writev_saved: 300,
                        },
                    ],
                }),
                tables: Some(TableStats {
                    grow_events: 5,
                    partition: PartitionScheme::Hash,
                    cache: None,
                    shards: vec![
                        ShardStats {
                            kind: ShardKind::Hash,
                            items: Some(100),
                            buckets: 1024,
                        },
                        ShardStats {
                            kind: ShardKind::Skip,
                            items: None,
                            buckets: 0,
                        },
                        ShardStats {
                            kind: ShardKind::Elastic,
                            items: Some(9000),
                            buckets: 4096,
                        },
                    ],
                }),
            }),
            OP_STATS,
        );
        // A bare-store reply (every optional section absent) must roundtrip
        // too: absence flags are part of the wire contract.
        roundtrip_response(
            Response::Stats(StatsReply {
                uptime_secs: 0,
                tx: TxStatsSnapshot::default(),
                domain: None,
                load: None,
                tables: None,
                events: None,
            }),
            OP_STATS,
        );
        roundtrip_response(Response::Synced(12), OP_SYNC);
        for e in [
            ErrCode::Retry,
            ErrCode::Capacity,
            ErrCode::NotFound,
            ErrCode::Insufficient,
            ErrCode::Overload,
            ErrCode::Malformed,
        ] {
            roundtrip_response(Response::Err(e), OP_TRANSFER);
        }
    }

    #[test]
    fn partial_frames_and_pipelines_split_correctly() {
        let mut wire = Vec::new();
        encode_request(&mut wire, 1, &Request::Cmd(Cmd::Get(1)));
        encode_request(&mut wire, 2, &Request::Cmd(Cmd::Put(2, 3)));
        // Feed byte-by-byte: frames must come out exactly twice, in order.
        let mut buf = Vec::new();
        let mut got = Vec::new();
        for &b in &wire {
            buf.push(b);
            let mut consumed = 0;
            while let Some(frame) = take_frame(&buf, &mut consumed).unwrap() {
                got.push(decode_request(frame).unwrap().0);
            }
            buf.drain(..consumed);
        }
        assert_eq!(got, vec![1, 2]);
        assert!(buf.is_empty());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut wire = Vec::new();
        put_u32(&mut wire, (MAX_FRAME + 1) as u32);
        wire.extend_from_slice(&[0; 16]);
        let mut consumed = 0;
        assert!(take_frame(&wire, &mut consumed).is_err());
    }

    #[test]
    fn nested_multikey_batch_is_rejected() {
        // Hand-craft a BATCH containing a TRANSFER: must not decode.
        let mut payload = Vec::new();
        put_u32(&mut payload, 3); // req id
        payload.push(OP_BATCH);
        put_u32(&mut payload, 1);
        payload.push(OP_TRANSFER);
        put_u64(&mut payload, 1);
        put_u64(&mut payload, 2);
        put_u64(&mut payload, 3);
        assert!(decode_request(&payload).is_err());
        // Same for SCAN: a whole transaction cannot nest inside another.
        let mut payload = Vec::new();
        put_u32(&mut payload, 4); // req id
        payload.push(OP_BATCH);
        put_u32(&mut payload, 1);
        payload.push(OP_SCAN);
        put_u64(&mut payload, 0);
        put_u64(&mut payload, 10);
        put_u32(&mut payload, 5);
        assert!(decode_request(&payload).is_err());
    }

    #[test]
    fn scan_and_cache_stats_roundtrip() {
        roundtrip_request(Request::Cmd(Cmd::Scan {
            lo: 100,
            hi: u64::MAX,
            limit: 4096,
        }));
        roundtrip_response(Response::Ok(CmdOut::Page(Vec::new())), OP_SCAN);
        roundtrip_response(
            Response::Ok(CmdOut::Page(vec![
                (1, Value::U64(10)),
                (2, Value::from_bytes(b"variable-length page entry")),
                (u64::MAX - 1, Value::U64(30)),
            ])),
            OP_SCAN,
        );
        // A cache store's table section: range byte exercised separately.
        roundtrip_response(
            Response::Stats(StatsReply {
                uptime_secs: 42,
                tx: TxStatsSnapshot::default(),
                domain: None,
                load: None,
                tables: Some(TableStats {
                    grow_events: 0,
                    partition: PartitionScheme::Range,
                    cache: Some(CacheStats {
                        hits: 100,
                        misses: 40,
                        evictions: 25,
                    }),
                    shards: vec![ShardStats {
                        kind: ShardKind::Cache,
                        items: Some(32),
                        buckets: 64,
                    }],
                }),
                events: None,
            }),
            OP_STATS,
        );
    }

    #[test]
    fn metrics_reply_roundtrips() {
        // An empty registry snapshot (fresh server, telemetry off or idle).
        roundtrip_response(Response::Metrics(MetricsReply::default()), OP_METRICS);

        // Active ops carry full bucket arrays; the client-side histogram
        // must reconstruct bit-for-bit so quantiles agree with the server.
        let mut hist = LatencyHistogram::new();
        for ns in [120u64, 900, 4_000, 65_000, 1 << 22] {
            hist.record_ns(ns);
        }
        roundtrip_response(
            Response::Metrics(MetricsReply {
                uptime_secs: 17,
                ops: vec![
                    OpMetrics {
                        opcode: OP_GET,
                        hist: hist.clone(),
                        retries: 3,
                        aborts: vec![1, 0, 2, 0, 0, 0],
                    },
                    OpMetrics {
                        opcode: OP_TRANSFER,
                        hist,
                        retries: 9,
                        aborts: vec![4, 0, 0, 1, 0, 0],
                    },
                ],
                worker_phases: vec![vec![100, 200, 300, 400], vec![50, 60, 70, 80]],
            }),
            OP_METRICS,
        );
    }

    #[test]
    fn trace_reply_roundtrips() {
        roundtrip_response(Response::Trace(TraceReply::default()), OP_TRACE);
        roundtrip_response(
            Response::Trace(TraceReply {
                records: vec![
                    TraceRecord {
                        opcode: OP_PUT,
                        status: ST_OK,
                        req_id: 42,
                        queue_ns: 1_500,
                        exec_ns: 80_000,
                        retries: 2,
                    },
                    TraceRecord {
                        opcode: OP_CAS,
                        status: ST_ABORT_RETRY,
                        req_id: 43,
                        queue_ns: 900,
                        exec_ns: 2_000_000,
                        retries: 7,
                    },
                ],
                evicted: 12,
            }),
            OP_TRACE,
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut wire = Vec::new();
        encode_request(&mut wire, 5, &Request::Cmd(Cmd::Get(1)));
        let mut consumed = 0;
        let frame = take_frame(&wire, &mut consumed).unwrap().unwrap();
        let mut bad = frame.to_vec();
        bad.push(0xFF);
        assert!(decode_request(&bad).is_err());
    }
}
