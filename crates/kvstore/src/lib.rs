//! # kvstore — a transactional KV service on the NBTC runtime
//!
//! Everything below PR 5 exercised Medley/txMontage composition from
//! in-process harnesses.  This crate puts the runtime behind a socket: a
//! thread-per-core TCP service whose *product feature* is multi-key
//! atomicity — `TRANSFER`, `MSET`, `MGET`, and a batch-transaction IR are
//! each one Medley transaction spanning however many sharded nonblocking
//! structures the keys hash to.
//!
//! Layers (each its own module):
//!
//! * [`store`] — the sharded table namespace and command executor
//!   ([`Store`]): Michael hash table or skiplist per shard, transient
//!   Medley or durable txMontage backend, commands executed standalone
//!   (`NonTx`) when single-key and transactionally (`run_with`) when they
//!   compose;
//! * [`proto`] — the length-prefixed binary wire format and its
//!   abort-code mapping (rustdoc there documents every frame layout);
//! * [`server`] — the acceptor + fixed worker pool ([`Server`]); each
//!   worker owns one `TxManager` slot and multiplexes pipelined
//!   connections over it nonblockingly, with graceful drain on shutdown,
//!   `STATS` (aggregated [`medley::TxManager::stats_snapshot`] +
//!   `DomainStats`) and `SYNC` (wait-free durability cut) admin commands;
//! * [`client`] — a blocking pipelining [`Client`] used by the tests and
//!   the `kvbench` load generator in the `bench` crate.
//!
//! ```
//! use kvstore::{Client, Server, ServerConfig};
//!
//! let server = Server::start(&ServerConfig::default()).unwrap();
//! let mut c = Client::connect(server.local_addr()).unwrap();
//! c.mset(&[(1, 100), (2, 50)]).unwrap();
//! // One atomic action across two shards (distinct nonblocking maps):
//! let (from_after, to_after) = c.transfer(1, 2, 30).unwrap();
//! assert_eq!((from_after, to_after), (70, 80));
//! assert_eq!(c.mget(&[1, 2]).unwrap(), vec![Some(70), Some(80)]);
//! drop(c);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cache;
pub mod client;
pub mod proto;
pub mod server;
pub mod store;
pub mod sys;
pub mod telemetry;

pub use cache::{CacheCounters, TxCache};
pub use client::{Client, KvError, KvResult};
pub use proto::{
    CacheStats, ErrCode, EventStats, LoadStats, MetricsReply, OpMetrics, PartitionScheme, Request,
    Response, ShardKind, ShardStats, StatsReply, TableStats, TraceReply, WorkerEvents,
};
pub use server::{OverloadConfig, Server, ServerConfig};
pub use store::{
    Cmd, CmdOut, ConfigError, HashPartition, Partition, Partitioner, RangePartition, Store,
    StoreBackend, StoreConfig, TableKind, DEFAULT_BUCKETS_PER_SHARD, ELASTIC_BOOT_BUCKETS,
    MAX_SCAN_LIMIT,
};
pub use telemetry::{Telemetry, TelemetryConfig, ERROR_LABELS, OP_LABELS, PHASE_LABELS};

#[cfg(test)]
mod tests {
    use super::*;

    fn start(cfg: ServerConfig) -> (Server, Client) {
        let server = Server::start(&cfg).unwrap();
        let client = Client::connect(server.local_addr()).unwrap();
        (server, client)
    }

    #[test]
    fn end_to_end_over_loopback() {
        let (server, mut c) = start(ServerConfig::default());
        assert_eq!(c.get(1).unwrap(), None);
        assert_eq!(c.put(1, 10).unwrap(), None);
        assert_eq!(c.put(1, 11).unwrap(), Some(10));
        assert!(c.contains(1).unwrap());
        assert_eq!(c.cas(1, 11, 12).unwrap(), (true, Some(12)));
        assert_eq!(c.cas(1, 99, 0).unwrap(), (false, Some(12)));
        assert_eq!(c.del(1).unwrap(), Some(12));
        assert_eq!(c.del(1).unwrap(), None);
        drop(c);
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let (server, mut c) = start(ServerConfig::default());
        // Queue a deep pipeline without reading a single response.
        for k in 0..200u64 {
            c.send(&Request::Cmd(Cmd::Put(k, k * 2))).unwrap();
        }
        for k in 0..200u64 {
            c.send(&Request::Cmd(Cmd::Get(k))).unwrap();
        }
        assert_eq!(c.in_flight(), 400);
        for _ in 0..200 {
            match c.recv().unwrap() {
                Response::Ok(CmdOut::Prev(None)) => {}
                other => panic!("unexpected put response: {other:?}"),
            }
        }
        for k in 0..200u64 {
            match c.recv().unwrap() {
                Response::Ok(CmdOut::Value(Some(v))) => assert_eq!(v, k * 2),
                other => panic!("unexpected get response: {other:?}"),
            }
        }
        drop(c);
        server.shutdown();
    }

    #[test]
    fn transfer_and_stats_over_the_wire() {
        let (server, mut c) = start(ServerConfig::default());
        c.mset(&[(7, 100), (8, 0)]).unwrap();
        assert_eq!(c.transfer(7, 8, 60).unwrap(), (40, 60));
        match c.transfer(7, 8, 1000) {
            Err(KvError::Server(ErrCode::Insufficient)) => {}
            other => panic!("expected Insufficient, got {other:?}"),
        }
        match c.transfer(1234, 8, 1) {
            Err(KvError::Server(ErrCode::NotFound)) => {}
            other => panic!("expected NotFound, got {other:?}"),
        }
        let stats = c.stats().unwrap();
        assert!(stats.tx.commits > 0);
        assert!(stats.domain.is_none(), "transient server has no domain");
        // Transient SYNC is an acknowledged no-op.
        assert_eq!(c.sync().unwrap(), 0);
        drop(c);
        server.shutdown();
    }

    #[test]
    fn durable_server_reports_domain_and_syncs() {
        let cfg = ServerConfig {
            store: StoreConfig {
                backend: StoreBackend::Durable,
                advancer_period: None,
                ..Default::default()
            },
            ..Default::default()
        };
        let (server, mut c) = start(cfg);
        c.mset(&[(1, 10), (2, 20)]).unwrap();
        let epoch = c.sync().unwrap();
        assert!(epoch >= 1, "sync must move the durability horizon: {epoch}");
        let stats = c.stats().unwrap();
        let d = stats.domain.expect("durable server reports domain stats");
        assert_eq!(d.live_payloads, 2);
        drop(c);
        let store = server.shutdown();
        let rec = store.recover();
        assert_eq!(rec.get(&1), Some(&pmem::Value::U64(10)));
        assert_eq!(rec.get(&2), Some(&pmem::Value::U64(20)));
    }

    #[test]
    fn blob_values_and_event_stats_over_the_wire() {
        use pmem::Value;
        let (server, mut c) = start(ServerConfig::default());
        // A value big enough to span several read/write passes.
        let blob: Vec<u8> = (0..100_000usize).map(|i| (i * 31) as u8).collect();
        assert_eq!(c.put_b(5, &blob).unwrap(), None);
        assert_eq!(c.get_b(5).unwrap(), Some(Value::from_bytes(&blob)));
        // Word interop: the blob family reads fixed-width writes and an
        // 8-byte blob IS a word.
        assert_eq!(c.put(6, 42).unwrap(), None);
        assert_eq!(c.get_b(6).unwrap(), Some(Value::U64(42)));
        assert_eq!(
            c.put_b(6, &43u64.to_le_bytes()).unwrap(),
            Some(Value::U64(42))
        );
        assert_eq!(c.get(6).unwrap(), Some(43));
        // A fixed-width GET on a blob is refused, not truncated.
        match c.get(5) {
            Err(KvError::Server(ErrCode::Malformed)) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Byte-exact CAS and multi-key blob ops.
        assert!(c.cas_b(5, &blob, b"small now").unwrap().0);
        c.mset_b(&[(7, b"abc".as_slice()), (8, b"defg".as_slice())])
            .unwrap();
        assert_eq!(
            c.mget_b(&[5, 7, 8, 9]).unwrap(),
            vec![
                Some(Value::from_bytes(b"small now")),
                Some(Value::from_bytes(b"abc")),
                Some(Value::from_bytes(b"defg")),
                None,
            ]
        );
        assert_eq!(c.del_b(7).unwrap(), Some(Value::from_bytes(b"abc")));
        // The event-loop section is observable over the wire and the traffic
        // above must have exercised it.
        let stats = c.stats().unwrap();
        let ev = stats.events.expect("server reports event-loop stats");
        assert!(ev.epoll_waits > 0, "worker loops wait on epoll");
        assert!(
            ev.events_dispatched > 0,
            "traffic arrives as readiness events"
        );
        drop(c);
        server.shutdown();
    }

    #[test]
    fn transfer_credit_overflow_is_rejected() {
        let (server, mut c) = start(ServerConfig::default());
        c.mset(&[(1, 5), (2, u64::MAX)]).unwrap();
        match c.transfer(1, 2, 1) {
            Err(KvError::Server(ErrCode::Insufficient)) => {}
            other => panic!("overflowing credit must be rejected, got {other:?}"),
        }
        // Nothing changed.
        assert_eq!(c.mget(&[1, 2]).unwrap(), vec![Some(5), Some(u64::MAX)]);
        drop(c);
        server.shutdown();
    }

    #[test]
    fn oversized_client_command_errors_without_breaking_the_pipeline() {
        let (server, mut c) = start(ServerConfig::default());
        let huge: Vec<(u64, u64)> = (0..70_000u64).map(|k| (k, k)).collect();
        match c.mset(&huge) {
            Err(KvError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput),
            other => panic!("oversized MSET must be refused client-side, got {other:?}"),
        }
        // The refusal buffered nothing: the connection still works.
        assert_eq!(c.put(1, 10).unwrap(), None);
        assert_eq!(c.get(1).unwrap(), Some(10));
        drop(c);
        server.shutdown();
    }

    #[test]
    fn poisoned_connection_still_flushes_owed_responses() {
        use std::io::{Read, Write};
        let (server, mut c) = start(ServerConfig::default());
        // Raw socket: one valid PUT, then an oversized length prefix.
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let mut wire = Vec::new();
        proto::encode_request(&mut wire, 11, &Request::Cmd(Cmd::Put(77, 7)));
        wire.extend_from_slice(&u32::MAX.to_le_bytes()); // poison
        raw.write_all(&wire).unwrap();
        // The PUT executed and its response must arrive before the close.
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match raw.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("read failed: {e}"),
            }
        }
        let mut pos = 0;
        let frame = proto::take_frame(&buf, &mut pos)
            .unwrap()
            .expect("owed response must be flushed before the close");
        let (id, resp) = proto::decode_response(frame).unwrap();
        assert_eq!(id, 11);
        assert_eq!(resp, Response::Ok(CmdOut::Prev(None)));
        // The write really committed (visible through a healthy client).
        assert_eq!(c.get(77).unwrap(), Some(7));
        drop(c);
        server.shutdown();
    }

    #[test]
    fn malformed_frames_get_an_error_but_keep_the_connection() {
        use std::io::Write;
        let (server, mut c) = start(ServerConfig::default());
        // Hand-write a frame with an unknown opcode.
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let payload = [9u8, 0, 0, 0, 0xEE];
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        raw.write_all(&wire).unwrap();
        // The regular client still works throughout.
        assert_eq!(c.put(3, 33).unwrap(), None);
        assert_eq!(c.get(3).unwrap(), Some(33));
        drop(raw);
        drop(c);
        server.shutdown();
    }
}
