//! A blocking client with request pipelining.
//!
//! [`Client::send`] buffers a request frame and returns immediately;
//! [`Client::recv`] flushes the buffer and blocks for the next response.
//! Because the server answers in request order per connection, a client can
//! keep `depth` requests in flight and pair responses positionally — the
//! `kvbench` load generator drives exactly this pattern.  The one-liner
//! methods ([`Client::get`], [`Client::transfer`], …) are `send` + `recv`
//! with the response variant checked.

use crate::proto::{self, ErrCode, MetricsReply, Request, Response, StatsReply, TraceReply};
use crate::store::{Cmd, CmdOut};
use medley::util::FastRng;
use pmem::Value;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How many times a typed command resends after [`ErrCode::Overload`]
/// before surfacing the error.  A bounded budget keeps a saturated server
/// from turning clients into infinite retry loops (which would only deepen
/// the overload).
const OVERLOAD_RESEND_BUDGET: u32 = 8;

/// Base of the jittered overload retry delay; attempt `n` sleeps uniformly
/// in `[0, OVERLOAD_BASE_DELAY_US << min(n, 6))` microseconds ("full
/// jitter", which decorrelates the retry storms that synchronized backoff
/// produces).
const OVERLOAD_BASE_DELAY_US: u64 = 50;

/// Client-side failure of one command.
#[derive(Debug)]
pub enum KvError {
    /// Transport failure; the connection is unusable.
    Io(std::io::Error),
    /// The server answered with an abort/error status.
    Server(ErrCode),
    /// The server answered with a frame this client cannot decode, or a
    /// response shape that does not match the request.
    Proto,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Io(e) => write!(f, "kvstore transport error: {e}"),
            KvError::Server(c) => write!(f, "kvstore server error: {c:?}"),
            KvError::Proto => f.write_str("kvstore protocol mismatch"),
        }
    }
}

impl std::error::Error for KvError {}

impl From<std::io::Error> for KvError {
    fn from(e: std::io::Error) -> Self {
        KvError::Io(e)
    }
}

/// Command result alias.
pub type KvResult<T> = Result<T, KvError>;

/// A blocking, pipelining kvstore connection.
pub struct Client {
    stream: TcpStream,
    wbuf: Vec<u8>,
    rbuf: Vec<u8>,
    rpos: usize,
    next_id: u32,
    /// Request ids in flight, oldest first (the server answers in order).
    pending: VecDeque<u32>,
    /// Jitter source for overload retry delays.
    rng: FastRng,
    /// Total [`ErrCode::Overload`] responses this client retried through.
    overload_retries: u64,
}

impl Client {
    /// Connects (TCP, `TCP_NODELAY`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Seed the jitter source per connection (the ephemeral port is
        // unique per live connection on this host), so simultaneous clients
        // never share a retry schedule.
        let seed = stream.local_addr().map_or(1, |a| u64::from(a.port()) + 1);
        Ok(Self {
            stream,
            wbuf: Vec::new(),
            rbuf: Vec::new(),
            rpos: 0,
            next_id: 1,
            pending: VecDeque::new(),
            rng: FastRng::new(seed),
            overload_retries: 0,
        })
    }

    /// Buffers one request frame; [`Client::flush`] (or the next `recv`)
    /// puts it on the wire.  Returns the request id.
    ///
    /// A command too large for one frame (an `MGET`/`MSET`/`BATCH` past
    /// [`proto::MAX_FRAME`]) is refused with `InvalidInput` — nothing is
    /// buffered and the pipeline stays intact; chunk the command instead.
    pub fn send(&mut self, req: &Request) -> std::io::Result<u32> {
        let id = self.next_id;
        proto::try_encode_request(&mut self.wbuf, id, req).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "kvstore command exceeds the maximum frame size",
            )
        })?;
        self.next_id = self.next_id.wrapping_add(1);
        self.pending.push_back(id);
        Ok(id)
    }

    /// Writes every buffered request to the socket.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.wbuf.is_empty() {
            self.stream.write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    /// Number of requests sent but not yet answered.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Flushes, then blocks for the next response (they arrive in request
    /// order; the echoed id is checked against the oldest in-flight
    /// request).
    pub fn recv(&mut self) -> KvResult<Response> {
        let expect = self.pending.pop_front().ok_or(KvError::Proto)?;
        self.flush()?;
        loop {
            if let Some(frame) =
                proto::take_frame(&self.rbuf, &mut self.rpos).map_err(|_| KvError::Proto)?
            {
                let (id, resp) = proto::decode_response(frame).map_err(|_| KvError::Proto)?;
                if self.rpos * 2 > self.rbuf.len() && self.rpos > 4096 {
                    self.rbuf.drain(..self.rpos);
                    self.rpos = 0;
                }
                if id != expect {
                    return Err(KvError::Proto);
                }
                return Ok(resp);
            }
            let mut chunk = [0u8; 16 << 10];
            let n = self.stream.read(&mut chunk).map_err(KvError::Io)?;
            if n == 0 {
                return Err(KvError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                )));
            }
            self.rbuf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Flushes, then waits at most `timeout` for the next pipelined
    /// response.  Returns `Ok(None)` when no request is in flight or no
    /// complete frame arrived in time — the open-loop load generator polls
    /// this so a stalled server cannot block the send clock.
    pub fn recv_timeout(&mut self, timeout: Duration) -> KvResult<Option<Response>> {
        if self.pending.is_empty() {
            return Ok(None);
        }
        self.flush()?;
        loop {
            if let Some(frame) =
                proto::take_frame(&self.rbuf, &mut self.rpos).map_err(|_| KvError::Proto)?
            {
                let expect = self.pending.pop_front().ok_or(KvError::Proto)?;
                let (id, resp) = proto::decode_response(frame).map_err(|_| KvError::Proto)?;
                if self.rpos * 2 > self.rbuf.len() && self.rpos > 4096 {
                    self.rbuf.drain(..self.rpos);
                    self.rpos = 0;
                }
                if id != expect {
                    return Err(KvError::Proto);
                }
                return Ok(Some(resp));
            }
            self.stream
                .set_read_timeout(Some(timeout.max(Duration::from_micros(1))))?;
            let mut chunk = [0u8; 16 << 10];
            let res = self.stream.read(&mut chunk);
            self.stream.set_read_timeout(None)?;
            match res {
                Ok(0) => {
                    return Err(KvError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed mid-response",
                    )))
                }
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(KvError::Io(e)),
            }
        }
    }

    /// One round trip: `send` + `recv` (no other requests may be in
    /// flight, so responses stay positionally paired).
    pub fn call(&mut self, req: &Request) -> KvResult<Response> {
        self.send(req)?;
        self.recv()
    }

    /// Total [`ErrCode::Overload`] responses the typed command methods
    /// absorbed by resending.
    pub fn overload_retries(&self) -> u64 {
        self.overload_retries
    }

    fn cmd(&mut self, cmd: Cmd) -> KvResult<CmdOut> {
        let req = Request::Cmd(cmd);
        let mut attempt: u32 = 0;
        loop {
            match self.call(&req)? {
                Response::Ok(out) => return Ok(out),
                // A shed command executed nothing, so resending is safe.
                // Full-jitter backoff, bounded by the resend budget; past
                // the budget the Overload error surfaces to the caller.
                Response::Err(ErrCode::Overload) if attempt < OVERLOAD_RESEND_BUDGET => {
                    attempt += 1;
                    self.overload_retries += 1;
                    let cap = OVERLOAD_BASE_DELAY_US << attempt.min(6);
                    std::thread::sleep(Duration::from_micros(self.rng.next_below(cap.max(1))));
                }
                Response::Err(e) => return Err(KvError::Server(e)),
                _ => return Err(KvError::Proto),
            }
        }
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: u64) -> KvResult<Option<u64>> {
        match self.cmd(Cmd::Get(key))? {
            CmdOut::Value(v) => Ok(v),
            _ => Err(KvError::Proto),
        }
    }

    /// Inserts or replaces `key`; returns the previous value.
    pub fn put(&mut self, key: u64, val: u64) -> KvResult<Option<u64>> {
        match self.cmd(Cmd::Put(key, val))? {
            CmdOut::Prev(v) => Ok(v),
            _ => Err(KvError::Proto),
        }
    }

    /// Removes `key`; returns the removed value.
    pub fn del(&mut self, key: u64) -> KvResult<Option<u64>> {
        match self.cmd(Cmd::Del(key))? {
            CmdOut::Removed(v) => Ok(v),
            _ => Err(KvError::Proto),
        }
    }

    /// Compare-and-swap; returns `(success, post-op value)`.
    pub fn cas(&mut self, key: u64, expected: u64, desired: u64) -> KvResult<(bool, Option<u64>)> {
        match self.cmd(Cmd::Cas {
            key,
            expected,
            desired,
        })? {
            CmdOut::Cas { success, current } => Ok((success, current)),
            _ => Err(KvError::Proto),
        }
    }

    /// Membership test.
    pub fn contains(&mut self, key: u64) -> KvResult<bool> {
        match self.cmd(Cmd::Contains(key))? {
            CmdOut::Present(p) => Ok(p),
            _ => Err(KvError::Proto),
        }
    }

    /// Atomic multi-key read: one consistent snapshot of all `keys`.
    pub fn mget(&mut self, keys: &[u64]) -> KvResult<Vec<Option<u64>>> {
        match self.cmd(Cmd::MGet(keys.to_vec()))? {
            CmdOut::Values(v) if v.len() == keys.len() => Ok(v),
            _ => Err(KvError::Proto),
        }
    }

    /// Atomic multi-key write: all pairs commit together.
    pub fn mset(&mut self, pairs: &[(u64, u64)]) -> KvResult<()> {
        match self.cmd(Cmd::MSet(pairs.to_vec()))? {
            CmdOut::Done => Ok(()),
            _ => Err(KvError::Proto),
        }
    }

    /// Ordered range scan: one atomically consistent page of `[lo, hi)`,
    /// at most `limit` entries (server-capped at
    /// [`crate::store::MAX_SCAN_LIMIT`]).  A truncated page is a consistent
    /// prefix; resume from `last_key + 1`.  Only range-partitioned (skiplist)
    /// stores answer scans — others report [`ErrCode::Malformed`].
    pub fn scan(&mut self, lo: u64, hi: u64, limit: u32) -> KvResult<Vec<(u64, Value)>> {
        match self.cmd(Cmd::Scan { lo, hi, limit })? {
            CmdOut::Page(page) => Ok(page),
            _ => Err(KvError::Proto),
        }
    }

    /// Failure-atomic transfer; returns both post-transfer balances.
    pub fn transfer(&mut self, from: u64, to: u64, amount: u64) -> KvResult<(u64, u64)> {
        match self.cmd(Cmd::Transfer { from, to, amount })? {
            CmdOut::Transferred {
                from_after,
                to_after,
            } => Ok((from_after, to_after)),
            _ => Err(KvError::Proto),
        }
    }

    /// Looks up `key` as a byte value (blob op family).
    pub fn get_b(&mut self, key: u64) -> KvResult<Option<Value>> {
        match self.cmd(Cmd::GetB(key))? {
            CmdOut::ValueB(v) => Ok(v),
            _ => Err(KvError::Proto),
        }
    }

    /// Inserts or replaces `key` with a byte value; returns the previous
    /// value.  `val` is canonicalized through [`Value::from_bytes`], so an
    /// 8-byte input stores the same value a fixed-width `put` would.
    pub fn put_b(&mut self, key: u64, val: &[u8]) -> KvResult<Option<Value>> {
        match self.cmd(Cmd::PutB(key, Value::from_bytes(val)))? {
            CmdOut::PrevB(v) => Ok(v),
            _ => Err(KvError::Proto),
        }
    }

    /// Removes `key`; returns the removed value (blob op family).
    pub fn del_b(&mut self, key: u64) -> KvResult<Option<Value>> {
        match self.cmd(Cmd::DelB(key))? {
            CmdOut::RemovedB(v) => Ok(v),
            _ => Err(KvError::Proto),
        }
    }

    /// Byte-exact compare-and-swap; returns `(success, post-op value)`.
    pub fn cas_b(
        &mut self,
        key: u64,
        expected: &[u8],
        desired: &[u8],
    ) -> KvResult<(bool, Option<Value>)> {
        match self.cmd(Cmd::CasB {
            key,
            expected: Value::from_bytes(expected),
            desired: Value::from_bytes(desired),
        })? {
            CmdOut::CasB { success, current } => Ok((success, current)),
            _ => Err(KvError::Proto),
        }
    }

    /// Atomic multi-key read returning byte values.
    pub fn mget_b(&mut self, keys: &[u64]) -> KvResult<Vec<Option<Value>>> {
        match self.cmd(Cmd::MGetB(keys.to_vec()))? {
            CmdOut::ValuesB(v) if v.len() == keys.len() => Ok(v),
            _ => Err(KvError::Proto),
        }
    }

    /// Atomic multi-key write of byte values: all pairs commit together.
    pub fn mset_b(&mut self, pairs: &[(u64, &[u8])]) -> KvResult<()> {
        let pairs: Vec<(u64, Value)> = pairs
            .iter()
            .map(|(k, v)| (*k, Value::from_bytes(v)))
            .collect();
        match self.cmd(Cmd::MSetB(pairs))? {
            CmdOut::Done => Ok(()),
            _ => Err(KvError::Proto),
        }
    }

    /// Runs a batch of single-key commands as one transaction.
    pub fn batch(&mut self, cmds: Vec<Cmd>) -> KvResult<Vec<CmdOut>> {
        match self.cmd(Cmd::Batch(cmds))? {
            CmdOut::Batch(outs) => Ok(outs),
            _ => Err(KvError::Proto),
        }
    }

    /// Fetches the server's aggregated statistics.
    pub fn stats(&mut self) -> KvResult<StatsReply> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Err(e) => Err(KvError::Server(e)),
            _ => Err(KvError::Proto),
        }
    }

    /// Takes a durability cut; returns the persisted epoch (0 on a
    /// transient server).
    pub fn sync(&mut self) -> KvResult<u64> {
        match self.call(&Request::Sync)? {
            Response::Synced(e) => Ok(e),
            Response::Err(e) => Err(KvError::Server(e)),
            _ => Err(KvError::Proto),
        }
    }

    /// Fetches the server's telemetry snapshot: per-opcode latency
    /// histograms (raw buckets, reconstructed client-side as
    /// [`obs::LatencyHistogram`]), retry totals, abort-reason counters, and
    /// per-worker event-loop phase times.  Empty when server telemetry is
    /// disabled.
    pub fn metrics(&mut self) -> KvResult<MetricsReply> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            Response::Err(e) => Err(KvError::Server(e)),
            _ => Err(KvError::Proto),
        }
    }

    /// Fetches the server's slow-request trace rings (newest records per
    /// worker plus the count of older records evicted).  Empty when server
    /// telemetry is disabled.
    pub fn trace(&mut self) -> KvResult<TraceReply> {
        match self.call(&Request::Trace)? {
            Response::Trace(t) => Ok(t),
            Response::Err(e) => Err(KvError::Server(e)),
            _ => Err(KvError::Proto),
        }
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("in_flight", &self.pending.len())
            .finish()
    }
}
