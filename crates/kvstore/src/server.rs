//! The TCP server: a fixed worker pool multiplexing pipelined connections.
//!
//! One acceptor thread hands sockets round-robin to `workers` worker
//! threads.  Each worker registers **one** [`medley::ThreadHandle`] — one
//! `TxManager` thread slot, held for the server's lifetime — and multiplexes
//! all of its connections over it with nonblocking reads/writes
//! (thread-per-core style: the worker *is* the transaction thread, so a
//! command never crosses a thread boundary between decode and commit).
//! Requests are executed in arrival order per connection and responses are
//! written back in the same order, so clients may pipeline arbitrarily
//! deeply.
//!
//! Shutdown is a graceful drain: the acceptor stops, every worker finishes
//! executing the complete frames already buffered on its connections,
//! flushes its write buffers, and only then closes the sockets and drops
//! its handle (flushing its statistics).  In durable mode the epoch
//! advancer is stopped *after* the workers, so every committed update still
//! has a ticking clock while requests are in flight.

use crate::proto::{self, LoadStats, Request, Response};
use crate::store::{Cmd, ErrCode, Store, StoreConfig};
use medley::util::CachePadded;
use medley::{ThreadHandle, TxManager};
use pmem::EpochAdvancer;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks a free port; see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads (= `TxManager` slots held; each multiplexes any number
    /// of connections).
    pub workers: usize,
    /// The store the workers execute against.
    pub store: StoreConfig,
    /// How long [`Server::shutdown`] lets the drain run before force-closing
    /// connections that still have unflushed output.
    pub drain_deadline: Duration,
    /// Admission-control and backpressure watermarks.
    pub overload: OverloadConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            store: StoreConfig::default(),
            drain_deadline: Duration::from_secs(5),
            overload: OverloadConfig::default(),
        }
    }
}

/// Admission-control watermarks: every buffer a peer can grow has a bound,
/// and crossing a bound changes behavior (pause reading, shed) instead of
/// allocating.  High/low pairs give hysteresis so the server does not
/// flap at a boundary.
///
/// With these bounds, per-connection memory is `O(rbuf_high + wbuf_high +
/// MAX_FRAME)` regardless of offered load: a peer that will not drain its
/// responses stops being read; a peer that floods requests stops being read
/// once a complete frame is parked; and a worker whose total backlog passes
/// `shed_high` refuses to *start* transactional work (cheap shed responses)
/// until it drains below `shed_low`.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Stop reading a connection whose unflushed response bytes exceed this.
    pub wbuf_high: usize,
    /// Resume reading once unflushed response bytes drain below this.
    pub wbuf_low: usize,
    /// Stop reading a connection whose undecoded inbound backlog exceeds
    /// this *and* already holds a complete frame (a partial frame keeps
    /// reading so it can finish: frames are bounded by
    /// [`proto::MAX_FRAME`], so this cannot unbound the buffer).
    pub rbuf_high: usize,
    /// Frames executed from one connection per worker pass — bounds how
    /// long one deeply-pipelined peer can monopolize its worker before the
    /// other connections get their pumps.
    pub conn_inflight: usize,
    /// Worker backlog bytes (buffered requests + responses across its
    /// connections) at which transactional commands start being shed with
    /// [`ErrCode::Overload`].  `0` sheds every transactional command — a
    /// deterministic mode the overload tests use.
    pub shed_high: usize,
    /// Worker backlog bytes below which shedding stops.
    pub shed_low: usize,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            wbuf_high: 256 << 10,
            wbuf_low: 64 << 10,
            rbuf_high: 256 << 10,
            conn_inflight: 64,
            shed_high: 1 << 20,
            shed_low: 256 << 10,
        }
    }
}

/// Shared load/admission counters, written by workers and the acceptor,
/// reported through `STATS` (and [`Server::load_stats`]).
struct ServerLoad {
    shed: AtomicU64,
    accept_retries: AtomicU64,
    peak_backlog: AtomicU64,
    /// Per-worker backlog bytes, one padded slot each (no false sharing on
    /// the per-pass store).
    backlog: Vec<CachePadded<AtomicU64>>,
}

impl ServerLoad {
    fn new(workers: usize) -> Self {
        Self {
            shed: AtomicU64::new(0),
            accept_retries: AtomicU64::new(0),
            peak_backlog: AtomicU64::new(0),
            backlog: (0..workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    fn note_accept_retry(&self) {
        self.accept_retries.fetch_add(1, Ordering::Relaxed);
    }

    fn set_backlog(&self, slot: usize, bytes: u64) {
        self.backlog[slot].store(bytes, Ordering::Relaxed);
        let total: u64 = self.backlog.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        self.peak_backlog.fetch_max(total, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LoadStats {
        LoadStats {
            shed_requests: self.shed.load(Ordering::Relaxed),
            inflight_bytes: self.backlog.iter().map(|b| b.load(Ordering::Relaxed)).sum(),
            peak_inflight_bytes: self.peak_backlog.load(Ordering::Relaxed),
            accept_retries: self.accept_retries.load(Ordering::Relaxed),
        }
    }
}

/// Escalating sleep for transient `accept(2)` failures (`EMFILE`, `ENFILE`,
/// `ECONNABORTED`, …).  The listener must never be torn down for these: the
/// condition clears when connections close, and an acceptor that dies turns
/// a load spike into a permanent outage.
struct AcceptBackoff {
    delay: Duration,
}

impl AcceptBackoff {
    const INITIAL: Duration = Duration::from_millis(1);
    const MAX: Duration = Duration::from_millis(100);

    fn new() -> Self {
        Self {
            delay: Self::INITIAL,
        }
    }

    fn reset(&mut self) {
        self.delay = Self::INITIAL;
    }

    /// Returns the delay to sleep now and doubles the next one (capped).
    fn advance(&mut self) -> Duration {
        let now = self.delay;
        self.delay = (self.delay * 2).min(Self::MAX);
        now
    }

    /// Sleeps the current delay, escalating for the next failure.
    fn wait(&mut self) {
        let d = self.advance();
        std::thread::sleep(d);
    }
}

/// Idle strategy: a worker whose pass moved no bytes first yields (cheap,
/// keeps wakeup latency at scheduler granularity while requests are
/// trickling), and only after this many consecutive idle passes starts
/// sleeping — so a quiet server costs ~no CPU but an active connection
/// never eats a fixed sleep on its latency path.
const IDLE_YIELDS: u32 = 128;

/// Sleep per idle pass once the yield budget is exhausted.
const IDLE_SLEEP: Duration = Duration::from_micros(50);

/// Read chunk size per `read` call.
const READ_CHUNK: usize = 64 << 10;

/// One multiplexed connection's state.
struct Conn {
    stream: TcpStream,
    /// Inbound bytes; `rpos` marks how far frames have been consumed.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Outbound bytes; `wpos` marks how far the socket has accepted them.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Peer closed its sending side (we still flush what we owe).
    eof: bool,
    /// The inbound stream is unrecoverable (oversized length prefix): no
    /// more reading or decoding, but responses to requests that already
    /// executed are still flushed before the socket closes.
    poisoned: bool,
    /// Connection is unusable (I/O error); dropped immediately.
    dead: bool,
    /// Backpressure latch: reading is paused because the peer stopped
    /// draining its responses (unflushed bytes crossed `wbuf_high`); cleared
    /// once they fall below `wbuf_low`.
    wpaused: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            eof: false,
            poisoned: false,
            dead: false,
            wpaused: false,
        })
    }

    /// Whether every byte owed to the peer has hit the socket.
    fn flushed(&self) -> bool {
        self.wpos == self.wbuf.len()
    }

    /// Response bytes accepted for this peer but not yet on the socket.
    fn unflushed(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Undecoded inbound bytes.
    fn inbound_backlog(&self) -> usize {
        self.rbuf.len() - self.rpos
    }

    /// Bytes this connection holds in either direction — its contribution
    /// to the worker backlog the shed watermark gates on.
    fn backlog_bytes(&self) -> usize {
        self.inbound_backlog() + self.unflushed()
    }

    /// Moves buffered responses toward the socket.  Returns whether bytes
    /// were written.
    fn pump_write(&mut self) -> bool {
        let mut progress = false;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.wpos += n;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.flushed() && !self.wbuf.is_empty() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        progress
    }

    /// Pulls available bytes off the socket, honoring the backpressure
    /// watermarks.  Returns whether bytes were read.
    fn pump_read(&mut self, ov: &OverloadConfig) -> bool {
        if self.eof || self.dead || self.poisoned {
            return false;
        }
        // Write-side backpressure with hysteresis: a peer that will not
        // drain its responses stops being read (and therefore stops being
        // served) until it catches up — its TCP window, not our heap,
        // absorbs the overload.
        if self.wpaused {
            if self.unflushed() <= ov.wbuf_low {
                self.wpaused = false;
            } else {
                return false;
            }
        } else if self.unflushed() >= ov.wbuf_high {
            self.wpaused = true;
            return false;
        }
        // Read-side bound: with a complete frame already parked, more input
        // only deepens the queue.  Without one we keep reading so a partial
        // frame can complete (bounded by MAX_FRAME, enforced on decode).
        if self.inbound_backlog() >= ov.rbuf_high && self.has_pending_frame() {
            return false;
        }
        let mut progress = false;
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    progress = true;
                    if n < chunk.len() {
                        break;
                    }
                    if self.inbound_backlog() >= ov.rbuf_high && self.has_pending_frame() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progress
    }

    /// Decodes and executes buffered complete frames — up to the per-pass
    /// budget and the write-buffer bound, shedding transactional commands
    /// while the worker is over its backlog watermark.  Returns whether any
    /// frame was served.
    fn pump_execute(
        &mut self,
        store: &Store,
        h: &mut ThreadHandle,
        ov: &OverloadConfig,
        shedding: bool,
        load: &ServerLoad,
    ) -> bool {
        if self.poisoned {
            return false;
        }
        let mut progress = false;
        let mut served = 0usize;
        loop {
            // Per-connection execution bounds: a deeply-pipelined peer gets
            // at most `conn_inflight` frames per pass, and never more
            // responses than `wbuf_high` can hold (unserved frames stay
            // buffered and count toward the backlog).
            if served >= ov.conn_inflight || self.unflushed() >= ov.wbuf_high {
                break;
            }
            let frame = match proto::take_frame(&self.rbuf, &mut self.rpos) {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => {
                    // A length prefix past MAX_FRAME: resynchronization is
                    // impossible.  Poison (not kill) the connection so the
                    // responses of requests that already executed are still
                    // flushed before the socket closes.
                    self.poisoned = true;
                    break;
                }
            };
            progress = true;
            served += 1;
            match proto::decode_request(frame) {
                Ok((req_id, req)) => {
                    let opcode = proto::request_opcode(&req);
                    let resp = match &req {
                        // Shed only what is expensive: a transactional
                        // command costs a full retry loop, while a
                        // single-key op costs about as much as encoding the
                        // shed response would — refusing those buys nothing.
                        // Admin commands always run (STATS is how overload
                        // is diagnosed).  The shed happens *before* `exec`,
                        // so a refused TRANSFER has zero partial effects,
                        // and the response is encoded in arrival order like
                        // any other, preserving pipelined req-id ordering.
                        Request::Cmd(cmd)
                            if shedding
                                && matches!(
                                    cmd,
                                    Cmd::Cas { .. }
                                        | Cmd::MGet(_)
                                        | Cmd::MSet(_)
                                        | Cmd::Transfer { .. }
                                        | Cmd::Batch(_)
                                ) =>
                        {
                            load.note_shed();
                            Response::Err(ErrCode::Overload)
                        }
                        Request::Cmd(cmd) => match store.exec(h, cmd) {
                            Ok(out) => Response::Ok(out),
                            Err(e) => Response::Err(e),
                        },
                        Request::Stats => {
                            let mut s = store.stats(h);
                            s.load = Some(load.snapshot());
                            Response::Stats(s)
                        }
                        Request::Sync => Response::Synced(store.sync()),
                    };
                    proto::encode_response(&mut self.wbuf, req_id, opcode, &resp);
                }
                Err(_) => {
                    // Frame boundaries are intact, so answer and carry on.
                    let req_id = frame
                        .get(..4)
                        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                        .unwrap_or(0);
                    let opcode = frame.get(4).copied().unwrap_or(0);
                    proto::encode_response(
                        &mut self.wbuf,
                        req_id,
                        opcode,
                        &Response::Err(ErrCode::Malformed),
                    );
                }
            }
        }
        // Reclaim consumed prefix once it dominates the buffer.
        if self.rpos > 4096 && self.rpos * 2 > self.rbuf.len() {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        progress
    }

    /// Whether the connection is finished and can be dropped.
    fn finished(&self) -> bool {
        self.dead
            || (self.poisoned && self.flushed())
            || (self.eof && self.flushed() && !self.has_pending_frame())
    }

    fn has_pending_frame(&self) -> bool {
        let mut pos = self.rpos;
        matches!(proto::take_frame(&self.rbuf, &mut pos), Ok(Some(_)))
    }
}

fn worker_loop(
    store: Arc<Store>,
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
    drain_deadline: Duration,
    ov: OverloadConfig,
    load: Arc<ServerLoad>,
    slot: usize,
) {
    let mut h = store.manager().register();
    let mut conns: Vec<Conn> = Vec::new();
    let mut draining_since: Option<Instant> = None;
    let mut idle_streak = 0u32;
    // Shed latch with hysteresis over this worker's backlog.  `shed_high == 0`
    // starts (and stays) shedding — the deterministic test mode.
    let mut shedding = ov.shed_high == 0;
    loop {
        for stream in inbox.lock().unwrap().drain(..) {
            if let Ok(c) = Conn::new(stream) {
                conns.push(c);
            }
        }
        let mut progress = false;
        for conn in &mut conns {
            progress |= conn.pump_read(&ov);
            progress |= conn.pump_execute(&store, &mut h, &ov, shedding, &load);
            progress |= conn.pump_write();
        }
        conns.retain(|c| !c.finished());
        let backlog: u64 = conns.iter().map(|c| c.backlog_bytes() as u64).sum();
        load.set_backlog(slot, backlog);
        if backlog >= ov.shed_high as u64 {
            shedding = true;
        } else if backlog <= ov.shed_low as u64 && ov.shed_high > 0 {
            shedding = false;
        }
        if stop.load(Ordering::Acquire) {
            let deadline = *draining_since.get_or_insert_with(Instant::now) + drain_deadline;
            // Drain: requests already received keep being served, but once
            // nothing is buffered in either direction the sockets close —
            // we do not wait for peers to hang up.
            let quiesced = !progress && conns.iter().all(|c| c.flushed() && !c.has_pending_frame());
            if conns.is_empty() || quiesced || Instant::now() > deadline {
                break;
            }
        }
        if progress {
            idle_streak = 0;
        } else {
            idle_streak = idle_streak.saturating_add(1);
            if idle_streak <= IDLE_YIELDS {
                std::thread::yield_now();
            } else {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }
    load.set_backlog(slot, 0);
    // `h` drops here: unwind-safe stats flush for this worker slot.
}

/// A running kvstore server (see the module docs).
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    store: Arc<Store>,
    load: Arc<ServerLoad>,
    advancer: Option<EpochAdvancer>,
}

impl Server {
    /// Binds, spawns the worker pool, and starts accepting.
    pub fn start(cfg: &ServerConfig) -> std::io::Result<Self> {
        assert!(cfg.workers > 0, "server needs at least one worker");
        // One slot per worker plus slack for in-process admin/test handles
        // on the same manager.
        let mgr = TxManager::with_max_threads(cfg.workers + 8);
        let (store, advancer) = Store::new(mgr, &cfg.store);
        let store = Arc::new(store);
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));

        let load = Arc::new(ServerLoad::new(cfg.workers));

        let inboxes: Vec<Arc<Mutex<Vec<TcpStream>>>> = (0..cfg.workers)
            .map(|_| Arc::new(Mutex::new(Vec::new())))
            .collect();
        let workers = inboxes
            .iter()
            .enumerate()
            .map(|(slot, inbox)| {
                let store = Arc::clone(&store);
                let inbox = Arc::clone(inbox);
                let stop = Arc::clone(&stop);
                let deadline = cfg.drain_deadline;
                let ov = cfg.overload.clone();
                let load = Arc::clone(&load);
                std::thread::spawn(move || {
                    worker_loop(store, inbox, stop, deadline, ov, load, slot)
                })
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            let load = Arc::clone(&load);
            std::thread::spawn(move || {
                let mut next = 0usize;
                let mut backoff = AcceptBackoff::new();
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            backoff.reset();
                            inboxes[next % inboxes.len()].lock().unwrap().push(stream);
                            next += 1;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            backoff.reset();
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        // EMFILE/ENFILE/ECONNABORTED and friends: transient.
                        // Back off (escalating, capped) and keep the
                        // listener — the condition clears when connections
                        // close, and tearing down turns a spike into an
                        // outage.
                        Err(_) => {
                            load.note_accept_retry();
                            backoff.wait();
                        }
                    }
                }
            })
        };

        Ok(Self {
            local_addr,
            stop,
            acceptor: Some(acceptor),
            workers,
            store,
            load,
            advancer,
        })
    }

    /// A point-in-time snapshot of the admission-control counters (also
    /// available remotely through `STATS`).
    pub fn load_stats(&self) -> LoadStats {
        self.load.snapshot()
    }

    /// The bound address (resolves the `:0` port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The store the server executes against (for in-process preload,
    /// statistics, or recovery checks).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Graceful drain: stop accepting, let every worker serve the requests
    /// already buffered and flush its responses, join the pool, then stop
    /// the epoch advancer (durable mode).  Returns the store so callers can
    /// take post-shutdown statistics (exact: every worker handle has been
    /// dropped, which flushes its tallies) or a recovery cut with no
    /// concurrent epoch ticks.
    pub fn shutdown(mut self) -> Arc<Store> {
        self.stop.store(true, Ordering::Release);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(adv) = self.advancer.take() {
            adv.shutdown();
        }
        Arc::clone(&self.store)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // `shutdown` consumed the threads if it ran; otherwise stop and join
        // here so a dropped server never leaks its pool.
        self.stop.store(true, Ordering::Release);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // `advancer` drops (and joins) after the workers by field order.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_escalates_to_cap_and_resets() {
        let mut b = AcceptBackoff::new();
        let mut prev = Duration::ZERO;
        for _ in 0..16 {
            let d = b.advance();
            assert!(d >= prev, "delays must be nondecreasing");
            assert!(d <= AcceptBackoff::MAX);
            prev = d;
        }
        assert_eq!(prev, AcceptBackoff::MAX, "must reach the cap");
        b.reset();
        assert_eq!(b.advance(), AcceptBackoff::INITIAL);
    }

    #[test]
    fn server_load_tracks_backlog_and_peak() {
        let load = ServerLoad::new(2);
        load.set_backlog(0, 100);
        load.set_backlog(1, 50);
        let s = load.snapshot();
        assert_eq!(s.inflight_bytes, 150);
        assert_eq!(s.peak_inflight_bytes, 150);
        load.set_backlog(0, 0);
        let s = load.snapshot();
        assert_eq!(s.inflight_bytes, 50);
        assert_eq!(s.peak_inflight_bytes, 150, "peak must not regress");
        load.note_shed();
        load.note_accept_retry();
        let s = load.snapshot();
        assert_eq!(s.shed_requests, 1);
        assert_eq!(s.accept_retries, 1);
    }
}
